//! # traj-dist — exact trajectory distance measures
//!
//! Implements the ground-truth distance functions the paper approximates
//! (DTW, discrete Fréchet, Hausdorff — Definition 3) plus ERP, EDR, and
//! constrained DTW, their endpoint lower bounds (Lemma 1), and parallel
//! pairwise distance matrices with the `exp(-theta * D)` similarity
//! transform used as WMSE supervision (Section IV-F).

#![warn(missing_docs)]

pub mod bounds;
pub mod dtw;
pub mod edit;
pub mod frechet;
pub mod hausdorff;
pub mod matrix;
pub mod measure;
pub mod sparse;

pub use bounds::{
    bbox_bound, endpoint_bound, first_point_bound, last_point_bound, BoundProfile,
};
pub use dtw::{cdtw, dtw};
pub use edit::{edr, erp};
pub use frechet::frechet;
pub use hausdorff::{directed_hausdorff, hausdorff};
pub use matrix::{auto_theta, distance_matrix, similarity_matrix, DistanceMatrix};
pub use measure::Measure;
pub use sparse::{
    auto_theta_sparse, pruned_self_top_k, pruned_top_k, sparse_similarity, PruneError,
    PruneStats, PrunedResult, PrunedTopK, SparseDistances, SparsePairs, SparseSimilarity,
};
