//! Dynamic Time Warping (Definition 3, first recurrence of Eq. 1) and its
//! Sakoe–Chiba constrained variant cDTW (the classical fast approximation
//! the paper's related-work section discusses).

use traj_data::Trajectory;

/// Exact DTW distance with the recurrence
/// `D[i][j] = min(D[i-1][j], D[i][j-1], D[i-1][j-1]) + d(p_i, q_j)`.
///
/// Runs in `O(n*m)` time and `O(min(n, m))` space.
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn dtw(a: &Trajectory, b: &Trajectory) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "DTW of an empty trajectory");
    // Keep the shorter trajectory along the row dimension to minimize the
    // rolling buffer.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let m = short.len();
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];
    for (i, p) in long.points.iter().enumerate() {
        for (j, q) in short.points.iter().enumerate() {
            let cost = p.distance(q);
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let up = if i > 0 { prev[j] } else { f64::INFINITY };
                let left = if j > 0 { cur[j - 1] } else { f64::INFINITY };
                let diag = if i > 0 && j > 0 { prev[j - 1] } else { f64::INFINITY };
                up.min(left).min(diag)
            };
            cur[j] = best + cost;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

/// Constrained DTW with a Sakoe–Chiba band of half-width `band` cells
/// around the (rescaled) diagonal. `band = usize::MAX` degenerates to
/// exact DTW; a small band is faster but can overestimate the distance
/// (it never underestimates, because it explores a subset of warping
/// paths).
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn cdtw(a: &Trajectory, b: &Trajectory, band: usize) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "cDTW of an empty trajectory");
    let n = a.len();
    let m = b.len();
    // Rescale the band so unequal lengths keep a feasible corridor.
    let slope = m as f64 / n as f64;
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];
    let mut prev_valid = false;
    for (i, p) in a.points.iter().enumerate() {
        // lint: allow(lossy-cast) — slope = |b|/|a| and i < |a|, so center stays within |b|
        let center = (i as f64 * slope) as usize;
        let lo = center.saturating_sub(band);
        let hi = center.saturating_add(band).saturating_add(1).min(m);
        cur.iter_mut().for_each(|x| *x = f64::INFINITY);
        for j in lo..hi {
            let q = &b.points[j];
            let cost = p.distance(q);
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let up = if prev_valid { prev[j] } else { f64::INFINITY };
                let left = if j > 0 { cur[j - 1] } else { f64::INFINITY };
                let diag = if prev_valid && j > 0 { prev[j - 1] } else { f64::INFINITY };
                up.min(left).min(diag)
            };
            cur[j] = best + cost;
        }
        std::mem::swap(&mut prev, &mut cur);
        prev_valid = true;
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::Trajectory;

    fn t(xy: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(xy)
    }

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn single_point_pair() {
        let a = t(&[(0.0, 0.0)]);
        let b = t(&[(3.0, 4.0)]);
        assert!((dtw(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_dp_table() {
        // a = (0,0),(1,0); b = (0,1),(1,1)
        // all point distances are 1 except cross pairs sqrt(2).
        // D(0,0)=1; D(0,1)=1+sqrt2? Let's follow the recurrence:
        // D11 = d(a1,b1) = 1
        // D12 = D11 + d(a1,b2) = 1 + sqrt(2)
        // D21 = D11 + d(a2,b1) = 1 + sqrt(2)
        // D22 = min(D12, D21, D11) + d(a2,b2) = 1 + 1 = 2
        let a = t(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = t(&[(0.0, 1.0), (1.0, 1.0)]);
        assert!((dtw(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = t(&[(0.0, 0.0), (5.0, 1.0), (9.0, 2.0), (12.0, 1.0)]);
        let b = t(&[(1.0, 0.5), (4.0, 2.0), (11.0, 0.0)]);
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn dtw_handles_time_shift() {
        // The same path sampled with a lag has small DTW but large
        // pointwise (lock-step) distance.
        let a = t(&(0..10).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let b = t(&(0..10).map(|i| ((i as f64 - 1.0).max(0.0), 0.0)).collect::<Vec<_>>());
        assert!(dtw(&a, &b) <= 2.0 + 1e-9);
    }

    #[test]
    fn cdtw_upper_bounds_dtw_and_converges() {
        let a = t(&[(0.0, 0.0), (2.0, 1.0), (4.0, 0.0), (6.0, -1.0), (8.0, 0.0)]);
        let b = t(&[(1.0, 0.0), (3.0, 1.5), (5.0, 0.5), (9.0, 0.0)]);
        let exact = dtw(&a, &b);
        let mut last = f64::INFINITY;
        for band in [0usize, 1, 2, 8] {
            let c = cdtw(&a, &b, band);
            assert!(c + 1e-9 >= exact, "band {band}: cdtw {c} < dtw {exact}");
            assert!(c <= last + 1e-9, "band widening must not increase cdtw");
            last = c;
        }
        assert!((cdtw(&a, &b, 8) - exact).abs() < 1e-9);
    }

    #[test]
    fn cdtw_max_band_equals_dtw_even_for_unequal_lengths() {
        // regression: band = usize::MAX must not overflow the window
        let a = t(&(0..7).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let b = t(&(0..15).map(|i| (i as f64 * 0.5, 1.0)).collect::<Vec<_>>());
        assert!((cdtw(&a, &b, usize::MAX) - dtw(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn cdtw_infeasible_band_is_infinite() {
        // When lengths differ a lot a zero-width band admits no warping
        // path; cDTW is correctly infinite rather than wrong.
        let a = t(&(0..3).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let b = t(&(0..30).map(|i| (i as f64 * 0.1, 0.0)).collect::<Vec<_>>());
        assert!(cdtw(&a, &b, 0).is_infinite());
    }

    #[test]
    fn reverse_symmetry_holds() {
        // Lemma 2: DTW(T1, T2) == DTW(T1^r, T2^r).
        let a = t(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0), (4.0, 4.0)]);
        let b = t(&[(0.5, 0.5), (2.0, 2.0), (5.0, 3.0)]);
        let fwd = dtw(&a, &b);
        let rev = dtw(&a.reversed(), &b.reversed());
        assert!((fwd - rev).abs() < 1e-9);
    }
}
