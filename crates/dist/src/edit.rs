//! Edit-based trajectory distances: ERP (Edit distance with Real Penalty,
//! Chen & Ng 2004, cited as reference 17 in the paper) and EDR (Edit Distance on
//! Real sequences). These round out the measure suite a downstream user
//! of a trajectory-similarity library expects.

use traj_data::{Point, Trajectory};

/// Edit distance with Real Penalty against a gap reference point `g`
/// (commonly the origin of the normalized space). ERP is a metric.
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn erp(a: &Trajectory, b: &Trajectory, g: Point) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "ERP of an empty trajectory");
    let n = a.len();
    let m = b.len();
    // prev[j] = cost of aligning a[..i] with b[..j]
    let mut prev: Vec<f64> = Vec::with_capacity(m + 1);
    prev.push(0.0);
    for j in 0..m {
        prev.push(prev[j] + b.points[j].distance(&g));
    }
    let mut cur = vec![0.0f64; m + 1];
    for i in 0..n {
        cur[0] = prev[0] + a.points[i].distance(&g);
        for j in 0..m {
            let sub = prev[j] + a.points[i].distance(&b.points[j]);
            let del = prev[j + 1] + a.points[i].distance(&g);
            let ins = cur[j] + b.points[j].distance(&g);
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Edit Distance on Real sequences: points match when within `eps`;
/// insert/delete/substitute all cost 1. Returns a count in `[0,
/// max(n, m)]`.
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn edr(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "EDR of an empty trajectory");
    let n = a.len();
    let m = b.len();
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64).collect();
    let mut cur = vec![0.0f64; m + 1];
    for i in 0..n {
        cur[0] = (i + 1) as f64;
        for j in 0..m {
            let matches = a.points[i].distance(&b.points[j]) <= eps;
            let sub = prev[j] + if matches { 0.0 } else { 1.0 };
            let del = prev[j + 1] + 1.0;
            let ins = cur[j] + 1.0;
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::Trajectory;

    fn t(xy: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(xy)
    }

    const G: Point = Point::new(0.0, 0.0);

    #[test]
    fn erp_identical_is_zero() {
        let a = t(&[(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(erp(&a, &a, G), 0.0);
    }

    #[test]
    fn erp_gap_cost_for_extra_point() {
        // b is a plus one extra point at (3,4): cheapest edit deletes it
        // with penalty d((3,4), g) = 5.
        let a = t(&[(1.0, 0.0), (2.0, 0.0)]);
        let b = t(&[(1.0, 0.0), (2.0, 0.0), (3.0, 4.0)]);
        assert!((erp(&a, &b, G) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn erp_symmetric_and_triangle() {
        let a = t(&[(0.0, 0.0), (2.0, 1.0)]);
        let b = t(&[(1.0, 1.0), (3.0, 0.0), (4.0, 2.0)]);
        let c = t(&[(0.5, 0.5)]);
        let ab = erp(&a, &b, G);
        let ba = erp(&b, &a, G);
        assert!((ab - ba).abs() < 1e-12);
        // ERP is a metric: triangle inequality must hold.
        let ac = erp(&a, &c, G);
        let cb = erp(&c, &b, G);
        assert!(ab <= ac + cb + 1e-9);
    }

    #[test]
    fn erp_reverse_symmetry() {
        let a = t(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        let b = t(&[(0.5, 0.5), (2.0, 2.0)]);
        assert!((erp(&a, &b, G) - erp(&a.reversed(), &b.reversed(), G)).abs() < 1e-9);
    }

    #[test]
    fn edr_counts_mismatches() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = t(&[(0.0, 0.0), (1.0, 0.0), (50.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.5), 1.0);
        assert_eq!(edr(&a, &a, 0.5), 0.0);
    }

    #[test]
    fn edr_bounded_by_max_len() {
        let a = t(&[(0.0, 0.0); 4]);
        let b = t(&[(100.0, 100.0); 7]);
        assert_eq!(edr(&a, &b, 1.0), 7.0);
    }

    #[test]
    fn edr_length_difference_is_floor() {
        let a = t(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = t(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.5), 2.0);
    }
}
