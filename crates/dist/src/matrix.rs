//! Pairwise distance matrices and the distance→similarity transform used
//! as WMSE supervision (Section IV-F).
//!
//! Computing the exact `N x N` matrix is the expensive step the paper
//! complains about ("more than 5 hours ... with 20 multiprocessors"), so
//! this module parallelizes it across all available cores with
//! `std::thread::scope`.

use crate::measure::Measure;
use traj_data::Trajectory;
use traj_index::{top_k_hits, Hit};

/// A symmetric `n x n` matrix of pairwise distances.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates a zero matrix.
    pub fn zeros(n: usize) -> Self {
        DistanceMatrix { n, data: vec![0.0; n * n] }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets `(i, j)` and `(j, i)`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Maximum element, or `None` for an empty (0-trajectory) matrix.
    ///
    /// Folds from `f64::NEG_INFINITY`, not `0.0`, so a matrix whose
    /// entries are all negative reports its true maximum instead of
    /// silently clamping to zero. (Distance matrices are non-negative by
    /// construction, but nothing in this type enforces that, and the
    /// similarity transform produces values below 1.)
    pub fn max(&self) -> Option<f64> {
        if self.data.is_empty() {
            return None;
        }
        Some(self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Indices of the `k` smallest entries in row `i`, excluding the
    /// diagonal — the exact top-k neighbours used as ground truth,
    /// ordered nearest first.
    ///
    /// Delegates to the shared NaN-sound selection helper
    /// [`traj_index::top_k_hits`]: O(n) selection, `f64::total_cmp`
    /// ordering (NaN sorts after every number, so poisoned distances can
    /// never be ranked "nearest"), and deterministic ascending-index
    /// tie-breaking among equal distances.
    pub fn top_k_row(&self, i: usize, k: usize) -> Vec<usize> {
        let hits: Vec<Hit> = (0..self.n)
            .filter(|&j| j != i)
            .map(|j| Hit { index: j, distance: self.get(i, j) })
            .collect();
        top_k_hits(hits, k).into_iter().map(|h| h.index).collect()
    }
}

/// Computes the full symmetric pairwise distance matrix in parallel.
///
/// Work is split by strided rows so threads receive balanced loads even
/// though row `i` only computes `n - i` cells.
pub fn distance_matrix(trajectories: &[Trajectory], measure: Measure) -> DistanceMatrix {
    let n = trajectories.len();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let threads = threads.min(n.max(1));
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    if threads <= 1 || n < 8 {
        for i in 0..n {
            rows.push(upper_row(trajectories, measure, i));
        }
    } else {
        let mut results: Vec<Option<Vec<f64>>> = vec![None; n];
        std::thread::scope(|scope| {
            // Strided row assignment balances work: row i costs n - i
            // distance computations, so contiguous chunks would leave the
            // last thread nearly idle.
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = t;
                        while i < n {
                            out.push((i, upper_row(trajectories, measure, i)));
                            i += threads;
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, row) in h.join().expect("distance worker panicked") {
                    results[i] = Some(row);
                }
            }
        });
        rows = results.into_iter().map(|r| r.expect("row computed")).collect();
    }
    let mut m = DistanceMatrix::zeros(n);
    for (i, row) in rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            let j = i + 1 + off;
            m.set_sym(i, j, v);
        }
    }
    m
}

/// Distances from trajectory `i` to all `j > i`.
fn upper_row(trajectories: &[Trajectory], measure: Measure, i: usize) -> Vec<f64> {
    (i + 1..trajectories.len())
        .map(|j| measure.distance(&trajectories[i], &trajectories[j]))
        .collect()
}

/// Transforms a distance matrix into the similarity supervision matrix of
/// the paper: `S_ij = exp(-theta * D_ij) / max(exp(-theta * D))`.
///
/// The denominator is the largest similarity value (attained at the
/// smallest distance, i.e. the diagonal where `D_ii = 0`), so the output
/// lies in `(0, 1]` with `S_ii = 1`.
pub fn similarity_matrix(d: &DistanceMatrix, theta: f64) -> DistanceMatrix {
    let n = d.n();
    let mut s = DistanceMatrix::zeros(n);
    let mut max_sim = f64::MIN;
    for i in 0..n {
        for j in 0..n {
            let v = (-theta * d.get(i, j)).exp();
            s.data[i * n + j] = v;
            if v > max_sim {
                max_sim = v;
            }
        }
    }
    if max_sim > 0.0 {
        for v in &mut s.data {
            *v /= max_sim;
        }
    }
    s
}

/// Picks `theta` so that the median off-diagonal distance maps to
/// similarity ~`target` (default 0.5 works well); this mirrors the
/// "tunable hyper-parameter to smooth the similarity distribution".
pub fn auto_theta(d: &DistanceMatrix, target: f64) -> f64 {
    let n = d.n();
    let mut vals: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            vals.push(d.get(i, j));
        }
    }
    if vals.is_empty() {
        return 1.0;
    }
    // total_cmp sorts NaN distances last, so a few poisoned entries
    // shift the median slightly instead of scrambling the whole order.
    vals.sort_by(f64::total_cmp);
    let median = vals[vals.len() / 2].max(1e-9);
    -target.clamp(1e-6, 0.999_999).ln() / median
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams, Trajectory};

    fn small_set() -> Vec<Trajectory> {
        CityGenerator::new(CityParams::test_city(), 5).generate(12)
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let ts = small_set();
        let m = distance_matrix(&ts, Measure::Dtw);
        for i in 0..ts.len() {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..ts.len() {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ts = small_set();
        let m = distance_matrix(&ts, Measure::Frechet);
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                if i != j {
                    let direct = Measure::Frechet.distance(&ts[i], &ts[j]);
                    assert!((m.get(i, j) - direct).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn similarity_is_one_on_diagonal_and_monotone() {
        let ts = small_set();
        let d = distance_matrix(&ts, Measure::Hausdorff);
        let s = similarity_matrix(&d, auto_theta(&d, 0.5));
        for i in 0..ts.len() {
            assert!((s.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..ts.len() {
                assert!(s.get(i, j) > 0.0 && s.get(i, j) <= 1.0 + 1e-9);
            }
        }
        // larger distance => smaller similarity
        let (mut dmax, mut dmin) = (0usize, 1usize);
        for j in 1..ts.len() {
            if d.get(0, j) > d.get(0, dmax) {
                dmax = j;
            }
            if d.get(0, j) < d.get(0, dmin) {
                dmin = j;
            }
        }
        assert!(s.get(0, dmin) >= s.get(0, dmax));
    }

    #[test]
    fn auto_theta_hits_target_at_median() {
        let ts = small_set();
        let d = distance_matrix(&ts, Measure::Dtw);
        let theta = auto_theta(&d, 0.5);
        // median distance should map to ~0.5 before normalization
        let mut vals: Vec<f64> = Vec::new();
        for i in 0..ts.len() {
            for j in (i + 1)..ts.len() {
                vals.push(d.get(i, j));
            }
        }
        vals.sort_by(f64::total_cmp);
        let median = vals[vals.len() / 2];
        assert!(((-theta * median).exp() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn top_k_row_returns_nearest() {
        let ts = small_set();
        let d = distance_matrix(&ts, Measure::Dtw);
        let top = d.top_k_row(0, 3);
        assert_eq!(top.len(), 3);
        // results come back nearest-first
        for w in top.windows(2) {
            assert!(d.get(0, w[0]) <= d.get(0, w[1]));
        }
        // every excluded index must be at least as far as the included ones
        let worst_included = top.iter().map(|&j| d.get(0, j)).fold(0.0, f64::max);
        for j in 1..ts.len() {
            if !top.contains(&j) {
                assert!(d.get(0, j) >= worst_included - 1e-12);
            }
        }
    }

    #[test]
    fn top_k_row_handles_edges_and_nan() {
        let mut d = DistanceMatrix::zeros(4);
        d.set_sym(0, 1, 3.0);
        d.set_sym(0, 2, 1.0);
        d.set_sym(0, 3, f64::NAN);
        // NaN sorts last under total_cmp — it is never ranked "nearest"
        assert_eq!(d.top_k_row(0, 2), vec![2, 1]);
        assert_eq!(d.top_k_row(0, 3), vec![2, 1, 3]);
        // k = 0 and k >= n-1 work
        assert!(d.top_k_row(0, 0).is_empty());
        assert_eq!(d.top_k_row(0, 10).len(), 3);
    }

    #[test]
    fn max_reports_negative_maxima_and_empty() {
        assert_eq!(DistanceMatrix::zeros(0).max(), None);
        let mut d = DistanceMatrix::zeros(2);
        d.set_sym(0, 1, -2.0);
        d.data[0] = -5.0;
        d.data[3] = -4.0;
        assert_eq!(d.max(), Some(-2.0), "all-negative matrix must not clamp to 0");
    }
}
