//! Lower bounds on trajectory distances (Lemma 1 of the paper).
//!
//! For DTW and the discrete Fréchet distance the first points of the two
//! trajectories always match, as do the last points, so the pointwise
//! Euclidean distance between either pair lower-bounds the full distance.
//! The paper uses this to justify the lower-bound induced read-out layer
//! (Eq. 13): the first token's embedding is used as the trajectory
//! embedding, and reverse augmentation covers the last-point bound.

use traj_data::{BoundingBox, Point, Trajectory};

/// `d(first(a), first(b))` — a lower bound of DTW and Fréchet (Lemma 1).
pub fn first_point_bound(a: &Trajectory, b: &Trajectory) -> f64 {
    a.first().distance(&b.first())
}

/// `d(last(a), last(b))` — also a lower bound of DTW and Fréchet.
pub fn last_point_bound(a: &Trajectory, b: &Trajectory) -> f64 {
    a.last().distance(&b.last())
}

/// The tighter of the two endpoint bounds.
pub fn endpoint_bound(a: &Trajectory, b: &Trajectory) -> f64 {
    first_point_bound(a, b).max(last_point_bound(a, b))
}

/// LB_Kim-style bound: the maximum over the four endpoint-feature
/// distances that all lower-bound DTW with endpoint-matching, using the
/// first and last points.
pub fn lb_kim(a: &Trajectory, b: &Trajectory) -> f64 {
    first_point_bound(a, b).max(last_point_bound(a, b))
}

/// Bounding-box lower bound on the symmetric Hausdorff distance (and
/// therefore on discrete Fréchet, DTW, and cDTW, which all dominate it).
///
/// Why it is a lower bound: let `a*` be the point of `A` attaining
/// `A.min_x`, and suppose `B.min_x >= A.min_x`. Every point of `B` has
/// `x >= B.min_x`, so `d(a*, b) >= B.min_x - A.min_x` for all `b in B`
/// and the directed Hausdorff `h(A→B) >= B.min_x - A.min_x`. The
/// symmetric case covers `A.min_x >= B.min_x`, so the symmetric
/// Hausdorff dominates `|A.min_x - B.min_x|`; the same argument applies
/// to each of the other three edges. Fréchet and DTW dominate the
/// symmetric Hausdorff because a warping path matches every point of
/// each trajectory at least once (DTW *sums* the matched distances;
/// Fréchet takes their max), and cDTW only restricts the path set, so
/// it dominates DTW.
pub fn bbox_bound(a: &BoundingBox, b: &BoundingBox) -> f64 {
    (a.min_x - b.min_x)
        .abs()
        .max((a.max_x - b.max_x).abs())
        .max((a.min_y - b.min_y).abs())
        .max((a.max_y - b.max_y).abs())
}

/// Precomputed per-trajectory features consumed by the lower bounds:
/// endpoints (Lemma 1) and the axis-aligned bounding box
/// ([`bbox_bound`]). Building profiles once turns every pairwise bound
/// evaluation into O(1) work, which is what makes lower-bound pruning
/// cheaper than the exact distances it avoids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundProfile {
    /// First point of the trajectory.
    pub first: Point,
    /// Last point of the trajectory.
    pub last: Point,
    /// Axis-aligned bounding box of the trajectory.
    pub bbox: BoundingBox,
}

impl BoundProfile {
    /// Builds the profile of one trajectory.
    ///
    /// An empty trajectory gets a degenerate profile at the origin; the
    /// exact measures panic on empty inputs anyway, so such a profile is
    /// never compared against a real distance.
    pub fn of(t: &Trajectory) -> BoundProfile {
        match t.bbox() {
            Some(bbox) => BoundProfile { first: t.first(), last: t.last(), bbox },
            None => {
                let origin = Point::new(0.0, 0.0);
                BoundProfile {
                    first: origin,
                    last: origin,
                    bbox: BoundingBox::from_extent(0.0, 0.0),
                }
            }
        }
    }

    /// Profiles for a whole corpus.
    pub fn of_all(trajectories: &[Trajectory]) -> Vec<BoundProfile> {
        trajectories.iter().map(BoundProfile::of).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;
    use crate::frechet::frechet;
    use traj_data::Trajectory;

    fn zigzag(seed: u64, n: usize) -> Trajectory {
        // Simple deterministic pseudo-random polyline.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0 - 5.0
        };
        Trajectory::from_xy(&(0..n).map(|_| (next(), next())).collect::<Vec<_>>())
    }

    #[test]
    fn endpoint_bounds_hold_for_dtw() {
        for s in 0..20 {
            let a = zigzag(s, 6 + (s % 5) as usize);
            let b = zigzag(s + 100, 4 + (s % 7) as usize);
            let d = dtw(&a, &b);
            assert!(first_point_bound(&a, &b) <= d + 1e-9);
            assert!(last_point_bound(&a, &b) <= d + 1e-9);
            assert!(endpoint_bound(&a, &b) <= d + 1e-9);
        }
    }

    #[test]
    fn endpoint_bounds_hold_for_frechet() {
        for s in 0..20 {
            let a = zigzag(s, 5 + (s % 4) as usize);
            let b = zigzag(s + 77, 3 + (s % 6) as usize);
            let f = frechet(&a, &b);
            assert!(first_point_bound(&a, &b) <= f + 1e-9);
            assert!(last_point_bound(&a, &b) <= f + 1e-9);
        }
    }

    #[test]
    fn bbox_bound_holds_for_hausdorff_dtw_frechet() {
        use crate::hausdorff::hausdorff;
        for s in 0..40 {
            let a = zigzag(s, 3 + (s % 6) as usize);
            let b = zigzag(s + 1000, 2 + (s % 5) as usize);
            let pa = BoundProfile::of(&a);
            let pb = BoundProfile::of(&b);
            let lb = bbox_bound(&pa.bbox, &pb.bbox);
            assert!(lb <= hausdorff(&a, &b) + 1e-9, "bbox bound exceeds Hausdorff");
            assert!(lb <= dtw(&a, &b) + 1e-9, "bbox bound exceeds DTW");
            assert!(lb <= frechet(&a, &b) + 1e-9, "bbox bound exceeds Frechet");
        }
    }

    #[test]
    fn bbox_bound_is_tight_for_translated_boxes() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0)]);
        let b = Trajectory::from_xy(&[(10.0, 0.0), (11.0, 1.0)]);
        let pa = BoundProfile::of(&a);
        let pb = BoundProfile::of(&b);
        assert_eq!(bbox_bound(&pa.bbox, &pb.bbox), 10.0);
    }

    #[test]
    fn profile_of_empty_trajectory_is_degenerate() {
        let p = BoundProfile::of(&Trajectory::default());
        assert_eq!(p.first, p.last);
        assert_eq!(p.bbox.width(), 0.0);
    }

    #[test]
    fn bound_is_tight_for_single_points() {
        let a = Trajectory::from_xy(&[(0.0, 0.0)]);
        let b = Trajectory::from_xy(&[(3.0, 4.0)]);
        assert_eq!(endpoint_bound(&a, &b), 5.0);
        assert_eq!(dtw(&a, &b), 5.0);
        assert_eq!(frechet(&a, &b), 5.0);
    }
}
