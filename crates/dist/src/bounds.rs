//! Lower bounds on trajectory distances (Lemma 1 of the paper).
//!
//! For DTW and the discrete Fréchet distance the first points of the two
//! trajectories always match, as do the last points, so the pointwise
//! Euclidean distance between either pair lower-bounds the full distance.
//! The paper uses this to justify the lower-bound induced read-out layer
//! (Eq. 13): the first token's embedding is used as the trajectory
//! embedding, and reverse augmentation covers the last-point bound.

use traj_data::Trajectory;

/// `d(first(a), first(b))` — a lower bound of DTW and Fréchet (Lemma 1).
pub fn first_point_bound(a: &Trajectory, b: &Trajectory) -> f64 {
    a.first().distance(&b.first())
}

/// `d(last(a), last(b))` — also a lower bound of DTW and Fréchet.
pub fn last_point_bound(a: &Trajectory, b: &Trajectory) -> f64 {
    a.last().distance(&b.last())
}

/// The tighter of the two endpoint bounds.
pub fn endpoint_bound(a: &Trajectory, b: &Trajectory) -> f64 {
    first_point_bound(a, b).max(last_point_bound(a, b))
}

/// LB_Kim-style bound: the maximum over the four endpoint-feature
/// distances that all lower-bound DTW with endpoint-matching, using the
/// first and last points.
pub fn lb_kim(a: &Trajectory, b: &Trajectory) -> f64 {
    first_point_bound(a, b).max(last_point_bound(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;
    use crate::frechet::frechet;
    use traj_data::Trajectory;

    fn zigzag(seed: u64, n: usize) -> Trajectory {
        // Simple deterministic pseudo-random polyline.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0 - 5.0
        };
        Trajectory::from_xy(&(0..n).map(|_| (next(), next())).collect::<Vec<_>>())
    }

    #[test]
    fn endpoint_bounds_hold_for_dtw() {
        for s in 0..20 {
            let a = zigzag(s, 6 + (s % 5) as usize);
            let b = zigzag(s + 100, 4 + (s % 7) as usize);
            let d = dtw(&a, &b);
            assert!(first_point_bound(&a, &b) <= d + 1e-9);
            assert!(last_point_bound(&a, &b) <= d + 1e-9);
            assert!(endpoint_bound(&a, &b) <= d + 1e-9);
        }
    }

    #[test]
    fn endpoint_bounds_hold_for_frechet() {
        for s in 0..20 {
            let a = zigzag(s, 5 + (s % 4) as usize);
            let b = zigzag(s + 77, 3 + (s % 6) as usize);
            let f = frechet(&a, &b);
            assert!(first_point_bound(&a, &b) <= f + 1e-9);
            assert!(last_point_bound(&a, &b) <= f + 1e-9);
        }
    }

    #[test]
    fn bound_is_tight_for_single_points() {
        let a = Trajectory::from_xy(&[(0.0, 0.0)]);
        let b = Trajectory::from_xy(&[(3.0, 4.0)]);
        assert_eq!(endpoint_bound(&a, &b), 5.0);
        assert_eq!(dtw(&a, &b), 5.0);
        assert_eq!(frechet(&a, &b), 5.0);
    }
}
