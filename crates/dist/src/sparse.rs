//! Sparse, bucket-pruned, *exact* top-k distance computation.
//!
//! The dense [`crate::matrix::DistanceMatrix`] materializes all `n²`
//! pairwise distances, which caps experiments at ~20K trajectories. This
//! module replaces it for supervision and ground truth with a pruned
//! sweep that computes only the pairs that could possibly matter, while
//! returning *bit-for-bit* the same top-k results as the dense path:
//!
//! 1. **Seed** each query's k-th-distance threshold `τ` from the
//!    candidates most likely to be near it: the members of its own
//!    coarse-grid bucket and of the buckets whose endpoint cells touch
//!    its own ([`traj_grid::GridBuckets::candidate_buckets`], the Eq. 20
//!    clusters extended with neighbor adjacency).
//! 2. **Sweep** every remaining bucket. A whole bucket is skipped when
//!    its aggregate lower bound exceeds `τ`; a surviving bucket's members
//!    are skipped individually when their per-pair lower bound
//!    ([`Measure::lower_bound`]: Lemma 1 endpoints and/or the
//!    bounding-box bound) exceeds `τ`. Everything else is computed
//!    exactly and tightens `τ`.
//!
//! **Exactness argument.** `τ` is always the k-th smallest *computed*
//! distance (`∞` while fewer than k are computed), so it never
//! underestimates the true k-th distance: `τ ≥ τ_final ≥ d_(k)`. A pair
//! is pruned only when its lower bound is *strictly* greater than the
//! current `τ`, hence its distance satisfies `d ≥ lb > τ ≥ d_(k)` — it
//! cannot belong to the top k, and (because the inequality is strict) it
//! cannot even tie with the k-th. Conversely any pair with `d ≤ d_(k)`
//! has `lb ≤ d ≤ d_(k) ≤ τ` at every step and is therefore always
//! computed. So the computed set contains every pair at distance
//! `≤ d_(k)`, and running the shared [`top_k_hits`] selection over it
//! yields exactly the dense result, including `total_cmp` NaN ordering
//! and ascending-index tie-breaks.

use crate::bounds::BoundProfile;
use crate::matrix::DistanceMatrix;
use crate::measure::Measure;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use traj_data::{BoundingBox, Point, Trajectory};
use traj_grid::{bucket_by_grid, GridBuckets, GridSpec};
use traj_index::{cmp_hits, top_k_hits, Hit};

/// Configuration of the pruned exact top-k driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunedTopK {
    /// Number of nearest neighbors per query.
    pub k: usize,
    /// Coarse-grid cell size in meters used for bucketing (the paper's
    /// Eq. 20 coarse grid; 500 m is the paper's choice).
    pub cell_m: f64,
    /// When true, every computed `(query, candidate, distance)` triple is
    /// retained in a [`SparseDistances`] — the raw material for sparse
    /// similarity supervision.
    pub keep_distances: bool,
    /// Worker thread cap; `None` uses the available parallelism.
    pub threads: Option<usize>,
}

impl PrunedTopK {
    /// Driver with the default 500 m coarse cell.
    pub fn new(k: usize) -> Self {
        PrunedTopK { k, cell_m: 500.0, keep_distances: false, threads: None }
    }

    /// Sets the coarse cell size.
    pub fn with_cell_m(mut self, cell_m: f64) -> Self {
        self.cell_m = cell_m;
        self
    }

    /// Retains all computed distances.
    pub fn keeping_distances(mut self) -> Self {
        self.keep_distances = true;
        self
    }

    /// Caps the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// Typed failures of the pruned driver. Lib code propagates these
/// instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneError {
    /// The configured coarse cell size is not a positive finite number.
    InvalidCellSize,
    /// A worker thread panicked mid-sweep (a bug in a distance kernel,
    /// e.g. an empty trajectory reaching Hausdorff).
    WorkerPanicked,
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::InvalidCellSize => {
                write!(f, "coarse cell size must be a positive finite number")
            }
            PruneError::WorkerPanicked => write!(f, "pruned sweep worker panicked"),
        }
    }
}

impl std::error::Error for PruneError {}

/// Counters describing how much work the pruned sweep avoided.
/// `pairs_total = pairs_pruned_bucket + pairs_pruned_lb + pairs_exact`;
/// `pairs_seeded ⊆ pairs_exact` (seeds are computed exactly too).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Query–candidate pairs considered (excludes self-pairs).
    pub pairs_total: u64,
    /// Pairs computed during threshold seeding (own + neighbor buckets).
    pub pairs_seeded: u64,
    /// Pairs skipped because their whole bucket's aggregate lower bound
    /// exceeded the threshold.
    pub pairs_pruned_bucket: u64,
    /// Pairs skipped by their individual lower bound.
    pub pairs_pruned_lb: u64,
    /// Pairs computed exactly (seeds + lower-bound survivors).
    pub pairs_exact: u64,
}

impl PruneStats {
    /// Fraction of pairs skipped without an exact computation.
    pub fn pruned_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        (self.pairs_pruned_bucket + self.pairs_pruned_lb) as f64 / self.pairs_total as f64
    }

    fn merge(&mut self, o: &PruneStats) {
        self.pairs_total += o.pairs_total;
        self.pairs_seeded += o.pairs_seeded;
        self.pairs_pruned_bucket += o.pairs_pruned_bucket;
        self.pairs_pruned_lb += o.pairs_pruned_lb;
        self.pairs_exact += o.pairs_exact;
    }
}

/// CSR-style per-row neighbor lists: which columns each row touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePairs {
    offsets: Vec<usize>,
    cols: Vec<usize>,
}

impl SparsePairs {
    /// Builds from per-row column lists.
    pub fn from_rows(rows: &[Vec<usize>]) -> SparsePairs {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0);
        let mut cols = Vec::new();
        for r in rows {
            cols.extend_from_slice(r);
            offsets.push(cols.len());
        }
        SparsePairs { offsets, cols }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Columns of row `i`.
    pub fn row(&self, i: usize) -> &[usize] {
        &self.cols[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }
}

/// CSR matrix of the distances a pruned sweep actually computed, plus
/// the per-row pruning threshold `τ` each row ended with. Every absent
/// `(i, j)` was pruned, which certifies `d(i, j) > τ_i` — the fact the
/// sparse similarity transform uses to give unstored pairs a sound
/// (upper-bound) similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDistances {
    pairs: SparsePairs,
    vals: Vec<f64>,
    thresholds: Vec<f64>,
}

impl SparseDistances {
    /// Number of rows (queries).
    pub fn n_rows(&self) -> usize {
        self.pairs.n_rows()
    }

    /// Stored `(columns, distances)` of row `i`, columns ascending.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.pairs.offsets[i];
        let hi = self.pairs.offsets[i + 1];
        (&self.pairs.cols[lo..hi], &self.vals[lo..hi])
    }

    /// The stored distance of `(i, j)`, or `None` when the pair was
    /// pruned (certified `> threshold(i)`).
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| vals[p])
    }

    /// The pruning threshold row `i` ended with: the k-th smallest
    /// computed distance, or `+∞` when fewer than k pairs exist (in
    /// which case nothing was pruned).
    pub fn threshold(&self, i: usize) -> f64 {
        self.thresholds[i]
    }

    /// Total number of stored distances.
    pub fn nnz(&self) -> usize {
        self.pairs.nnz()
    }

    /// The sparsity pattern.
    pub fn pairs(&self) -> &SparsePairs {
        &self.pairs
    }
}

/// Result of a pruned sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedResult {
    /// Per-query indices of the k nearest candidates, nearest first —
    /// bit-for-bit what the dense path returns.
    pub top_k: Vec<Vec<usize>>,
    /// All computed distances, when [`PrunedTopK::keep_distances`] was
    /// set.
    pub distances: Option<SparseDistances>,
    /// Work counters.
    pub stats: PruneStats,
}

/// Exact pruned top-k of every query against a database (the ground
/// truth protocol: queries and database are disjoint sets, no index is
/// excluded).
pub fn pruned_top_k(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
    cfg: &PrunedTopK,
) -> Result<PrunedResult, PruneError> {
    run(queries, database, measure, cfg, false)
}

/// Exact pruned top-k of every corpus trajectory against the rest of the
/// corpus (the supervision self-join: the diagonal is excluded, matching
/// [`DistanceMatrix::top_k_row`]).
pub fn pruned_self_top_k(
    corpus: &[Trajectory],
    measure: Measure,
    cfg: &PrunedTopK,
) -> Result<PrunedResult, PruneError> {
    run(corpus, corpus, measure, cfg, true)
}

/// Max-heap wrapper holding the k smallest computed hits; the top is the
/// current k-th best, whose distance is the pruning threshold `τ`.
struct HeapHit(Hit);

impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        cmp_hits(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for HeapHit {}
impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_hits(&self.0, &other.0)
    }
}

/// Per-bucket aggregates that lower-bound every member's lower bound:
/// boxes over the members' endpoints and intervals over the members'
/// bounding-box edges. `bucket_lb ≤ min_{m ∈ bucket} lb(q, m) ≤
/// min_{m} d(q, m)`, so pruning a whole bucket on `bucket_lb > τ` is as
/// sound as pruning each member individually.
struct BucketAgg {
    first_box: BoundingBox,
    last_box: BoundingBox,
    min_x: (f64, f64),
    max_x: (f64, f64),
    min_y: (f64, f64),
    max_y: (f64, f64),
}

fn point_box_dist(p: Point, b: &BoundingBox) -> f64 {
    let dx = (b.min_x - p.x).max(p.x - b.max_x).max(0.0);
    let dy = (b.min_y - p.y).max(p.y - b.max_y).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

fn interval_dist(v: f64, (lo, hi): (f64, f64)) -> f64 {
    (lo - v).max(v - hi).max(0.0)
}

fn build_aggs(buckets: &GridBuckets, profiles: &[BoundProfile]) -> Vec<BucketAgg> {
    buckets
        .buckets
        .iter()
        .map(|members| {
            let p0 = &profiles[members[0]];
            let mut agg = BucketAgg {
                first_box: BoundingBox {
                    min_x: p0.first.x,
                    min_y: p0.first.y,
                    max_x: p0.first.x,
                    max_y: p0.first.y,
                },
                last_box: BoundingBox {
                    min_x: p0.last.x,
                    min_y: p0.last.y,
                    max_x: p0.last.x,
                    max_y: p0.last.y,
                },
                min_x: (p0.bbox.min_x, p0.bbox.min_x),
                max_x: (p0.bbox.max_x, p0.bbox.max_x),
                min_y: (p0.bbox.min_y, p0.bbox.min_y),
                max_y: (p0.bbox.max_y, p0.bbox.max_y),
            };
            for &m in &members[1..] {
                let p = &profiles[m];
                agg.first_box.expand(p.first);
                agg.last_box.expand(p.last);
                agg.min_x = (agg.min_x.0.min(p.bbox.min_x), agg.min_x.1.max(p.bbox.min_x));
                agg.max_x = (agg.max_x.0.min(p.bbox.max_x), agg.max_x.1.max(p.bbox.max_x));
                agg.min_y = (agg.min_y.0.min(p.bbox.min_y), agg.min_y.1.max(p.bbox.min_y));
                agg.max_y = (agg.max_y.0.min(p.bbox.max_y), agg.max_y.1.max(p.bbox.max_y));
            }
            agg
        })
        .collect()
}

fn bucket_lower_bound(measure: Measure, q: &BoundProfile, agg: &BucketAgg) -> f64 {
    let mut lb = 0.0f64;
    if measure.has_endpoint_lower_bound() {
        lb = lb
            .max(point_box_dist(q.first, &agg.first_box))
            .max(point_box_dist(q.last, &agg.last_box));
    }
    if measure.has_bbox_lower_bound() {
        lb = lb
            .max(interval_dist(q.bbox.min_x, agg.min_x))
            .max(interval_dist(q.bbox.max_x, agg.max_x))
            .max(interval_dist(q.bbox.min_y, agg.min_y))
            .max(interval_dist(q.bbox.max_y, agg.max_y));
    }
    lb
}

/// Everything one query's sweep produces.
struct RowOut {
    top_k: Vec<usize>,
    pairs: Option<(Vec<usize>, Vec<f64>)>,
    threshold: f64,
    stats: PruneStats,
}

/// Shared read-only context of a sweep, built once per run.
struct SweepCtx<'a> {
    database: &'a [Trajectory],
    profiles: &'a [BoundProfile],
    buckets: &'a GridBuckets,
    aggs: &'a [BucketAgg],
    measure: Measure,
    cfg: &'a PrunedTopK,
    self_join: bool,
}

/// The coarse grid over the database extent, padded so a degenerate
/// (zero-width or zero-height) extent still yields a valid grid.
fn coarse_spec(database: &[Trajectory], cell_m: f64) -> Option<GridSpec> {
    let mut bb = BoundingBox::of_dataset(database)?;
    if bb.width() <= 0.0 {
        bb.max_x = bb.min_x + cell_m;
    }
    if bb.height() <= 0.0 {
        bb.max_y = bb.min_y + cell_m;
    }
    Some(GridSpec::new(bb, cell_m))
}

fn empty_result(nq: usize, keep: bool) -> PrunedResult {
    PrunedResult {
        top_k: vec![Vec::new(); nq],
        distances: keep.then(|| SparseDistances {
            pairs: SparsePairs::from_rows(&vec![Vec::new(); nq]),
            vals: Vec::new(),
            thresholds: vec![f64::INFINITY; nq],
        }),
        stats: PruneStats::default(),
    }
}

fn sweep_one(qi: usize, query: &Trajectory, qprof: &BoundProfile, ctx: &SweepCtx<'_>) -> RowOut {
    let SweepCtx { database, profiles, buckets, aggs, measure, cfg, self_join } = *ctx;
    let k = cfg.k;
    let mut stats = PruneStats::default();
    let mut computed: Vec<Hit> = Vec::new();
    let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(k + 1);
    let mut tau = f64::INFINITY;

    let visit = |j: usize,
                 computed: &mut Vec<Hit>,
                 heap: &mut BinaryHeap<HeapHit>,
                 tau: &mut f64| {
        let d = measure.distance(query, &database[j]);
        let hit = Hit { index: j, distance: d };
        computed.push(hit);
        if heap.len() < k {
            heap.push(HeapHit(hit));
        } else if let Some(top) = heap.peek() {
            if cmp_hits(&hit, &top.0) == Ordering::Less {
                heap.pop();
                heap.push(HeapHit(hit));
            }
        }
        if heap.len() >= k {
            if let Some(top) = heap.peek() {
                *tau = top.0.distance;
            }
        }
    };

    // Phase 1: seed τ from the query's own bucket and its endpoint
    // neighbors — the candidates most likely to be true nearest
    // neighbors, so τ drops fast before the global sweep.
    let cand = buckets.candidate_buckets(query);
    for &b in &cand {
        for &j in &buckets.buckets[b] {
            if self_join && j == qi {
                continue;
            }
            visit(j, &mut computed, &mut heap, &mut tau);
            stats.pairs_seeded += 1;
            stats.pairs_exact += 1;
            stats.pairs_total += 1;
        }
    }

    // Phase 2: sweep the remaining buckets, gating first on the bucket
    // aggregate bound, then on the per-pair bound. Both prunes are
    // strict (`> τ`), which preserves tie-breaking exactly.
    let mut cand_iter = cand.iter().peekable();
    for (bi, members) in buckets.buckets.iter().enumerate() {
        if cand_iter.peek() == Some(&&bi) {
            cand_iter.next();
            continue;
        }
        let self_in_bucket = self_join && buckets.bucket_of[qi] == bi;
        let n_here = (members.len() - usize::from(self_in_bucket)) as u64;
        stats.pairs_total += n_here;
        if bucket_lower_bound(measure, qprof, &aggs[bi]) > tau {
            stats.pairs_pruned_bucket += n_here;
            continue;
        }
        for &j in members {
            if self_join && j == qi {
                continue;
            }
            if measure.lower_bound(qprof, &profiles[j]) > tau {
                stats.pairs_pruned_lb += 1;
            } else {
                visit(j, &mut computed, &mut heap, &mut tau);
                stats.pairs_exact += 1;
            }
        }
    }

    // Finish through the shared selection helper so ordering and
    // tie-breaks are literally the dense code path's.
    let pairs = cfg.keep_distances.then(|| {
        let mut sorted = computed.clone();
        sorted.sort_unstable_by_key(|h| h.index);
        let cols = sorted.iter().map(|h| h.index).collect();
        let vals = sorted.iter().map(|h| h.distance).collect();
        (cols, vals)
    });
    let top_k = top_k_hits(computed, k).into_iter().map(|h| h.index).collect();
    RowOut { top_k, pairs, threshold: tau, stats }
}

fn run(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
    cfg: &PrunedTopK,
    self_join: bool,
) -> Result<PrunedResult, PruneError> {
    if !cfg.cell_m.is_finite() || cfg.cell_m <= 0.0 {
        return Err(PruneError::InvalidCellSize);
    }
    let nq = queries.len();
    if nq == 0 || database.is_empty() || cfg.k == 0 {
        return Ok(empty_result(nq, cfg.keep_distances));
    }
    let Some(spec) = coarse_spec(database, cfg.cell_m) else {
        // No point anywhere in the database: nothing can be computed.
        return Ok(empty_result(nq, cfg.keep_distances));
    };
    let started = std::time::Instant::now();
    let profiles = BoundProfile::of_all(database);
    let qprofiles: Vec<BoundProfile> = if self_join {
        Vec::new() // reuse `profiles`
    } else {
        BoundProfile::of_all(queries)
    };
    let qprof = |i: usize| if self_join { &profiles[i] } else { &qprofiles[i] };
    let buckets = bucket_by_grid(database, &spec);
    let aggs = build_aggs(&buckets, &profiles);
    let ctx = SweepCtx {
        database,
        profiles: &profiles,
        buckets: &buckets,
        aggs: &aggs,
        measure,
        cfg,
        self_join,
    };

    let threads = cfg
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1))
        .clamp(1, nq);
    let mut rows: Vec<Option<RowOut>> = Vec::new();
    if threads <= 1 || nq < 4 {
        rows.extend((0..nq).map(|i| Some(sweep_one(i, &queries[i], qprof(i), &ctx))));
    } else {
        rows.resize_with(nq, || None);
        let joined: Result<(), PruneError> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let ctx = &ctx;
                    let qprof = &qprof;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = t;
                        while i < nq {
                            out.push((i, sweep_one(i, &queries[i], qprof(i), ctx)));
                            i += threads;
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                let worker = h.join().map_err(|_| PruneError::WorkerPanicked)?;
                for (i, r) in worker {
                    rows[i] = Some(r);
                }
            }
            Ok(())
        });
        joined?;
    }

    let mut stats = PruneStats::default();
    let mut top_k = Vec::with_capacity(nq);
    let mut pair_rows: Vec<Vec<usize>> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut thresholds: Vec<f64> = Vec::new();
    let obs = traj_obs::enabled();
    for row in rows {
        // Every slot was filled: sweep_one ran for each strided index.
        let Some(row) = row else { return Err(PruneError::WorkerPanicked) };
        stats.merge(&row.stats);
        if obs {
            traj_obs::observe_value(
                "gt.exact_per_query",
                (row.stats.pairs_exact) as f64,
            );
        }
        top_k.push(row.top_k);
        if cfg.keep_distances {
            if let Some((cols, v)) = row.pairs {
                pair_rows.push(cols);
                vals.extend_from_slice(&v);
            }
            thresholds.push(row.threshold);
        }
    }
    if obs {
        traj_obs::counter("gt.pairs_total", stats.pairs_total);
        traj_obs::counter("gt.pairs_seeded", stats.pairs_seeded);
        traj_obs::counter("gt.pairs_pruned_bucket", stats.pairs_pruned_bucket);
        traj_obs::counter("gt.pairs_pruned_lb", stats.pairs_pruned_lb);
        traj_obs::counter("gt.pairs_exact", stats.pairs_exact);
        traj_obs::observe_secs("gt.sweep_secs", started.elapsed().as_secs_f64());
    }
    let distances = cfg.keep_distances.then(|| SparseDistances {
        pairs: SparsePairs::from_rows(&pair_rows),
        vals,
        thresholds,
    });
    Ok(PrunedResult { top_k, distances, stats })
}

/// Sparse counterpart of [`crate::matrix::similarity_matrix`].
///
/// Stored pairs carry the exact `exp(-θ·d)` similarity (no
/// normalization is needed: the dense path's normalizer is the diagonal
/// similarity `exp(0) = 1`, so stored values are bit-identical to the
/// dense matrix entries). The diagonal is an implicit `1`. Every
/// *unstored* pair `(i, j)` was pruned at threshold `τ_i`, certifying
/// `d > τ_i` and hence `sim < exp(-θ·τ_i)`; [`SparseSimilarity::get`]
/// returns that per-row floor, a sound upper bound that degrades to `0`
/// when nothing was pruned (`τ_i = ∞`).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSimilarity {
    n: usize,
    pairs: SparsePairs,
    vals: Vec<f64>,
    floors: Vec<f64>,
    theta: f64,
}

impl SparseSimilarity {
    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `θ` used for the transform.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Similarity of `(i, j)`: `1` on the diagonal, the exact value for
    /// stored pairs, the row's pruning floor otherwise.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => self.floors[i],
        }
    }

    /// Stored `(columns, similarities)` of row `i`, columns ascending.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.pairs.offsets[i];
        let hi = self.pairs.offsets[i + 1];
        (&self.pairs.cols[lo..hi], &self.vals[lo..hi])
    }

    /// The similarity ceiling of row `i`'s pruned pairs.
    pub fn floor(&self, i: usize) -> f64 {
        self.floors[i]
    }

    /// Total number of stored similarities.
    pub fn nnz(&self) -> usize {
        self.pairs.nnz()
    }

    /// Materializes row `i` as a dense vector, matching
    /// [`SparseSimilarity::get`] position by position: exact stored
    /// similarities, `1` on the diagonal, the row floor everywhere else.
    /// On a fully-stored row this is bit-identical to the dense
    /// similarity matrix row, which is what keeps the trainer's
    /// companion sampling dense-equivalent on small corpora.
    pub fn dense_row(&self, i: usize) -> Vec<f64> {
        let mut out = vec![self.floors[i]; self.n];
        out[i] = 1.0;
        let (cols, vals) = self.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            out[j] = v;
        }
        out
    }

    /// Materializes a dense, symmetric similarity matrix — glue for the
    /// baseline trainers that still take a `DistanceMatrix`. A pair
    /// stored in either direction uses its exact value; a pair stored in
    /// neither uses the tighter (smaller) of the two row floors. On a
    /// fully-stored structure (small corpora, where nothing prunes) the
    /// result is bit-identical to the dense `similarity_matrix`.
    pub fn to_dense(&self) -> DistanceMatrix {
        let n = self.n;
        let mut m = DistanceMatrix::zeros(n);
        for i in 0..n {
            m.set_sym(i, i, 1.0);
            let (cols, vals) = self.row(i);
            for j in i + 1..n {
                let fwd = cols.binary_search(&j).ok().map(|p| vals[p]);
                let v = match fwd.or_else(|| {
                    let (jc, jv) = self.row(j);
                    jc.binary_search(&i).ok().map(|p| jv[p])
                }) {
                    Some(exact) => exact,
                    None => self.floors[i].min(self.floors[j]),
                };
                m.set_sym(i, j, v);
            }
        }
        m
    }
}

/// Builds the sparse similarity structure from a pruned self-join's
/// retained distances.
pub fn sparse_similarity(d: &SparseDistances, theta: f64) -> SparseSimilarity {
    let n = d.n_rows();
    let vals = d.vals.iter().map(|&v| (-theta * v).exp()).collect();
    let floors = d
        .thresholds
        .iter()
        .map(|&t| if t.is_finite() { (-theta * t).exp() } else { 0.0 })
        .collect();
    SparseSimilarity { n, pairs: d.pairs.clone(), vals, floors, theta }
}

/// Sparse counterpart of [`crate::matrix::auto_theta`]: picks `θ` so the
/// median *stored* distance maps to similarity ~`target`. On a
/// fully-stored self-join this selects exactly the dense path's median
/// (each unordered pair appears once per direction, which leaves the
/// median element unchanged), so tiny corpora keep their dense θ
/// bit-for-bit.
pub fn auto_theta_sparse(d: &SparseDistances, target: f64) -> f64 {
    let mut vals: Vec<f64> = d.vals.clone();
    if vals.is_empty() {
        return 1.0;
    }
    // total_cmp sorts NaN distances last, matching the dense path.
    vals.sort_by(f64::total_cmp);
    let median = vals[vals.len() / 2].max(1e-9);
    -target.clamp(1e-6, 0.999_999).ln() / median
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{auto_theta, distance_matrix, similarity_matrix};
    use traj_data::{CityGenerator, CityParams};

    fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
        CityGenerator::new(CityParams::test_city(), seed).generate(n)
    }

    fn dense_top_k(
        queries: &[Trajectory],
        database: &[Trajectory],
        measure: Measure,
        k: usize,
    ) -> Vec<Vec<usize>> {
        queries
            .iter()
            .map(|q| {
                let hits: Vec<Hit> = database
                    .iter()
                    .enumerate()
                    .map(|(j, t)| Hit { index: j, distance: measure.distance(q, t) })
                    .collect();
                top_k_hits(hits, k).into_iter().map(|h| h.index).collect()
            })
            .collect()
    }

    #[test]
    fn pruned_matches_dense_for_all_measures() {
        let trajs = corpus(7, 80);
        let (queries, database) = trajs.split_at(15);
        for measure in [
            Measure::Dtw,
            Measure::Frechet,
            Measure::Hausdorff,
            Measure::CDtw(8),
            Measure::Erp(Point::new(0.0, 0.0)),
            Measure::Edr(120.0),
        ] {
            for k in [1, 5, 10] {
                let cfg = PrunedTopK::new(k).with_cell_m(500.0);
                let got = pruned_top_k(queries, database, measure, &cfg).unwrap();
                assert_eq!(
                    got.top_k,
                    dense_top_k(queries, database, measure, k),
                    "parity failed for {measure} k={k}"
                );
            }
        }
    }

    #[test]
    fn self_join_matches_dense_matrix_rows() {
        let trajs = corpus(3, 60);
        let k = 10;
        let cfg = PrunedTopK::new(k).with_cell_m(500.0).keeping_distances();
        let got = pruned_self_top_k(&trajs, Measure::Hausdorff, &cfg).unwrap();
        for (i, row) in got.top_k.iter().enumerate() {
            assert!(!row.contains(&i), "self excluded");
            assert_eq!(row.len(), k);
        }
        // Parity against a direct (query-orientation) dense scan with the
        // diagonal excluded.
        let dense: Vec<Vec<usize>> = trajs
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let hits: Vec<Hit> = trajs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(j, t)| Hit {
                        index: j,
                        distance: Measure::Hausdorff.distance(q, t),
                    })
                    .collect();
                top_k_hits(hits, k).into_iter().map(|h| h.index).collect()
            })
            .collect();
        assert_eq!(got.top_k, dense);
    }

    #[test]
    fn stats_are_conserved_and_pruning_fires() {
        let trajs = corpus(11, 400);
        let (queries, database) = trajs.split_at(20);
        let cfg = PrunedTopK::new(10).with_cell_m(500.0);
        let got = pruned_top_k(queries, database, Measure::Hausdorff, &cfg).unwrap();
        let s = got.stats;
        assert_eq!(
            s.pairs_total,
            s.pairs_pruned_bucket + s.pairs_pruned_lb + s.pairs_exact,
            "stats must partition the pair set"
        );
        assert_eq!(s.pairs_total, (queries.len() * database.len()) as u64);
        assert!(s.pairs_seeded <= s.pairs_exact);
        assert!(
            s.pairs_pruned_bucket + s.pairs_pruned_lb > 0,
            "a 400-trajectory city corpus should produce some pruning"
        );
        assert_eq!(s.pruned_fraction(), (s.pairs_pruned_bucket + s.pairs_pruned_lb) as f64 / s.pairs_total as f64);
    }

    #[test]
    fn kept_distances_are_exact_and_thresholded() {
        let trajs = corpus(5, 50);
        let cfg = PrunedTopK::new(5).with_cell_m(500.0).keeping_distances();
        let got = pruned_self_top_k(&trajs, Measure::Frechet, &cfg).unwrap();
        let d = got.distances.unwrap();
        assert_eq!(d.n_rows(), trajs.len());
        for i in 0..trajs.len() {
            let (cols, vals) = d.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "columns sorted");
            for (&j, &v) in cols.iter().zip(vals) {
                assert_ne!(i, j);
                assert_eq!(v, Measure::Frechet.distance(&trajs[i], &trajs[j]));
            }
            // Every top-k member is stored with distance <= threshold.
            for &j in &got.top_k[i] {
                let v = d.get(i, j).expect("top-k pair must be stored");
                assert!(v <= d.threshold(i) || !d.threshold(i).is_finite());
            }
        }
    }

    #[test]
    fn sparse_similarity_matches_dense_when_fully_stored() {
        let trajs = corpus(9, 16);
        // k >= n-1: the heap never fills, τ stays ∞, nothing prunes.
        let cfg = PrunedTopK::new(trajs.len()).with_cell_m(500.0).keeping_distances();
        let got = pruned_self_top_k(&trajs, Measure::Dtw, &cfg).unwrap();
        assert_eq!(got.stats.pairs_pruned_bucket + got.stats.pairs_pruned_lb, 0);
        let sd = got.distances.unwrap();
        let dm = distance_matrix(&trajs, Measure::Dtw);
        let theta_sparse = auto_theta_sparse(&sd, 0.5);
        let theta_dense = auto_theta(&dm, 0.5);
        assert_eq!(theta_sparse, theta_dense, "median selection must agree");
        let ss = sparse_similarity(&sd, theta_sparse);
        let dense = similarity_matrix(&dm, theta_dense);
        for i in 0..trajs.len() {
            for j in 0..trajs.len() {
                let a = ss.get(i, j);
                let b = dense.get(i, j);
                assert!(
                    (a - b).abs() < 1e-12,
                    "sim mismatch at ({i},{j}): sparse {a} dense {b}"
                );
            }
        }
        // And the dense glue reproduces it too.
        let glued = ss.to_dense();
        for i in 0..trajs.len() {
            for j in 0..trajs.len() {
                assert!((glued.get(i, j) - dense.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn floors_upper_bound_pruned_pairs() {
        let trajs = corpus(13, 200);
        let cfg = PrunedTopK::new(5).with_cell_m(400.0).keeping_distances();
        let got = pruned_self_top_k(&trajs, Measure::Hausdorff, &cfg).unwrap();
        let sd = got.distances.unwrap();
        let theta = auto_theta_sparse(&sd, 0.5);
        let ss = sparse_similarity(&sd, theta);
        let mut checked = 0;
        for i in 0..trajs.len() {
            for j in 0..trajs.len() {
                if i != j && sd.get(i, j).is_none() {
                    let true_sim =
                        (-theta * Measure::Hausdorff.distance(&trajs[i], &trajs[j])).exp();
                    assert!(
                        true_sim <= ss.get(i, j) + 1e-12,
                        "floor must upper-bound pruned similarity"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "expected some pruned pairs at n=200");
    }

    #[test]
    fn thread_counts_agree() {
        let trajs = corpus(21, 120);
        let (queries, database) = trajs.split_at(12);
        let base = pruned_top_k(
            queries,
            database,
            Measure::Dtw,
            &PrunedTopK::new(10).with_threads(1),
        )
        .unwrap();
        for threads in [2, 4, 7] {
            let got = pruned_top_k(
                queries,
                database,
                Measure::Dtw,
                &PrunedTopK::new(10).with_threads(threads),
            )
            .unwrap();
            assert_eq!(got.top_k, base.top_k);
            assert_eq!(got.stats, base.stats, "stats are thread-count independent");
        }
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        // Empty query set / database, k = 0, identical points (degenerate
        // bbox).
        let trajs = corpus(1, 10);
        assert_eq!(
            pruned_top_k(&[], &trajs, Measure::Dtw, &PrunedTopK::new(3)).unwrap().top_k,
            Vec::<Vec<usize>>::new()
        );
        let e = pruned_top_k(&trajs[..2], &[], Measure::Dtw, &PrunedTopK::new(3)).unwrap();
        assert_eq!(e.top_k, vec![Vec::<usize>::new(); 2]);
        let z = pruned_top_k(&trajs[..2], &trajs, Measure::Dtw, &PrunedTopK::new(0)).unwrap();
        assert_eq!(z.top_k, vec![Vec::<usize>::new(); 2]);
        let flat = [
            Trajectory::from_xy(&[(5.0, 5.0), (5.0, 5.0)]),
            Trajectory::from_xy(&[(5.0, 5.0)]),
            Trajectory::from_xy(&[(5.0, 5.0), (5.0, 5.0), (5.0, 5.0)]),
        ];
        let got = pruned_top_k(&flat[..1], &flat[1..], Measure::Dtw, &PrunedTopK::new(2)).unwrap();
        assert_eq!(got.top_k, dense_top_k(&flat[..1], &flat[1..], Measure::Dtw, 2));
        assert_eq!(
            pruned_top_k(&flat[..1], &flat[1..], Measure::Dtw, &PrunedTopK::new(2).with_cell_m(0.0)),
            Err(PruneError::InvalidCellSize)
        );
    }
}
