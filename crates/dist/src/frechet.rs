//! Discrete Fréchet distance (Definition 3, second recurrence of Eq. 1).

use traj_data::Trajectory;

/// Discrete Fréchet distance with the recurrence
/// `F[i][j] = max(min(F[i-1][j], F[i][j-1], F[i-1][j-1]), d(p_i, q_j))`.
///
/// Runs in `O(n*m)` time and `O(min(n, m))` space.
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn frechet(a: &Trajectory, b: &Trajectory) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "Frechet of an empty trajectory");
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let m = short.len();
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];
    for (i, p) in long.points.iter().enumerate() {
        for (j, q) in short.points.iter().enumerate() {
            let cost = p.distance(q);
            let reach = if i == 0 && j == 0 {
                cost
            } else {
                let up = if i > 0 { prev[j] } else { f64::INFINITY };
                let left = if j > 0 { cur[j - 1] } else { f64::INFINITY };
                let diag = if i > 0 && j > 0 { prev[j - 1] } else { f64::INFINITY };
                up.min(left).min(diag).max(cost)
            };
            cur[j] = reach;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::Trajectory;

    fn t(xy: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(xy)
    }

    #[test]
    fn identical_is_zero() {
        let a = t(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(frechet(&a, &a), 0.0);
    }

    #[test]
    fn parallel_lines_distance_is_offset() {
        // Two parallel, equally sampled lines: the dog leash never needs
        // more than the vertical offset.
        let a = t(&(0..8).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let b = t(&(0..8).map(|i| (i as f64, 3.0)).collect::<Vec<_>>());
        assert!((frechet(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn frechet_is_bottleneck_not_sum() {
        // Unlike DTW, adding more matched points must not increase the
        // Fréchet distance.
        let a = t(&(0..4).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let b = t(&(0..4).map(|i| (i as f64, 2.0)).collect::<Vec<_>>());
        let short = frechet(&a, &b);
        let a2 = t(&(0..40).map(|i| (i as f64 * 0.1, 0.0)).collect::<Vec<_>>());
        let b2 = t(&(0..40).map(|i| (i as f64 * 0.1, 2.0)).collect::<Vec<_>>());
        assert!((frechet(&a2, &b2) - short).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = t(&[(0.0, 0.0), (4.0, 1.0), (6.0, -2.0)]);
        let b = t(&[(1.0, 1.0), (3.0, 0.0), (7.0, 2.0), (8.0, 0.0)]);
        assert!((frechet(&a, &b) - frechet(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn reverse_symmetry_holds() {
        let a = t(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0), (4.0, 4.0)]);
        let b = t(&[(0.5, 0.5), (2.0, 2.0), (5.0, 3.0)]);
        assert!((frechet(&a, &b) - frechet(&a.reversed(), &b.reversed())).abs() < 1e-12);
    }

    #[test]
    fn lower_bounded_by_endpoint_distance() {
        // In the discrete Fréchet distance the first points always match,
        // so d(first, first) is a lower bound (the paper's Lemma 1 note).
        let a = t(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = t(&[(3.0, 4.0), (6.0, 6.0)]);
        assert!(frechet(&a, &b) >= a.first().distance(&b.first()) - 1e-12);
    }
}
