//! Hausdorff distance between trajectories viewed as point sets.

use traj_data::Trajectory;

/// Directed Hausdorff distance `max_{p in a} min_{q in b} d(p, q)`.
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn directed_hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "Hausdorff of an empty trajectory");
    let mut worst = 0.0f64;
    for p in &a.points {
        let mut best = f64::INFINITY;
        for q in &b.points {
            let d = p.squared_distance(q);
            if d < best {
                best = d;
                if best == 0.0 {
                    break;
                }
            }
        }
        if best > worst {
            worst = best;
        }
    }
    worst.sqrt()
}

/// Symmetric Hausdorff distance
/// `max(directed(a, b), directed(b, a))`.
pub fn hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::Trajectory;

    fn t(xy: &[(f64, f64)]) -> Trajectory {
        Trajectory::from_xy(xy)
    }

    #[test]
    fn identical_is_zero() {
        let a = t(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(hausdorff(&a, &a), 0.0);
    }

    #[test]
    fn directed_is_asymmetric() {
        // b covers a, but a does not cover b's far point.
        let a = t(&[(0.0, 0.0)]);
        let b = t(&[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(directed_hausdorff(&a, &b), 0.0);
        assert_eq!(directed_hausdorff(&b, &a), 10.0);
        assert_eq!(hausdorff(&a, &b), 10.0);
    }

    #[test]
    fn symmetric_by_construction() {
        let a = t(&[(0.0, 0.0), (3.0, 1.0), (6.0, 0.0)]);
        let b = t(&[(1.0, 4.0), (5.0, 2.0)]);
        assert_eq!(hausdorff(&a, &b), hausdorff(&b, &a));
    }

    #[test]
    fn order_invariant() {
        // Hausdorff treats trajectories as sets: permuting points changes
        // nothing (this is why mean pooling fits it best, per Section V-D).
        let a = t(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let shuffled = t(&[(2.0, 0.0), (0.0, 0.0), (1.0, 1.0)]);
        let b = t(&[(0.0, 2.0), (2.0, 2.0)]);
        assert_eq!(hausdorff(&a, &b), hausdorff(&shuffled, &b));
    }

    #[test]
    fn reverse_symmetry_holds() {
        let a = t(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        let b = t(&[(0.5, 0.5), (2.0, 2.0)]);
        assert_eq!(hausdorff(&a, &b), hausdorff(&a.reversed(), &b.reversed()));
    }

    #[test]
    fn known_value() {
        let a = t(&[(0.0, 0.0), (4.0, 0.0)]);
        let b = t(&[(0.0, 3.0), (4.0, 3.0)]);
        assert!((hausdorff(&a, &b) - 3.0).abs() < 1e-12);
    }
}
