//! A unified handle over all supported trajectory distance functions.

use crate::bounds::{bbox_bound, BoundProfile};
use crate::dtw::{cdtw, dtw};
use crate::edit::{edr, erp};
use crate::frechet::frechet;
use crate::hausdorff::hausdorff;
use std::fmt;
use traj_data::{Point, Trajectory};

/// The trajectory distance functions supported by this library.
///
/// The paper's evaluation covers [`Measure::Dtw`], [`Measure::Frechet`],
/// and [`Measure::Hausdorff`]; the rest are provided for downstream users
/// and for the related-work comparison (cDTW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Dynamic Time Warping.
    Dtw,
    /// Discrete Fréchet distance.
    Frechet,
    /// Symmetric Hausdorff distance.
    Hausdorff,
    /// Constrained DTW with the given Sakoe–Chiba half band width.
    CDtw(usize),
    /// Edit distance with Real Penalty, with the given gap point.
    Erp(Point),
    /// Edit Distance on Real sequences, with the given match threshold.
    Edr(f64),
}

impl Measure {
    /// Computes the distance between two trajectories.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        match *self {
            Measure::Dtw => dtw(a, b),
            Measure::Frechet => frechet(a, b),
            Measure::Hausdorff => hausdorff(a, b),
            Measure::CDtw(band) => cdtw(a, b, band),
            Measure::Erp(g) => erp(a, b, g),
            Measure::Edr(eps) => edr(a, b, eps),
        }
    }

    /// Whether the measure satisfies the reverse symmetric property
    /// (Lemma 2). All of ours do; the flag exists so model code can gate
    /// reverse augmentation on it.
    pub fn is_reverse_symmetric(&self) -> bool {
        true
    }

    /// Whether the endpoint lower bound of Lemma 1 applies (DTW and
    /// Fréchet; also their constrained variants).
    pub fn has_endpoint_lower_bound(&self) -> bool {
        matches!(self, Measure::Dtw | Measure::Frechet | Measure::CDtw(_))
    }

    /// Whether the bounding-box lower bound ([`bbox_bound`]) applies.
    ///
    /// True for every measure dominating the symmetric Hausdorff
    /// distance: Hausdorff itself, discrete Fréchet (max over a warping
    /// path that touches every point), DTW (sum over such a path), and
    /// cDTW (DTW over a restricted path set). ERP and EDR are edit
    /// distances whose values are gap penalties / match counts rather
    /// than geometric distances, so no box-geometry bound applies.
    pub fn has_bbox_lower_bound(&self) -> bool {
        matches!(
            self,
            Measure::Dtw | Measure::Frechet | Measure::Hausdorff | Measure::CDtw(_)
        )
    }

    /// The tightest O(1) lower bound available for this measure from two
    /// precomputed [`BoundProfile`]s, combining every bound whose flag
    /// applies. Returns `0.0` (the trivial bound) when no bound applies,
    /// so callers can use it unconditionally: pruning on a zero bound
    /// simply never fires.
    pub fn lower_bound(&self, a: &BoundProfile, b: &BoundProfile) -> f64 {
        let mut lb = 0.0f64;
        if self.has_endpoint_lower_bound() {
            lb = lb.max(a.first.distance(&b.first)).max(a.last.distance(&b.last));
        }
        if self.has_bbox_lower_bound() {
            lb = lb.max(bbox_bound(&a.bbox, &b.bbox));
        }
        lb
    }

    /// Short human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Dtw => "DTW",
            Measure::Frechet => "Frechet",
            Measure::Hausdorff => "Hausdorff",
            Measure::CDtw(_) => "cDTW",
            Measure::Erp(_) => "ERP",
            Measure::Edr(_) => "EDR",
        }
    }

    /// The three measures of the paper's evaluation.
    pub fn paper_suite() -> [Measure; 3] {
        [Measure::Frechet, Measure::Hausdorff, Measure::Dtw]
    }

    /// Parses a measure from its [`Display`] form — the inverse of
    /// `format!("{measure}")`, so configs and CLIs can round-trip any
    /// measure through a string.
    ///
    /// Base names are case-insensitive (`dtw`, `Frechet`, `HAUSDORFF`).
    /// Parameterized measures carry their parameters in parentheses:
    /// `cDTW(16)`, `ERP(0,0)`, `EDR(120.5)`. Returns `None` on anything
    /// else, including a parameterized name without its parameters.
    pub fn from_name(s: &str) -> Option<Measure> {
        let s = s.trim();
        let (base, params) = match s.find('(') {
            Some(open) => {
                let close = s.rfind(')')?;
                if close != s.len() - 1 || close < open {
                    return None;
                }
                (&s[..open], Some(&s[open + 1..close]))
            }
            None => (s, None),
        };
        let base = base.trim().to_ascii_lowercase();
        match (base.as_str(), params) {
            ("dtw", None) => Some(Measure::Dtw),
            ("frechet", None) => Some(Measure::Frechet),
            ("hausdorff", None) => Some(Measure::Hausdorff),
            ("cdtw", Some(p)) => p.trim().parse::<usize>().ok().map(Measure::CDtw),
            ("erp", Some(p)) => {
                let (x, y) = p.split_once(',')?;
                let x = x.trim().parse::<f64>().ok()?;
                let y = y.trim().parse::<f64>().ok()?;
                Some(Measure::Erp(Point::new(x, y)))
            }
            ("edr", Some(p)) => p.trim().parse::<f64>().ok().map(Measure::Edr),
            _ => None,
        }
    }
}

impl fmt::Display for Measure {
    /// Round-trippable form: the [`Measure::name`] base, with parameters
    /// appended for `cDTW`/`ERP`/`EDR`. Rust's `f64` `Display` emits the
    /// shortest string that parses back to the same bits, so
    /// `Measure::from_name(&m.to_string()) == Some(m)` holds exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Measure::CDtw(band) => write!(f, "{}({band})", self.name()),
            Measure::Erp(g) => write!(f, "{}({},{})", self.name(), g.x, g.y),
            Measure::Edr(eps) => write!(f, "{}({eps})", self.name()),
            _ => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_direct_calls() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let b = Trajectory::from_xy(&[(0.5, 0.0), (1.5, 1.5)]);
        assert_eq!(Measure::Dtw.distance(&a, &b), dtw(&a, &b));
        assert_eq!(Measure::Frechet.distance(&a, &b), frechet(&a, &b));
        assert_eq!(Measure::Hausdorff.distance(&a, &b), hausdorff(&a, &b));
        assert_eq!(Measure::CDtw(1).distance(&a, &b), cdtw(&a, &b, 1));
    }

    #[test]
    fn lower_bound_flags() {
        assert!(Measure::Dtw.has_endpoint_lower_bound());
        assert!(Measure::Frechet.has_endpoint_lower_bound());
        assert!(!Measure::Hausdorff.has_endpoint_lower_bound());
    }

    #[test]
    fn bbox_bound_flags_cover_hausdorff_dominators_only() {
        assert!(Measure::Dtw.has_bbox_lower_bound());
        assert!(Measure::Frechet.has_bbox_lower_bound());
        assert!(Measure::Hausdorff.has_bbox_lower_bound());
        assert!(Measure::CDtw(4).has_bbox_lower_bound());
        assert!(!Measure::Erp(Point::new(0.0, 0.0)).has_bbox_lower_bound());
        assert!(!Measure::Edr(100.0).has_bbox_lower_bound());
    }

    #[test]
    fn lower_bound_respects_flags_and_distances() {
        use crate::bounds::BoundProfile;
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let b = Trajectory::from_xy(&[(10.0, 0.0), (11.0, 1.5)]);
        let pa = BoundProfile::of(&a);
        let pb = BoundProfile::of(&b);
        for m in [
            Measure::Dtw,
            Measure::Frechet,
            Measure::Hausdorff,
            Measure::CDtw(8),
        ] {
            let lb = m.lower_bound(&pa, &pb);
            assert!(lb > 0.0, "{m} should have a non-trivial bound here");
            assert!(lb <= m.distance(&a, &b) + 1e-9, "{m} bound must hold");
        }
        // Edit distances have no geometric bound: trivial 0.
        assert_eq!(Measure::Erp(Point::new(0.0, 0.0)).lower_bound(&pa, &pb), 0.0);
        assert_eq!(Measure::Edr(1.0).lower_bound(&pa, &pb), 0.0);
    }

    #[test]
    fn name_round_trips_through_display_and_from_name() {
        let cases = [
            Measure::Dtw,
            Measure::Frechet,
            Measure::Hausdorff,
            Measure::CDtw(0),
            Measure::CDtw(16),
            Measure::Erp(Point::new(0.0, 0.0)),
            Measure::Erp(Point::new(-12.75, 3.5)),
            Measure::Erp(Point::new(0.1, 1e-9)),
            Measure::Edr(100.0),
            Measure::Edr(0.333),
        ];
        for m in cases {
            let s = m.to_string();
            assert_eq!(Measure::from_name(&s), Some(m), "round trip failed for {s}");
        }
    }

    #[test]
    fn from_name_accepts_case_and_whitespace() {
        assert_eq!(Measure::from_name("dtw"), Some(Measure::Dtw));
        assert_eq!(Measure::from_name(" HAUSDORFF "), Some(Measure::Hausdorff));
        assert_eq!(Measure::from_name("frechet"), Some(Measure::Frechet));
        assert_eq!(Measure::from_name("cdtw( 8 )"), Some(Measure::CDtw(8)));
        assert_eq!(
            Measure::from_name("erp(1.5, -2)"),
            Some(Measure::Erp(Point::new(1.5, -2.0)))
        );
        assert_eq!(Measure::from_name("edr(0.5)"), Some(Measure::Edr(0.5)));
    }

    #[test]
    fn from_name_rejects_malformed_inputs() {
        for bad in [
            "", "dt w", "cdtw", "cdtw()", "cdtw(-1)", "cdtw(1.5)", "erp", "erp(1)",
            "erp(1,2,3)", "edr", "edr(x)", "dtw(3)", "frechet()", "edr(1))", "edr((1)",
            "all",
        ] {
            assert_eq!(Measure::from_name(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn paper_suite_is_three_distinct_measures() {
        let suite = Measure::paper_suite();
        assert_eq!(suite.len(), 3);
        assert_ne!(suite[0], suite[1]);
        assert_ne!(suite[1], suite[2]);
    }
}
