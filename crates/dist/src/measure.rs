//! A unified handle over all supported trajectory distance functions.

use crate::dtw::{cdtw, dtw};
use crate::edit::{edr, erp};
use crate::frechet::frechet;
use crate::hausdorff::hausdorff;
use traj_data::{Point, Trajectory};

/// The trajectory distance functions supported by this library.
///
/// The paper's evaluation covers [`Measure::Dtw`], [`Measure::Frechet`],
/// and [`Measure::Hausdorff`]; the rest are provided for downstream users
/// and for the related-work comparison (cDTW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Dynamic Time Warping.
    Dtw,
    /// Discrete Fréchet distance.
    Frechet,
    /// Symmetric Hausdorff distance.
    Hausdorff,
    /// Constrained DTW with the given Sakoe–Chiba half band width.
    CDtw(usize),
    /// Edit distance with Real Penalty, with the given gap point.
    Erp(Point),
    /// Edit Distance on Real sequences, with the given match threshold.
    Edr(f64),
}

impl Measure {
    /// Computes the distance between two trajectories.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        match *self {
            Measure::Dtw => dtw(a, b),
            Measure::Frechet => frechet(a, b),
            Measure::Hausdorff => hausdorff(a, b),
            Measure::CDtw(band) => cdtw(a, b, band),
            Measure::Erp(g) => erp(a, b, g),
            Measure::Edr(eps) => edr(a, b, eps),
        }
    }

    /// Whether the measure satisfies the reverse symmetric property
    /// (Lemma 2). All of ours do; the flag exists so model code can gate
    /// reverse augmentation on it.
    pub fn is_reverse_symmetric(&self) -> bool {
        true
    }

    /// Whether the endpoint lower bound of Lemma 1 applies (DTW and
    /// Fréchet; also their constrained variants).
    pub fn has_endpoint_lower_bound(&self) -> bool {
        matches!(self, Measure::Dtw | Measure::Frechet | Measure::CDtw(_))
    }

    /// Short human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Dtw => "DTW",
            Measure::Frechet => "Frechet",
            Measure::Hausdorff => "Hausdorff",
            Measure::CDtw(_) => "cDTW",
            Measure::Erp(_) => "ERP",
            Measure::Edr(_) => "EDR",
        }
    }

    /// The three measures of the paper's evaluation.
    pub fn paper_suite() -> [Measure; 3] {
        [Measure::Frechet, Measure::Hausdorff, Measure::Dtw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_direct_calls() {
        let a = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let b = Trajectory::from_xy(&[(0.5, 0.0), (1.5, 1.5)]);
        assert_eq!(Measure::Dtw.distance(&a, &b), dtw(&a, &b));
        assert_eq!(Measure::Frechet.distance(&a, &b), frechet(&a, &b));
        assert_eq!(Measure::Hausdorff.distance(&a, &b), hausdorff(&a, &b));
        assert_eq!(Measure::CDtw(1).distance(&a, &b), cdtw(&a, &b, 1));
    }

    #[test]
    fn lower_bound_flags() {
        assert!(Measure::Dtw.has_endpoint_lower_bound());
        assert!(Measure::Frechet.has_endpoint_lower_bound());
        assert!(!Measure::Hausdorff.has_endpoint_lower_bound());
    }

    #[test]
    fn paper_suite_is_three_distinct_measures() {
        let suite = Measure::paper_suite();
        assert_eq!(suite.len(), 3);
        assert_ne!(suite[0], suite[1]);
        assert_ne!(suite[1], suite[2]);
    }
}
