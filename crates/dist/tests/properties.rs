//! Property-based tests of the distance measures: the paper's lemmas
//! must hold on arbitrary trajectories, not just examples.

use proptest::prelude::*;
use traj_data::{Point, Trajectory};
use traj_dist::{
    bbox_bound, cdtw, dtw, edr, endpoint_bound, erp, frechet, hausdorff, BoundProfile, Measure,
};

fn trajectory_strategy(max_len: usize) -> impl Strategy<Value = Trajectory> {
    proptest::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 1..max_len)
        .prop_map(|xy| Trajectory::from_xy(&xy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_measures_are_symmetric(
        a in trajectory_strategy(12),
        b in trajectory_strategy(12),
    ) {
        for m in [Measure::Dtw, Measure::Frechet, Measure::Hausdorff,
                  Measure::Erp(Point::new(0.0, 0.0)), Measure::Edr(10.0)] {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-6 * (1.0 + ab.abs()),
                "{} not symmetric: {} vs {}", m.name(), ab, ba);
        }
    }

    #[test]
    fn identity_of_indiscernibles(a in trajectory_strategy(12)) {
        prop_assert_eq!(dtw(&a, &a), 0.0);
        prop_assert_eq!(frechet(&a, &a), 0.0);
        prop_assert_eq!(hausdorff(&a, &a), 0.0);
        prop_assert_eq!(erp(&a, &a, Point::new(0.0, 0.0)), 0.0);
        prop_assert_eq!(edr(&a, &a, 1.0), 0.0);
    }

    #[test]
    fn lemma2_reverse_symmetry(
        a in trajectory_strategy(12),
        b in trajectory_strategy(12),
    ) {
        // Lemma 2: DTW, Frechet, Hausdorff satisfy the reverse symmetric
        // property.
        for m in Measure::paper_suite() {
            let fwd = m.distance(&a, &b);
            let rev = m.distance(&a.reversed(), &b.reversed());
            prop_assert!((fwd - rev).abs() <= 1e-6 * (1.0 + fwd.abs()),
                "{} violates reverse symmetry: {} vs {}", m.name(), fwd, rev);
        }
    }

    #[test]
    fn lemma1_endpoint_lower_bound(
        a in trajectory_strategy(12),
        b in trajectory_strategy(12),
    ) {
        // Lemma 1: d(first, first) and d(last, last) lower-bound DTW and
        // the discrete Frechet distance.
        let lb = endpoint_bound(&a, &b);
        prop_assert!(lb <= dtw(&a, &b) + 1e-9);
        prop_assert!(lb <= frechet(&a, &b) + 1e-9);
    }

    #[test]
    fn bbox_bound_lower_bounds_every_geometric_measure(
        a in trajectory_strategy(10),
        b in trajectory_strategy(10),
    ) {
        // The bounding-box bound (dist/bounds.rs) under-estimates
        // Hausdorff, and transitively Frechet, DTW, and cDTW.
        let lb = bbox_bound(&BoundProfile::of(&a).bbox, &BoundProfile::of(&b).bbox);
        prop_assert!(lb <= hausdorff(&a, &b) + 1e-9, "bbox {} > hausdorff", lb);
        prop_assert!(lb <= frechet(&a, &b) + 1e-9);
        prop_assert!(lb <= dtw(&a, &b) + 1e-9);
        prop_assert!(lb <= cdtw(&a, &b, 2) + 1e-9);
    }

    #[test]
    fn combined_lower_bound_never_exceeds_the_distance(
        a in trajectory_strategy(10),
        b in trajectory_strategy(10),
    ) {
        // Measure::lower_bound is what the pruned driver trusts: for
        // every measure (including ERP/EDR, whose bound is the trivial
        // 0) it must never exceed the exact distance.
        let pa = BoundProfile::of(&a);
        let pb = BoundProfile::of(&b);
        for m in [Measure::Dtw, Measure::Frechet, Measure::Hausdorff, Measure::CDtw(4),
                  Measure::Erp(Point::new(0.0, 0.0)), Measure::Edr(10.0)] {
            let lb = m.lower_bound(&pa, &pb);
            let d = m.distance(&a, &b);
            prop_assert!(lb <= d + 1e-9, "{}: lower bound {} exceeds distance {}", m, lb, d);
        }
    }

    #[test]
    fn frechet_lower_bounds_dtw_is_false_but_max_point_gap_holds(
        a in trajectory_strategy(10),
        b in trajectory_strategy(10),
    ) {
        // Sanity relations: Frechet >= Hausdorff (the leash must cover
        // the worst point), and DTW >= Frechet when both trajectories
        // have at least one point (the sum over a path >= its max term).
        let f = frechet(&a, &b);
        let h = hausdorff(&a, &b);
        prop_assert!(f + 1e-9 >= h, "frechet {} < hausdorff {}", f, h);
        prop_assert!(dtw(&a, &b) + 1e-9 >= f);
    }

    #[test]
    fn cdtw_band_monotone_and_above_dtw(
        a in trajectory_strategy(10),
        b in trajectory_strategy(10),
    ) {
        let exact = dtw(&a, &b);
        let mut last = f64::INFINITY;
        for band in [1usize, 2, 4, 16] {
            let c = cdtw(&a, &b, band);
            prop_assert!(c + 1e-9 >= exact);
            prop_assert!(c <= last + 1e-9);
            last = c;
        }
        prop_assert!((cdtw(&a, &b, usize::MAX) - exact).abs() < 1e-6 * (1.0 + exact));
    }

    #[test]
    fn erp_satisfies_triangle_inequality(
        a in trajectory_strategy(8),
        b in trajectory_strategy(8),
        c in trajectory_strategy(8),
    ) {
        // ERP is a metric (Chen & Ng 2004).
        let g = Point::new(0.0, 0.0);
        let ab = erp(&a, &b, g);
        let ac = erp(&a, &c, g);
        let cb = erp(&c, &b, g);
        prop_assert!(ab <= ac + cb + 1e-6 * (1.0 + ab));
    }

    #[test]
    fn edr_bounded_by_max_length(
        a in trajectory_strategy(10),
        b in trajectory_strategy(10),
    ) {
        let e = edr(&a, &b, 5.0);
        prop_assert!(e >= (a.len() as f64 - b.len() as f64).abs() - 1e-9);
        prop_assert!(e <= a.len().max(b.len()) as f64 + 1e-9);
    }

    #[test]
    fn translation_invariance_of_shape_measures(
        a in trajectory_strategy(8),
        b in trajectory_strategy(8),
        dx in -500.0f64..500.0,
        dy in -500.0f64..500.0,
    ) {
        // Translating both trajectories by the same vector must not
        // change DTW / Frechet / Hausdorff.
        let shift = |t: &Trajectory| {
            Trajectory::new(t.points.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect())
        };
        let (a2, b2) = (shift(&a), shift(&b));
        for m in Measure::paper_suite() {
            let before = m.distance(&a, &b);
            let after = m.distance(&a2, &b2);
            prop_assert!((before - after).abs() <= 1e-6 * (1.0 + before.abs()));
        }
    }
}
