//! Fresh: locality-sensitive hashing for curves (Ceccarello, Driemel &
//! Silvestri), the data-independent comparator of Table II.
//!
//! Each of `L` repetitions snaps the trajectory onto a randomly shifted
//! grid of the configured resolution, collapses consecutive duplicates,
//! and hashes the resulting cell sequence to a `bits_per_rep`-bit integer
//! with multiply–shift hashing. Following the paper's protocol (4
//! repetitions x 16 bits "for aligning the length of hash codes"), the
//! concatenation of the per-repetition signatures is compared with
//! Hamming distance like every other method in Table II.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use traj_data::Trajectory;

/// Fresh configuration (paper: resolution 1 km, 4 repetitions, 16 bits).
#[derive(Debug, Clone)]
pub struct FreshConfig {
    /// Grid resolution in meters.
    pub resolution: f64,
    /// Number of independent LSH repetitions `L`.
    pub repetitions: usize,
    /// Bits of each repetition's signature.
    pub bits_per_rep: usize,
    /// RNG seed for the random grid shifts and hash coefficients.
    pub seed: u64,
}

impl Default for FreshConfig {
    fn default() -> Self {
        FreshConfig { resolution: 1000.0, repetitions: 4, bits_per_rep: 16, seed: 77 }
    }
}

/// A constructed Fresh hasher.
pub struct Fresh {
    cfg: FreshConfig,
    shifts: Vec<(f64, f64)>,
    coeffs: Vec<(u64, u64, u64)>,
}

impl Fresh {
    /// Draws the random shifts and multiply–shift coefficients.
    pub fn new(cfg: FreshConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let shifts = (0..cfg.repetitions)
            .map(|_| {
                (
                    rng.random::<f64>() * cfg.resolution,
                    rng.random::<f64>() * cfg.resolution,
                )
            })
            .collect();
        let coeffs = (0..cfg.repetitions)
            .map(|_| {
                (
                    rng.random::<u64>() | 1, // multiply-shift needs odd a
                    rng.random::<u64>() | 1,
                    rng.random::<u64>() | 1,
                )
            })
            .collect();
        Fresh { cfg, shifts, coeffs }
    }

    /// Total signature width in bits.
    pub fn total_bits(&self) -> usize {
        self.cfg.repetitions * self.cfg.bits_per_rep
    }

    /// The snapped-cell sequence of one repetition (consecutive
    /// duplicates collapsed), exposed for tests.
    fn cell_sequence(&self, t: &Trajectory, rep: usize) -> Vec<(i64, i64)> {
        let (sx, sy) = self.shifts[rep];
        let r = self.cfg.resolution;
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(t.len());
        for p in &t.points {
            let cell = (((p.x + sx) / r).floor() as i64, ((p.y + sy) / r).floor() as i64);
            if out.last() != Some(&cell) {
                out.push(cell);
            }
        }
        out
    }

    fn hash_sequence(&self, cells: &[(i64, i64)], rep: usize) -> u64 {
        let (a, b, c) = self.coeffs[rep];
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for &(x, y) in cells {
            let hx = (x as u64).wrapping_mul(a);
            let hy = (y as u64).wrapping_mul(b);
            acc = acc
                .rotate_left(13)
                .wrapping_mul(c)
                .wrapping_add(hx ^ hy.rotate_left(32));
        }
        // multiply-shift truncation to bits_per_rep
        acc.wrapping_mul(a) >> (64 - self.cfg.bits_per_rep)
    }

    /// The per-repetition integer signatures of a trajectory.
    pub fn signatures(&self, t: &Trajectory) -> Vec<u64> {
        (0..self.cfg.repetitions)
            .map(|rep| self.hash_sequence(&self.cell_sequence(t, rep), rep))
            .collect()
    }

    /// The concatenated sign vector (`+-1` per bit) of all repetitions,
    /// directly comparable to the neural methods' hash codes.
    pub fn hash_signs(&self, t: &Trajectory) -> Vec<i8> {
        let mut out = Vec::with_capacity(self.total_bits());
        for (rep, sig) in self.signatures(t).into_iter().enumerate() {
            let _ = rep;
            for bit in 0..self.cfg.bits_per_rep {
                out.push(if (sig >> bit) & 1 == 1 { 1 } else { -1 });
            }
        }
        out
    }

    /// Batch hashing.
    pub fn hash_all(&self, ts: &[Trajectory]) -> Vec<Vec<i8>> {
        ts.iter().map(|t| self.hash_signs(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams, Point};

    fn fresh() -> Fresh {
        Fresh::new(FreshConfig { resolution: 200.0, ..Default::default() })
    }

    #[test]
    fn identical_trajectories_collide_fully() {
        let f = fresh();
        let t = Trajectory::from_xy(&[(10.0, 10.0), (350.0, 90.0), (800.0, 120.0)]);
        assert_eq!(f.signatures(&t), f.signatures(&t.clone()));
        assert_eq!(f.hash_signs(&t).len(), f.total_bits());
    }

    #[test]
    fn sampling_rate_invariance_within_cells() {
        // Fresh snaps to cells and dedupes, so adding intermediate points
        // inside the same cells must not change the signature.
        let f = fresh();
        let sparse = Trajectory::from_xy(&[(50.0, 50.0), (450.0, 50.0)]);
        let mut dense_pts = vec![(50.0, 50.0), (60.0, 52.0), (70.0, 51.0), (450.0, 50.0)];
        dense_pts.insert(3, (445.0, 49.0));
        let dense = Trajectory::from_xy(&dense_pts);
        // only valid when the intermediate points stay in the same cells;
        // with resolution 200 and these coordinates they might span a
        // middle cell — use signatures of each rep to check at least the
        // dedupe path runs; assert exact equality on a conservatively
        // constructed pair instead:
        let a = Trajectory::from_xy(&[(10.0, 10.0), (15.0, 12.0), (18.0, 11.0)]);
        let b = Trajectory::from_xy(&[(10.0, 10.0), (18.0, 11.0)]);
        assert_eq!(f.signatures(&a), f.signatures(&b));
        let _ = (sparse, dense);
    }

    #[test]
    fn nearby_trajectories_collide_more_than_distant_ones() {
        let params = CityParams::test_city();
        let trajs = CityGenerator::new(params, 21).generate(60);
        let f = fresh();
        // pick the pair with smallest first-point distance as "near"
        let mut best = (0, 1, f64::INFINITY);
        for i in 0..trajs.len() {
            for j in (i + 1)..trajs.len() {
                let d = trajs[i].first().distance(&trajs[j].first())
                    + trajs[i].last().distance(&trajs[j].last());
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let hamming = |a: &[i8], b: &[i8]| -> usize {
            a.iter().zip(b).filter(|(x, y)| x != y).count()
        };
        let near = hamming(&f.hash_signs(&trajs[best.0]), &f.hash_signs(&trajs[best.1]));
        // average over random far pairs
        let mut far_sum = 0usize;
        let mut cnt = 0usize;
        for k in 0..20 {
            let i = k;
            let j = (k + 29) % trajs.len();
            let d = trajs[i].first().distance(&trajs[j].first());
            if d > 800.0 {
                far_sum += hamming(&f.hash_signs(&trajs[i]), &f.hash_signs(&trajs[j]));
                cnt += 1;
            }
        }
        if let Some(far_mean) = far_sum.checked_div(cnt) {
            assert!(
                near <= far_mean,
                "near pair hamming {near} should not exceed far mean {far_mean}"
            );
        }
    }

    #[test]
    fn shifted_grids_differ_between_repetitions() {
        let f = fresh();
        // a point near a cell border lands in different cells under
        // different shifts with high probability
        let t = Trajectory::new(vec![Point::new(199.0, 1.0), Point::new(601.0, 399.0)]);
        let sigs = f.signatures(&t);
        assert_eq!(sigs.len(), 4);
        // not all repetitions identical (they use different shifts/coeffs)
        assert!(sigs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn signature_fits_bit_budget() {
        let f = Fresh::new(FreshConfig { bits_per_rep: 12, ..Default::default() });
        let t = Trajectory::from_xy(&[(0.0, 0.0), (5000.0, 3000.0)]);
        for sig in f.signatures(&t) {
            assert!(sig < (1 << 12));
        }
    }
}
