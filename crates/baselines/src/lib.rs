//! # traj-baselines — the paper's comparison methods, reimplemented
//!
//! Dense encoders (NeuTraj, NT-No-SAM, Transformer, TrajGAT-lite behind
//! the [`TrajEncoder`] trait), the self-supervised t2vec and CL-TSim
//! methods, the Fresh LSH for curves, the shared WMSE trainer, and the
//! trainable linear hash head used to give every dense baseline a
//! Hamming-space representation (Section V-A3). Simplifications relative
//! to the original systems are documented per type and in DESIGN.md.

#![warn(missing_docs)]

pub mod cltsim;
pub mod encoders;
pub mod fresh;
pub mod hash_head;
pub mod quadtree;
pub mod t2vec;
pub mod train;

pub use cltsim::{ClTsimConfig, ClTsimEncoder};
pub use encoders::{GruMetricEncoder, TrajEncoder, TrajGatEncoder, TransformerEncoder};
pub use fresh::{Fresh, FreshConfig};
pub use hash_head::{HashHead, HashHeadConfig};
pub use quadtree::QuadTree;
pub use t2vec::{T2vecConfig, T2vecEncoder};
pub use train::{train_wmse, WmseConfig};
