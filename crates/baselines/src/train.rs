//! Shared metric-learning trainer for dense baselines: the same WMSE
//! objective (Eq. 17) Traj2Hash uses, without the hashing losses — this
//! is how NeuTraj, NT-No-SAM, Transformer, and TrajGAT are trained in the
//! paper's protocol (all share the seed supervision for fairness).

use crate::encoders::TrajEncoder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use tinynn::{clip_grad_norm, Adam, Tape, Var};
use traj_data::Trajectory;
use traj_dist::DistanceMatrix;
use traj2hash::loss::{approx_similarity, rank_weights, sample_companions, wmse_term};

/// Configuration of the baseline WMSE training loop.
#[derive(Debug, Clone)]
pub struct WmseConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Anchor batch size.
    pub batch_size: usize,
    /// Companions per anchor `M`.
    pub samples_per_anchor: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient clipping threshold.
    pub clip_norm: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for WmseConfig {
    fn default() -> Self {
        WmseConfig {
            epochs: 12,
            batch_size: 20,
            samples_per_anchor: 10,
            lr: 1e-3,
            clip_norm: 5.0,
            seed: 3,
        }
    }
}

/// Trains any dense encoder with the WMSE objective against the seed
/// similarity matrix. Returns the mean loss per epoch.
pub fn train_wmse(
    encoder: &dyn TrajEncoder,
    seeds: &[Trajectory],
    sim: &DistanceMatrix,
    cfg: &WmseConfig,
) -> Vec<f32> {
    assert_eq!(seeds.len(), sim.n(), "similarity matrix must cover the seeds");
    assert!(seeds.len() >= 2, "need at least two seeds");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut anchors: Vec<usize> = (0..seeds.len()).collect();
        for i in (1..anchors.len()).rev() {
            let j = rng.random_range(0..=i);
            anchors.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for batch in anchors.chunks(cfg.batch_size) {
            let tape = Tape::new();
            let mut cache: HashMap<usize, Var> = HashMap::new();
            let embed = |idx: usize, cache: &mut HashMap<usize, Var>| -> Var {
                cache
                    .entry(idx)
                    .or_insert_with(|| encoder.embed_var(&tape, &seeds[idx]))
                    .clone()
            };
            let mut loss: Option<Var> = None;
            for &i in batch {
                let companions =
                    sample_companions(i, sim.row(i), cfg.samples_per_anchor, &mut rng);
                if companions.is_empty() {
                    continue;
                }
                let weights = rank_weights(companions.len());
                let e_i = embed(i, &mut cache);
                for (rank, &j) in companions.iter().enumerate() {
                    let e_j = embed(j, &mut cache);
                    let g = approx_similarity(&e_i, &e_j);
                    let term = wmse_term(&tape, &g, sim.get(i, j), weights[rank]);
                    loss = Some(match loss {
                        None => term,
                        Some(acc) => acc.add(&term),
                    });
                }
            }
            if let Some(loss) = loss {
                let loss = loss.scale(1.0 / batch.len() as f32);
                epoch_loss += loss.item();
                batches += 1;
                encoder.params().zero_grad();
                loss.backward();
                clip_grad_norm(encoder.params(), cfg.clip_norm);
                opt.step(encoder.params());
            }
        }
        epoch_losses.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoders::GruMetricEncoder;
    use traj_data::{CityGenerator, CityParams, NormStats};
    use traj_dist::{auto_theta, distance_matrix, similarity_matrix, Measure};

    #[test]
    fn wmse_training_reduces_loss() {
        let seeds = CityGenerator::new(CityParams::test_city(), 11).generate(16);
        let norm = NormStats::fit(&seeds);
        let enc = GruMetricEncoder::plain(8, norm, 1);
        let d = distance_matrix(&seeds, Measure::Dtw);
        let s = similarity_matrix(&d, auto_theta(&d, 0.5));
        let losses = train_wmse(&enc, &seeds, &s, &WmseConfig { epochs: 5, ..Default::default() });
        assert_eq!(losses.len(), 5);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss did not decrease: {losses:?}"
        );
    }
}
