//! Dense trajectory encoders: the common trait plus the NeuTraj,
//! NT-No-SAM, Transformer, and TrajGAT-lite baselines.

use crate::quadtree::QuadTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::{
    layers::positional_encoding, Embedding, EncoderBlock, GruCell, Linear, ParamSet, Tape,
    Tensor, Var,
};
use traj_data::{NormStats, Trajectory};
use traj_grid::{DecomposedGridEmbedding, GridSpec};
use traj2hash::config::{ModelConfig, Readout};
use traj2hash::encoder::GpsChannelEncoder;

/// Anything that embeds a trajectory into a fixed-width dense vector.
pub trait TrajEncoder {
    /// Embeds on a tape (training entry point).
    fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var;
    /// All trainable parameters.
    fn params(&self) -> &ParamSet;
    /// Embedding width.
    fn dim(&self) -> usize;
    /// Method name for experiment tables.
    fn name(&self) -> &'static str;

    /// Inference embedding as a plain vector.
    fn embed(&self, t: &Trajectory) -> Vec<f32> {
        let tape = Tape::new();
        self.embed_var(&tape, t).value().data().to_vec()
    }

    /// Batch inference.
    fn embed_all(&self, ts: &[Trajectory]) -> Vec<Vec<f32>> {
        ts.iter().map(|t| self.embed(t)).collect()
    }
}

/// The NeuTraj family: a GRU metric encoder reading out the final hidden
/// state (which, as the paper observes, implicitly realizes the
/// lower-bound read-out for DTW/Fréchet).
///
/// With `spatial` set, each input point is augmented with the frozen
/// grid-cell embedding of its location — our CPU-scale stand-in for
/// NeuTraj's spatial attention memory module, which likewise injects
/// grid-neighbourhood context into the recurrent state. Without it, the
/// encoder is the `NT-No-SAM` ablation.
pub struct GruMetricEncoder {
    params: ParamSet,
    input: Linear,
    cell: GruCell,
    norm: NormStats,
    spatial: Option<(GridSpec, DecomposedGridEmbedding)>,
    dim: usize,
    name: &'static str,
}

impl GruMetricEncoder {
    /// Builds the plain encoder (`NT-No-SAM`).
    pub fn plain(dim: usize, norm: NormStats, seed: u64) -> Self {
        Self::build(dim, norm, None, seed, "NT-No-SAM")
    }

    /// Builds the spatially augmented encoder (`NeuTraj`).
    pub fn spatial(
        dim: usize,
        norm: NormStats,
        spec: GridSpec,
        emb: DecomposedGridEmbedding,
        seed: u64,
    ) -> Self {
        Self::build(dim, norm, Some((spec, emb)), seed, "NeuTraj")
    }

    fn build(
        dim: usize,
        norm: NormStats,
        spatial: Option<(GridSpec, DecomposedGridEmbedding)>,
        seed: u64,
        name: &'static str,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let in_dim = 2 + spatial.as_ref().map(|(_, e)| e.dim()).unwrap_or(0);
        let input = Linear::new(&mut rng, &mut params, in_dim, dim);
        let cell = GruCell::new(&mut rng, &mut params, dim, dim);
        GruMetricEncoder { params, input, cell, norm, spatial, dim, name }
    }

    fn features(&self, t: &Trajectory) -> Tensor {
        let base = self.norm.apply(t);
        match &self.spatial {
            None => Tensor::from_vec(t.len(), 2, base),
            Some((spec, emb)) => {
                let gd = emb.dim();
                let cols = 2 + gd;
                let mut data = vec![0.0f32; t.len() * cols];
                for (i, &p) in t.points.iter().enumerate() {
                    data[i * cols] = base[i * 2];
                    data[i * cols + 1] = base[i * 2 + 1];
                    let (gx, gy) = spec.locate(p);
                    emb.embed_into(gx, gy, &mut data[i * cols + 2..(i + 1) * cols]);
                }
                Tensor::from_vec(t.len(), cols, data)
            }
        }
    }
}

impl TrajEncoder for GruMetricEncoder {
    fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        assert!(!t.is_empty(), "cannot encode an empty trajectory");
        let x = tape.constant(self.features(t));
        let seq = self.input.forward(tape, &x).relu();
        self.cell.run_final(tape, &seq)
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The plain Transformer baseline: the paper's Section V-A3 competitor —
/// stacked attention/feed-forward blocks with a CLS read-out, no grid
/// channel, no reverse augmentation.
pub struct TransformerEncoder {
    params: ParamSet,
    inner: GpsChannelEncoder,
    dim: usize,
}

impl TransformerEncoder {
    /// Builds the encoder with the given width/blocks/heads.
    pub fn new(dim: usize, blocks: usize, heads: usize, norm: NormStats, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let cfg = ModelConfig {
            dim,
            blocks,
            heads,
            readout: Readout::Cls,
            use_grids: false,
            use_rev_aug: false,
            ..ModelConfig::default()
        };
        let inner = GpsChannelEncoder::new(&mut rng, &mut params, &cfg, norm);
        TransformerEncoder { params, inner, dim }
    }
}

impl TrajEncoder for TransformerEncoder {
    fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        self.inner.forward(tape, t)
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "Transformer"
    }
}

/// TrajGAT-lite: each point is tagged with its PR-quadtree leaf cell,
/// whose learned embedding is added to the point features before the
/// attention blocks; read-out is mean pooling (TrajGAT's choice).
///
/// This keeps TrajGAT's two distinguishing ingredients — quadtree-derived
/// spatial structure and a (graph-)transformer with global read-out —
/// while replacing the full graph-attention message passing with
/// sequence self-attention, which is what fits this reproduction's CPU
/// budget (see DESIGN.md).
pub struct TrajGatEncoder {
    params: ParamSet,
    tree: QuadTree,
    cell_emb: Embedding,
    input: Linear,
    blocks: Vec<EncoderBlock>,
    norm: NormStats,
    dim: usize,
}

impl TrajGatEncoder {
    /// Builds the encoder; the quadtree is constructed from the points of
    /// `training_sample`.
    pub fn new(
        dim: usize,
        blocks: usize,
        heads: usize,
        norm: NormStats,
        training_sample: &[Trajectory],
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let bbox = traj_data::BoundingBox::of_dataset(training_sample)
            .expect("TrajGAT needs a non-empty training sample");
        let points: Vec<traj_data::Point> = training_sample
            .iter()
            .flat_map(|t| t.points.iter().cloned())
            .collect();
        let tree = QuadTree::build(bbox, &points, 64, 8);
        let cell_emb = Embedding::new(&mut rng, &mut params, tree.num_leaves(), dim);
        let input = Linear::new(&mut rng, &mut params, 2, dim);
        let blocks = (0..blocks)
            .map(|_| EncoderBlock::new(&mut rng, &mut params, dim, 2 * dim, heads))
            .collect();
        TrajGatEncoder { params, tree, cell_emb, input, blocks, norm, dim }
    }

    /// The underlying quadtree (exposed for inspection).
    pub fn tree(&self) -> &QuadTree {
        &self.tree
    }
}

impl TrajEncoder for TrajGatEncoder {
    fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        assert!(!t.is_empty(), "cannot encode an empty trajectory");
        let feats = self.norm.apply(t);
        let x = tape.constant(Tensor::from_vec(t.len(), 2, feats));
        let cells: Vec<usize> = t.points.iter().map(|&p| self.tree.locate(p)).collect();
        let cell_seq = self.cell_emb.forward(tape, &cells);
        let mut seq = self.input.forward(tape, &x).add(&cell_seq);
        let pe = tape.constant(positional_encoding(t.len(), self.dim));
        seq = seq.add(&pe);
        for block in &self.blocks {
            seq = block.forward(tape, &seq);
        }
        seq.mean_rows()
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "TrajGAT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};
    use traj_grid::NceConfig;

    fn setup() -> (Vec<Trajectory>, NormStats) {
        let trajs = CityGenerator::new(CityParams::test_city(), 2).generate(10);
        let norm = NormStats::fit(&trajs);
        (trajs, norm)
    }

    #[test]
    fn gru_plain_embeds() {
        let (trajs, norm) = setup();
        let enc = GruMetricEncoder::plain(8, norm, 1);
        let e = enc.embed(&trajs[0]);
        assert_eq!(e.len(), 8);
        assert!(e.iter().all(|x| x.is_finite()));
        assert_eq!(enc.name(), "NT-No-SAM");
    }

    #[test]
    fn gru_spatial_differs_from_plain() {
        let (trajs, norm) = setup();
        let bbox = traj_data::BoundingBox::of_dataset(&trajs).unwrap();
        let spec = GridSpec::new(bbox, 100.0);
        let mut emb = DecomposedGridEmbedding::init(&spec, 8, 3);
        emb.pretrain(&spec, &NceConfig { dim: 8, epochs: 1, ..NceConfig::default() });
        let neutraj = GruMetricEncoder::spatial(8, norm, spec, emb, 1);
        assert_eq!(neutraj.name(), "NeuTraj");
        let plain = GruMetricEncoder::plain(8, norm, 1);
        assert_ne!(neutraj.embed(&trajs[0]), plain.embed(&trajs[0]));
    }

    #[test]
    fn gru_readout_is_order_sensitive() {
        let (trajs, norm) = setup();
        let enc = GruMetricEncoder::plain(8, norm, 4);
        let fwd = enc.embed(&trajs[0]);
        let rev = enc.embed(&trajs[0].reversed());
        let diff: f32 = fwd.iter().zip(&rev).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn transformer_embeds_with_cls() {
        let (trajs, norm) = setup();
        let enc = TransformerEncoder::new(16, 1, 2, norm, 5);
        let e = enc.embed(&trajs[0]);
        assert_eq!(e.len(), 16);
        assert_eq!(enc.name(), "Transformer");
    }

    #[test]
    fn trajgat_embeds_and_uses_tree() {
        let (trajs, norm) = setup();
        let enc = TrajGatEncoder::new(16, 1, 2, norm, &trajs, 6);
        assert!(enc.tree().num_leaves() >= 1);
        let e = enc.embed(&trajs[0]);
        assert_eq!(e.len(), 16);
        assert!(e.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn all_encoders_receive_gradients() {
        let (trajs, norm) = setup();
        let encoders: Vec<Box<dyn TrajEncoder>> = vec![
            Box::new(GruMetricEncoder::plain(8, norm, 7)),
            Box::new(TransformerEncoder::new(8, 1, 2, norm, 8)),
            Box::new(TrajGatEncoder::new(8, 1, 2, norm, &trajs, 9)),
        ];
        for enc in &encoders {
            let tape = Tape::new();
            enc.embed_var(&tape, &trajs[0]).square().mean_all().backward();
            let got = enc.params().iter().filter(|p| p.borrow().grad.norm() > 0.0).count();
            assert!(got > 0, "{} received no gradients", enc.name());
            enc.params().zero_grad();
        }
    }
}
