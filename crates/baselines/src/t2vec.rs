//! t2vec-style baseline: a sequence-to-sequence denoising autoencoder.
//!
//! The original t2vec trains a GRU encoder–decoder to reconstruct a clean
//! grid-token trajectory from a distorted/down-sampled view; its
//! embedding is the final encoder state. It is distance-agnostic — the
//! paper's Table I discussion notes this is why t2vec (and CL-TSim)
//! trail the metric-learning methods. We keep the architecture and the
//! denoising objective but reconstruct normalized coordinates with MSE
//! instead of a 1.2M-way softmax over grid tokens, which preserves the
//! objective's nature at CPU scale (see DESIGN.md).

use crate::encoders::TrajEncoder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tinynn::{clip_grad_norm, Adam, GruCell, Linear, ParamSet, Tape, Tensor, Var};
use traj_data::{augment, NormStats, Trajectory};

/// The t2vec-style denoising autoencoder.
pub struct T2vecEncoder {
    params: ParamSet,
    input: Linear,
    encoder: GruCell,
    decoder: GruCell,
    output: Linear,
    norm: NormStats,
    dim: usize,
}

/// Training configuration for the denoising objective.
#[derive(Debug, Clone)]
pub struct T2vecConfig {
    /// Training epochs over the corpus sample.
    pub epochs: usize,
    /// Trajectories per batch.
    pub batch_size: usize,
    /// Point dropping rate of the corrupted view.
    pub drop_rate: f64,
    /// Distortion noise sigma (meters).
    pub noise_sigma: f64,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for T2vecConfig {
    fn default() -> Self {
        T2vecConfig {
            epochs: 5,
            batch_size: 16,
            drop_rate: 0.2,
            noise_sigma: 20.0,
            lr: 1e-3,
            seed: 5,
        }
    }
}

impl T2vecEncoder {
    /// Builds the autoencoder.
    pub fn new(dim: usize, norm: NormStats, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let input = Linear::new(&mut rng, &mut params, 2, dim);
        let encoder = GruCell::new(&mut rng, &mut params, dim, dim);
        let decoder = GruCell::new(&mut rng, &mut params, dim, dim);
        let output = Linear::new(&mut rng, &mut params, dim, 2);
        T2vecEncoder { params, input, encoder, decoder, output, norm, dim }
    }

    fn encode_state(&self, tape: &Tape, t: &Trajectory) -> Var {
        let feats = self.norm.apply(t);
        let x = tape.constant(Tensor::from_vec(t.len(), 2, feats));
        let seq = self.input.forward(tape, &x).relu();
        self.encoder.run_final(tape, &seq)
    }

    /// Reconstruction loss: encode a corrupted view, decode step by step
    /// (teacher-forced on the clean previous point), and measure MSE
    /// against the clean coordinates.
    fn denoise_loss(&self, tape: &Tape, clean: &Trajectory, corrupted: &Trajectory) -> Var {
        let state = self.encode_state(tape, corrupted);
        let clean_feats = self.norm.apply(clean);
        let target = tape.constant(Tensor::from_vec(clean.len(), 2, clean_feats.clone()));
        let mut h = state;
        let mut loss: Option<Var> = None;
        for i in 0..clean.len() {
            // teacher forcing: feed the previous clean point (origin at 0)
            let prev = if i == 0 {
                tape.constant(Tensor::zeros(1, 2))
            } else {
                target.slice_rows(i - 1, 1)
            };
            let inp = self.input.forward(tape, &prev).relu();
            h = self.decoder.step(tape, &inp, &h);
            let pred = self.output.forward(tape, &h);
            let term = pred.sub(&target.slice_rows(i, 1)).square().sum_all();
            loss = Some(match loss {
                None => term,
                Some(acc) => acc.add(&term),
            });
        }
        loss.expect("non-empty trajectory").scale(1.0 / clean.len() as f32)
    }

    /// Trains on a corpus with the denoising objective; returns mean loss
    /// per epoch.
    pub fn train(&self, corpus: &[Trajectory], cfg: &T2vecConfig) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut opt = Adam::new(cfg.lr);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..corpus.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for batch in order.chunks(cfg.batch_size) {
                let tape = Tape::new();
                let mut loss: Option<Var> = None;
                for &i in batch {
                    let clean = &corpus[i];
                    let corrupted =
                        augment::observe(clean, &mut rng, cfg.drop_rate, cfg.noise_sigma);
                    let term = self.denoise_loss(&tape, clean, &corrupted);
                    loss = Some(match loss {
                        None => term,
                        Some(acc) => acc.add(&term),
                    });
                }
                if let Some(loss) = loss {
                    let loss = loss.scale(1.0 / batch.len() as f32);
                    epoch_loss += loss.item();
                    batches += 1;
                    self.params.zero_grad();
                    loss.backward();
                    clip_grad_norm(&self.params, 5.0);
                    opt.step(&self.params);
                }
            }
            epoch_losses.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
        }
        epoch_losses
    }
}

impl TrajEncoder for T2vecEncoder {
    fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        self.encode_state(tape, t)
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "t2vec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};

    #[test]
    fn denoising_training_reduces_loss() {
        let corpus = CityGenerator::new(CityParams::test_city(), 13).generate(24);
        let norm = NormStats::fit(&corpus);
        let enc = T2vecEncoder::new(8, norm, 1);
        let losses = enc.train(
            &corpus,
            &T2vecConfig { epochs: 4, batch_size: 8, ..Default::default() },
        );
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn embedding_has_width_and_is_robust_to_views() {
        let corpus = CityGenerator::new(CityParams::test_city(), 14).generate(16);
        let norm = NormStats::fit(&corpus);
        let enc = T2vecEncoder::new(8, norm, 2);
        enc.train(&corpus, &T2vecConfig { epochs: 2, batch_size: 8, ..Default::default() });
        let e = enc.embed(&corpus[0]);
        assert_eq!(e.len(), 8);
        assert!(e.iter().all(|x| x.is_finite()));
    }
}
