//! The trainable linear hash head the paper bolts onto every dense
//! baseline for the Hamming-space comparison (Section V-A3): "we leverage
//! the proposed ranking-based hashing objective with an extra trainable
//! linear layer to convert the dense vectors from baselines into hash
//! codes".

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tinynn::{clip_grad_norm, Adam, Linear, ParamSet, Tape, Tensor, Var};
use traj_dist::DistanceMatrix;
use traj2hash::loss::{rank_pairs, ranking_hash_loss, sample_companions};

/// Configuration of the hash-head training.
#[derive(Debug, Clone)]
pub struct HashHeadConfig {
    /// Output bits.
    pub bits: usize,
    /// Ranking margin `alpha` (same as Eq. 18).
    pub alpha: f32,
    /// Companions per anchor.
    pub samples_per_anchor: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Anchor batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Initial tanh relaxation scale, annealed like the main model.
    pub beta0: f32,
    /// Additive beta increase per epoch.
    pub beta_step: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HashHeadConfig {
    fn default() -> Self {
        HashHeadConfig {
            bits: 64,
            alpha: 5.0,
            samples_per_anchor: 10,
            epochs: 15,
            batch_size: 20,
            lr: 1e-2,
            beta0: 1.0,
            beta_step: 0.5,
            seed: 9,
        }
    }
}

/// A trained linear layer mapping dense embeddings to hash codes.
pub struct HashHead {
    params: ParamSet,
    linear: Linear,
}

impl HashHead {
    /// Trains a head on seed embeddings against the similarity
    /// supervision matrix; returns the head and its per-epoch losses.
    pub fn train(
        seed_embeddings: &[Vec<f32>],
        sim: &DistanceMatrix,
        cfg: &HashHeadConfig,
    ) -> (HashHead, Vec<f32>) {
        assert_eq!(seed_embeddings.len(), sim.n());
        assert!(!seed_embeddings.is_empty());
        let in_dim = seed_embeddings[0].len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let linear = Linear::new(&mut rng, &mut params, in_dim, cfg.bits);
        let mut opt = Adam::new(cfg.lr);
        let n = seed_embeddings.len();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let beta = cfg.beta0 + cfg.beta_step * epoch as f32;
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for batch in order.chunks(cfg.batch_size) {
                let tape = Tape::new();
                let code = |idx: usize| -> Var {
                    let v = tape.constant(Tensor::row_vector(&seed_embeddings[idx]));
                    linear.forward(&tape, &v).scale(beta).tanh()
                };
                let mut loss: Option<Var> = None;
                for &i in batch {
                    let companions =
                        sample_companions(i, sim.row(i), cfg.samples_per_anchor, &mut rng);
                    if companions.len() < 2 {
                        continue;
                    }
                    let z_i = code(i);
                    for (p, q) in rank_pairs(&companions) {
                        let term = ranking_hash_loss(&z_i, &code(p), &code(q), cfg.alpha);
                        loss = Some(match loss {
                            None => term,
                            Some(acc) => acc.add(&term),
                        });
                    }
                }
                if let Some(loss) = loss {
                    let loss = loss.scale(1.0 / batch.len() as f32);
                    epoch_loss += loss.item();
                    batches += 1;
                    params.zero_grad();
                    loss.backward();
                    clip_grad_norm(&params, 5.0);
                    opt.step(&params);
                }
            }
            epoch_losses.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
        }
        (HashHead { params, linear }, epoch_losses)
    }

    /// Hashes a dense embedding to a `+-1` sign vector.
    pub fn hash_signs(&self, embedding: &[f32]) -> Vec<i8> {
        let tape = Tape::new();
        let v = tape.constant(Tensor::row_vector(embedding));
        self.linear
            .forward(&tape, &v)
            .value()
            .data()
            .iter()
            .map(|&x| if x > 0.0 { 1 } else { -1 })
            .collect()
    }

    /// Batch hashing.
    pub fn hash_all(&self, embeddings: &[Vec<f32>]) -> Vec<Vec<i8>> {
        embeddings.iter().map(|e| self.hash_signs(e)).collect()
    }

    /// The head's parameters (exposed for tests).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_dist::DistanceMatrix;

    /// A toy setting: embeddings on a line; similarity = closeness.
    fn toy() -> (Vec<Vec<f32>>, DistanceMatrix) {
        let n = 30;
        let embeddings: Vec<Vec<f32>> =
            (0..n).map(|i| vec![i as f32 / n as f32, 1.0 - i as f32 / n as f32]).collect();
        let mut sim = DistanceMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let d = (i as f64 - j as f64).abs() / n as f64;
                sim.set_sym(i, j, (-3.0 * d).exp());
            }
        }
        (embeddings, sim)
    }

    #[test]
    fn training_reduces_ranking_loss() {
        let (embeddings, sim) = toy();
        let cfg = HashHeadConfig { bits: 16, epochs: 10, ..Default::default() };
        let (_, losses) = HashHead::train(&embeddings, &sim, &cfg);
        assert!(
            losses.last().unwrap() <= losses.first().unwrap(),
            "loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn trained_head_preserves_neighbourhoods_in_hamming_space() {
        let (embeddings, sim) = toy();
        let cfg = HashHeadConfig { bits: 16, epochs: 20, ..Default::default() };
        let (head, _) = HashHead::train(&embeddings, &sim, &cfg);
        let codes = head.hash_all(&embeddings);
        let hamming = |a: &[i8], b: &[i8]| -> usize {
            a.iter().zip(b).filter(|(x, y)| x != y).count()
        };
        // neighbours (i, i+1) should on average be closer in Hamming
        // space than far pairs (i, i+15)
        let mut near = 0usize;
        let mut far = 0usize;
        for i in 0..14 {
            near += hamming(&codes[i], &codes[i + 1]);
            far += hamming(&codes[i], &codes[i + 15]);
        }
        assert!(near < far, "near {near} vs far {far}");
    }

    #[test]
    fn codes_have_requested_width() {
        let (embeddings, sim) = toy();
        let cfg = HashHeadConfig { bits: 24, epochs: 2, ..Default::default() };
        let (head, _) = HashHead::train(&embeddings, &sim, &cfg);
        assert_eq!(head.hash_signs(&embeddings[0]).len(), 24);
    }
}
