//! CL-TSim-style baseline: contrastive trajectory representation
//! learning with distort/drop augmentations and an NT-Xent objective.
//!
//! Like t2vec, this method is distance-agnostic: it learns a robust
//! similarity of its own rather than approximating DTW/Fréchet/Hausdorff,
//! which is why the paper finds both at the bottom of Table I.

use crate::encoders::TrajEncoder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tinynn::{clip_grad_norm, Adam, GruCell, Linear, ParamSet, Tape, Tensor, Var};
use traj_data::{augment, NormStats, Trajectory};

/// The CL-TSim-style contrastive encoder.
pub struct ClTsimEncoder {
    params: ParamSet,
    input: Linear,
    cell: GruCell,
    norm: NormStats,
    dim: usize,
}

/// Contrastive training configuration (the paper tunes distort/drop rates
/// in `[0, 0.2, 0.4, 0.6]`).
#[derive(Debug, Clone)]
pub struct ClTsimConfig {
    /// Training epochs over the corpus sample.
    pub epochs: usize,
    /// Trajectories per contrastive batch (positives = 1, negatives =
    /// rest of batch).
    pub batch_size: usize,
    /// Distortion rate of each view.
    pub distort_rate: f64,
    /// Distortion noise sigma, meters.
    pub noise_sigma: f64,
    /// Point dropping rate of each view.
    pub drop_rate: f64,
    /// NT-Xent temperature.
    pub temperature: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClTsimConfig {
    fn default() -> Self {
        ClTsimConfig {
            epochs: 5,
            batch_size: 8,
            distort_rate: 0.4,
            noise_sigma: 20.0,
            drop_rate: 0.2,
            temperature: 0.5,
            lr: 1e-3,
            seed: 6,
        }
    }
}

impl ClTsimEncoder {
    /// Builds the encoder.
    pub fn new(dim: usize, norm: NormStats, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let input = Linear::new(&mut rng, &mut params, 2, dim);
        let cell = GruCell::new(&mut rng, &mut params, dim, dim);
        ClTsimEncoder { params, input, cell, norm, dim }
    }

    fn augmented_view(&self, t: &Trajectory, rng: &mut StdRng, cfg: &ClTsimConfig) -> Trajectory {
        let dropped = augment::downsample(t, rng, cfg.drop_rate);
        augment::distort(&dropped, rng, cfg.distort_rate, cfg.noise_sigma)
    }

    /// NT-Xent loss over a batch: two views per trajectory; each view's
    /// positive is its sibling, negatives are all other views in the
    /// batch.
    fn contrastive_loss(&self, _tape: &Tape, views: &[Var], temperature: f32) -> Var {
        let n = views.len();
        debug_assert!(n.is_multiple_of(2) && n >= 4, "need at least two trajectories (four views)");
        // cosine similarities scaled by temperature
        let normalize = |v: &Var| -> Var {
            let norm = v.square().sum_all().add_scalar(1e-8).sqrt();
            // divide row by scalar: multiply by reciprocal via div on
            // broadcast is unavailable; use scale trick through mul of
            // constant is not differentiable w.r.t. norm — so build it
            // with the div op on a widened denominator.
            let (r, c) = v.shape();
            debug_assert_eq!(r, 1);
            let mut wide = norm.clone();
            for _ in 1..c {
                wide = wide.concat_cols(&norm);
            }
            v.div(&wide)
        };
        let normed: Vec<Var> = views.iter().map(normalize).collect();
        let mut loss: Option<Var> = None;
        for i in 0..n {
            let pos = i ^ 1; // sibling view
            let pos_sim = normed[i].dot(&normed[pos]).scale(1.0 / temperature);
            // log-sum-exp over all other views
            let mut exps: Option<Var> = None;
            for (j, nj) in normed.iter().enumerate() {
                if j == i {
                    continue;
                }
                let s = normed[i].dot(nj).scale(1.0 / temperature).exp();
                exps = Some(match exps {
                    None => s,
                    Some(acc) => acc.add(&s),
                });
            }
            // lint: allow(unwrap) — the j != i loop runs at least once for n >= 2 views
            let term = exps.unwrap().ln().sub(&pos_sim);
            loss = Some(match loss {
                None => term,
                Some(acc) => acc.add(&term),
            });
        }
        // lint: allow(unwrap) — the outer loop pushed one term per view
        loss.unwrap().scale(1.0 / n as f32)
    }

    /// Trains on a corpus; returns the mean loss per epoch.
    pub fn train(&self, corpus: &[Trajectory], cfg: &ClTsimConfig) -> Vec<f32> {
        assert!(corpus.len() >= 2, "contrastive training needs at least two trajectories");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut opt = Adam::new(cfg.lr);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..corpus.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for batch in order.chunks(cfg.batch_size) {
                if batch.len() < 2 {
                    continue;
                }
                let tape = Tape::new();
                let mut views = Vec::with_capacity(batch.len() * 2);
                for &i in batch {
                    for _ in 0..2 {
                        let view = self.augmented_view(&corpus[i], &mut rng, cfg);
                        views.push(self.embed_var(&tape, &view));
                    }
                }
                let loss = self.contrastive_loss(&tape, &views, cfg.temperature);
                epoch_loss += loss.item();
                batches += 1;
                self.params.zero_grad();
                loss.backward();
                clip_grad_norm(&self.params, 5.0);
                opt.step(&self.params);
            }
            epoch_losses.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
        }
        epoch_losses
    }
}

impl TrajEncoder for ClTsimEncoder {
    fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        assert!(!t.is_empty(), "cannot encode an empty trajectory");
        let feats = self.norm.apply(t);
        let x = tape.constant(Tensor::from_vec(t.len(), 2, feats));
        let seq = self.input.forward(tape, &x).relu();
        self.cell.run_final(tape, &seq)
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "CL-TSim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};

    #[test]
    fn contrastive_training_reduces_loss() {
        let corpus = CityGenerator::new(CityParams::test_city(), 15).generate(24);
        let norm = NormStats::fit(&corpus);
        let enc = ClTsimEncoder::new(8, norm, 1);
        let losses =
            enc.train(&corpus, &ClTsimConfig { epochs: 4, batch_size: 6, ..Default::default() });
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn views_of_same_trajectory_become_closer_than_random_pairs() {
        let corpus = CityGenerator::new(CityParams::test_city(), 16).generate(20);
        let norm = NormStats::fit(&corpus);
        let enc = ClTsimEncoder::new(8, norm, 2);
        let cfg = ClTsimConfig { epochs: 5, batch_size: 6, ..Default::default() };
        enc.train(&corpus, &cfg);

        let mut rng = StdRng::seed_from_u64(99);
        let cos = |a: &[f32], b: &[f32]| -> f32 {
            let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb + 1e-9)
        };
        let mut view_sim = 0.0;
        let mut cross_sim = 0.0;
        for i in 0..10 {
            let v = enc.embed(&enc.augmented_view(&corpus[i], &mut rng, &cfg));
            let o = enc.embed(&corpus[i]);
            view_sim += cos(&v, &o);
            let other = enc.embed(&corpus[(i + 7) % corpus.len()]);
            cross_sim += cos(&o, &other);
        }
        assert!(
            view_sim > cross_sim,
            "augmented views ({view_sim}) should be closer than random pairs ({cross_sim})"
        );
    }
}
