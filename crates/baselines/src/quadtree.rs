//! A PR (point-region) quadtree over the study area — the spatial
//! substrate of the TrajGAT baseline, which enhances its attention with
//! PR-quadtree structure. We build the tree from a sample of training
//! points and use the leaf cells as spatial tokens.

use traj_data::{BoundingBox, Point};

/// One node of the quadtree.
#[derive(Debug)]
enum Node {
    /// Leaf with its id in the leaf table.
    Leaf { id: usize },
    /// Four children in NW, NE, SW, SE order.
    Internal { children: Box<[Node; 4]> },
}

/// A PR quadtree: splits any region holding more than `capacity` sample
/// points, down to `max_depth`.
#[derive(Debug)]
pub struct QuadTree {
    root: Node,
    bbox: BoundingBox,
    num_leaves: usize,
    max_depth: usize,
}

impl QuadTree {
    /// Builds the tree from sample points.
    pub fn build(bbox: BoundingBox, points: &[Point], capacity: usize, max_depth: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        let mut num_leaves = 0;
        let pts: Vec<Point> = points.iter().filter(|p| bbox.contains(**p)).cloned().collect();
        let root = Self::build_node(&bbox, &pts, capacity, max_depth, 0, &mut num_leaves);
        QuadTree { root, bbox, num_leaves, max_depth }
    }

    fn quadrant_box(b: &BoundingBox, q: usize) -> BoundingBox {
        let mx = (b.min_x + b.max_x) / 2.0;
        let my = (b.min_y + b.max_y) / 2.0;
        match q {
            0 => BoundingBox { min_x: b.min_x, min_y: my, max_x: mx, max_y: b.max_y }, // NW
            1 => BoundingBox { min_x: mx, min_y: my, max_x: b.max_x, max_y: b.max_y }, // NE
            2 => BoundingBox { min_x: b.min_x, min_y: b.min_y, max_x: mx, max_y: my }, // SW
            _ => BoundingBox { min_x: mx, min_y: b.min_y, max_x: b.max_x, max_y: my }, // SE
        }
    }

    fn quadrant_of(b: &BoundingBox, p: Point) -> usize {
        let mx = (b.min_x + b.max_x) / 2.0;
        let my = (b.min_y + b.max_y) / 2.0;
        match (p.x >= mx, p.y >= my) {
            (false, true) => 0,
            (true, true) => 1,
            (false, false) => 2,
            (true, false) => 3,
        }
    }

    fn build_node(
        bbox: &BoundingBox,
        points: &[Point],
        capacity: usize,
        max_depth: usize,
        depth: usize,
        num_leaves: &mut usize,
    ) -> Node {
        if points.len() <= capacity || depth >= max_depth {
            let id = *num_leaves;
            *num_leaves += 1;
            return Node::Leaf { id };
        }
        let mut buckets: [Vec<Point>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for &p in points {
            buckets[Self::quadrant_of(bbox, p)].push(p);
        }
        let children = Box::new([
            Self::build_node(&Self::quadrant_box(bbox, 0), &buckets[0], capacity, max_depth, depth + 1, num_leaves),
            Self::build_node(&Self::quadrant_box(bbox, 1), &buckets[1], capacity, max_depth, depth + 1, num_leaves),
            Self::build_node(&Self::quadrant_box(bbox, 2), &buckets[2], capacity, max_depth, depth + 1, num_leaves),
            Self::build_node(&Self::quadrant_box(bbox, 3), &buckets[3], capacity, max_depth, depth + 1, num_leaves),
        ]);
        Node::Internal { children }
    }

    /// Number of leaf cells (the spatial vocabulary size).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Maximum depth the tree was allowed to reach.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Maps a point to its leaf id; points outside the box are clamped.
    pub fn locate(&self, p: Point) -> usize {
        let mut p = self.bbox.clamp(p);
        // nudge off the max border so quadrant_of stays in range
        if p.x >= self.bbox.max_x {
            p.x = self.bbox.max_x - 1e-9;
        }
        if p.y >= self.bbox.max_y {
            p.y = self.bbox.max_y - 1e-9;
        }
        let mut node = &self.root;
        let mut bbox = self.bbox;
        loop {
            match node {
                Node::Leaf { id } => return *id,
                Node::Internal { children } => {
                    let q = Self::quadrant_of(&bbox, p);
                    bbox = Self::quadrant_box(&bbox, q);
                    node = &children[q];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_points(n: usize, extent: f64) -> Vec<Point> {
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * extent
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn empty_tree_is_single_leaf() {
        let t = QuadTree::build(BoundingBox::from_extent(100.0, 100.0), &[], 4, 8);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.locate(Point::new(50.0, 50.0)), 0);
    }

    #[test]
    fn dense_regions_get_finer_cells() {
        let mut pts = uniform_points(50, 10.0); // dense in [0,10]^2 corner
        pts.extend([Point::new(900.0, 900.0)]);
        let t = QuadTree::build(BoundingBox::from_extent(1000.0, 1000.0), &pts, 4, 10);
        assert!(t.num_leaves() > 4, "tree should have split ({} leaves)", t.num_leaves());
        // two points in the dense corner map to leaves, the far corner to another
        let a = t.locate(Point::new(1.0, 1.0));
        let far = t.locate(Point::new(950.0, 950.0));
        assert_ne!(a, far);
    }

    #[test]
    fn locate_is_deterministic_and_total() {
        let pts = uniform_points(200, 500.0);
        let t = QuadTree::build(BoundingBox::from_extent(500.0, 500.0), &pts, 8, 8);
        for &p in &pts {
            let id = t.locate(p);
            assert!(id < t.num_leaves());
            assert_eq!(id, t.locate(p));
        }
        // outside points clamp rather than panic
        let _ = t.locate(Point::new(-100.0, 1e9));
    }

    #[test]
    fn capacity_one_separates_distant_points() {
        let pts = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let t = QuadTree::build(BoundingBox::from_extent(100.0, 100.0), &pts, 1, 8);
        assert_ne!(t.locate(pts[0]), t.locate(pts[1]));
    }

    #[test]
    fn max_depth_bounds_splitting() {
        // identical points can never be separated; max_depth must stop it
        let pts = vec![Point::new(5.0, 5.0); 100];
        let t = QuadTree::build(BoundingBox::from_extent(100.0, 100.0), &pts, 1, 6);
        assert!(t.num_leaves() < 4usize.pow(7));
    }
}
