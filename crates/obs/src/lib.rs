//! # traj-obs — zero-dependency observability for the Traj2Hash workspace
//!
//! The serving and training layers need one answer to "why did recall
//! drop" and "which strategy is slow" without a debugger: hierarchical
//! spans with wall-clock timings, counters and gauges, and log-bucketed
//! latency histograms (p50/p95/p99), all behind a cheap global recorder.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero disabled overhead.** Every emission site first loads
//!    one relaxed atomic ([`enabled`]); with no recorder installed the
//!    call returns immediately — no clock read, no allocation, no lock.
//!    The hot paths PR 2 optimized stay hot.
//! 2. **Zero dependencies, offline friendly.** No `tracing`, no
//!    `serde`: the JSONL sink hand-writes (and hand-parses, for the
//!    round-trip gate) its own lines.
//! 3. **Test isolation.** [`with_local_recorder`] installs a recorder
//!    for the current thread only, so parallel tests never observe each
//!    other's metrics.
//!
//! ## Sinks
//!
//! * [`InMemoryRecorder`] — aggregates everything; tests assert on it
//!   and anything can print its [`summary`](InMemoryRecorder::summary).
//! * [`JsonlRecorder`] — streams events/spans as JSON lines and dumps
//!   aggregated counters/gauges/histograms on [`flush`](Recorder::flush);
//!   enabled in the bench binaries via `OBS_JSONL=path`.
//!
//! ## Emitting
//!
//! ```
//! let _handle = traj_obs::with_local_recorder(
//!     std::sync::Arc::new(traj_obs::InMemoryRecorder::default()),
//!     || {
//!         let _span = traj_obs::span("epoch").field("epoch", 0u64);
//!         traj_obs::counter("train.batches", 1);
//!         traj_obs::observe_secs("engine.query.hamming_bf", 1.2e-4);
//!         traj_obs::event("train.rollback", &[("epoch", 3u64.into())]);
//!     },
//! );
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod jsonl;
pub mod memory;
pub mod serve;
pub mod trend;

pub use flight::{FlightConfig, FlightEntry, FlightRecorder};
pub use hist::Histogram;
pub use jsonl::{parse_json, validate_record, Json, JsonlRecorder, RecordSummary};
pub use memory::{Aggregates, EventRecord, InMemoryRecorder, SpanRecord};
pub use serve::{render_prometheus, validate_exposition, OpsHealth, OpsServer};
pub use trend::TrendWindow;

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Values and fields
// ---------------------------------------------------------------------

/// A structured field value on an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One `key = value` pair attached to an event or span.
pub type Field = (&'static str, Value);

// ---------------------------------------------------------------------
// The recorder trait and the global/local installation machinery
// ---------------------------------------------------------------------

/// A metric/event sink. Implementations must be cheap enough to sit on
/// per-query paths when enabled, and are only ever called when a
/// recorder is actually installed.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);
    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);
    /// Records one observation into the named log-bucketed histogram.
    /// Latencies are recorded in seconds; other magnitudes (candidate
    /// counts, byte sizes) use their natural unit.
    fn observe(&self, name: &str, value: f64);
    /// Records a discrete event with structured fields.
    fn event(&self, name: &str, fields: &[Field]);
    /// Records a completed span: its `/`-joined ancestry path and
    /// wall-clock duration.
    fn span_end(&self, path: &str, seconds: f64, fields: &[Field]);
    /// Flushes buffered output (JSONL metric summaries, file buffers).
    fn flush(&self) {}
    /// A snapshot of the aggregated counters/gauges/histograms, when
    /// the sink keeps one. The ops server's `/metrics` endpoint renders
    /// whatever this returns; sinks without aggregation return `None`
    /// (the default) and scrape as an empty exposition.
    fn aggregates_snapshot(&self) -> Option<Aggregates> {
        None
    }
}

/// Number of installed recorders (global slot counts 1, each thread
/// local counts 1). The disabled fast path is a single relaxed load of
/// this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

thread_local! {
    static LOCAL: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Poison-proof mutex acquisition for recorder internals: a recorder
/// panicking while holding its own lock must not disable observability
/// for the rest of the process. This is the obs crate's one sanctioned
/// `Mutex` acquisition point (traj-lint `no-bare-lock`). Recovering
/// from poison means a panic unwound through instrumented code — that
/// is exactly the moment tail exemplars matter, so the poison arm
/// force-dumps the flight recorder (re-entrancy-guarded) before
/// continuing.
pub(crate) fn olock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            flight::poison_dump("obs.lock.poisoned");
            poisoned.into_inner()
        }
    }
}

/// Poison-proof read of the global recorder slot. Recovery is sound
/// because the slot only ever holds a whole `Option<Arc<..>>` that is
/// replaced atomically under the write lock — a panicked installer
/// cannot leave it half-written.
fn gread() -> std::sync::RwLockReadGuard<'static, Option<Arc<dyn Recorder>>> {
    match GLOBAL.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-proof write of the global recorder slot; see [`gread`].
fn gwrite() -> std::sync::RwLockWriteGuard<'static, Option<Arc<dyn Recorder>>> {
    match GLOBAL.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when any recorder (global or thread-local) is installed. This
/// is the disabled-overhead fast path: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs `rec` as the process-wide recorder, replacing any previous
/// one. Thread-local recorders (tests) take precedence on their thread.
pub fn install(rec: Arc<dyn Recorder>) {
    let mut g = gwrite();
    if g.is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
    *g = Some(rec);
}

/// Removes the process-wide recorder; emission sites return to the
/// near-zero no-op path.
pub fn uninstall() {
    let mut g = gwrite();
    if g.take().is_some() {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs `f` with `rec` installed for the **current thread only**,
/// shadowing the global recorder. The previous state is restored even
/// if `f` panics. This is how tests observe their own emissions without
/// interference from concurrently running tests.
pub fn with_local_recorder<R>(rec: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    struct Reset(Option<Arc<dyn Recorder>>);
    impl Drop for Reset {
        fn drop(&mut self) {
            LOCAL.with(|l| *l.borrow_mut() = self.0.take());
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let prev = LOCAL.with(|l| l.borrow_mut().replace(rec));
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    let _reset = Reset(prev);
    f()
}

/// The recorder emissions on this thread should go to, if any.
fn current() -> Option<Arc<dyn Recorder>> {
    if !enabled() {
        return None;
    }
    if let Some(local) = LOCAL.with(|l| l.borrow().clone()) {
        return Some(local);
    }
    gread().clone()
}

// ---------------------------------------------------------------------
// Emission entry points
// ---------------------------------------------------------------------

/// Adds `delta` to a monotonic counter. No-op without a recorder.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if let Some(r) = current() {
        r.counter(name, delta);
    }
}

/// Sets a gauge. No-op without a recorder.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if let Some(r) = current() {
        r.gauge(name, value);
    }
}

/// Records one histogram observation (seconds for latencies). No-op
/// without a recorder.
#[inline]
pub fn observe_secs(name: &str, seconds: f64) {
    if let Some(r) = current() {
        r.observe(name, seconds);
    }
}

/// Records one histogram observation of a non-latency magnitude
/// (candidate counts, bytes). Same machinery as [`observe_secs`],
/// separate name so call sites document their unit.
#[inline]
pub fn observe_value(name: &str, value: f64) {
    if let Some(r) = current() {
        r.observe(name, value);
    }
}

/// Records a discrete structured event. No-op without a recorder.
#[inline]
pub fn event(name: &str, fields: &[Field]) {
    if let Some(r) = current() {
        r.event(name, fields);
    }
}

/// Flushes the installed recorder(s), if any.
pub fn flush() {
    if let Some(r) = current() {
        r.flush();
    }
}

/// A snapshot of the installed recorder's aggregated metrics, if a
/// recorder is installed and keeps aggregates. This is what the ops
/// server's `/metrics` endpoint scrapes.
pub fn snapshot_aggregates() -> Option<Aggregates> {
    current().and_then(|r| r.aggregates_snapshot())
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// A live hierarchical span; records its wall-clock duration and
/// `/`-joined ancestry path on drop. Inert (no clock read, no stack
/// push) when no recorder is installed at creation time.
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    start: Option<Instant>,
    fields: Vec<Field>,
}

/// Opens a span named `name` nested under any spans already open on
/// this thread.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None, fields: Vec::new() };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span { start: Some(Instant::now()), fields: Vec::new() }
}

impl Span {
    /// Attaches a field (builder style, for values known up front).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Attaches a field to an already-bound span (for values only known
    /// at the end of the scope, like a loss).
    pub fn add_field(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let seconds = start.elapsed().as_secs_f64();
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        if let Some(r) = current() {
            r.span_end(&path, seconds, &self.fields);
        }
    }
}

/// Times `f` under a span named `name`.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

// ---------------------------------------------------------------------
// Environment bootstrap for binaries
// ---------------------------------------------------------------------

/// A handle to the recorder [`init_from_env`] installed, for summaries
/// and explicit flushing from bench binaries.
pub enum ObsHandle {
    /// JSONL exporter (from `OBS_JSONL=path`).
    Jsonl(Arc<JsonlRecorder>),
    /// In-memory aggregation (the default for bench summaries).
    Memory(Arc<InMemoryRecorder>),
}

impl ObsHandle {
    /// Human-readable summary of everything aggregated so far.
    pub fn summary(&self) -> String {
        match self {
            ObsHandle::Jsonl(r) => r.summary(),
            ObsHandle::Memory(r) => r.summary(),
        }
    }

    /// Aggregated state snapshot.
    pub fn aggregates(&self) -> Aggregates {
        match self {
            ObsHandle::Jsonl(r) => r.aggregates(),
            ObsHandle::Memory(r) => r.aggregates(),
        }
    }

    /// Flushes buffered output (JSONL metric summary lines).
    pub fn flush(&self) {
        match self {
            ObsHandle::Jsonl(r) => Recorder::flush(&**r),
            ObsHandle::Memory(r) => Recorder::flush(&**r),
        }
    }
}

/// Bench/binary bootstrap: installs the JSONL exporter globally when
/// `OBS_JSONL=path` is set, otherwise an in-memory recorder, and
/// returns a handle for summaries. Library code never calls this —
/// recorder installation is the application's decision.
pub fn init_from_env() -> std::io::Result<ObsHandle> {
    match std::env::var_os("OBS_JSONL") {
        Some(path) => {
            let rec = Arc::new(JsonlRecorder::create(std::path::Path::new(&path))?);
            install(rec.clone());
            Ok(ObsHandle::Jsonl(rec))
        }
        None => {
            let rec = Arc::new(InMemoryRecorder::default());
            install(rec.clone());
            Ok(ObsHandle::Memory(rec))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        // No recorder installed on this thread: nothing panics, nothing
        // allocates a span stack entry.
        counter("x", 1);
        gauge("x", 1.0);
        observe_secs("x", 0.1);
        event("x", &[("k", 1u64.into())]);
        let s = span("quiet");
        drop(s);
        SPAN_STACK.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn local_recorder_captures_and_restores() {
        let rec = Arc::new(InMemoryRecorder::default());
        let out = with_local_recorder(rec.clone(), || {
            counter("c", 2);
            counter("c", 3);
            gauge("g", 0.5);
            observe_secs("h", 0.001);
            event("e", &[("answer", 42u64.into())]);
            7
        });
        assert_eq!(out, 7);
        let agg = rec.aggregates();
        assert_eq!(agg.counters.get("c"), Some(&5));
        assert_eq!(agg.gauges.get("g"), Some(&0.5));
        assert_eq!(agg.histograms.get("h").map(|h| h.count()), Some(1));
        assert_eq!(agg.events.len(), 1);
        assert_eq!(agg.events[0].name, "e");
        // After the scope the thread is back to no-op.
        counter("c", 100);
        assert_eq!(rec.aggregates().counters.get("c"), Some(&5));
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let rec = Arc::new(InMemoryRecorder::default());
        with_local_recorder(rec.clone(), || {
            let _outer = span("train");
            {
                let _inner = span("epoch").field("epoch", 3u64);
                let _leaf = span("checkpoint_write");
            }
        });
        let agg = rec.aggregates();
        let paths: Vec<&str> = agg.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["train/epoch/checkpoint_write", "train/epoch", "train"]);
        let epoch = &agg.spans[1];
        assert_eq!(epoch.fields[0].0, "epoch");
        assert!(epoch.seconds >= 0.0);
    }

    #[test]
    fn local_recorder_survives_inner_panic() {
        let rec = Arc::new(InMemoryRecorder::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_local_recorder(rec.clone(), || {
                counter("before", 1);
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        // TLS restored: this emission is a no-op, not a capture.
        counter("after", 1);
        let agg = rec.aggregates();
        assert_eq!(agg.counters.get("before"), Some(&1));
        assert_eq!(agg.counters.get("after"), None);
    }

    #[test]
    fn global_install_uninstall_toggles_enabled() {
        // Serialized through the global slot: this test is the only one
        // in the crate touching the global recorder.
        assert!(!enabled() || ACTIVE.load(Ordering::SeqCst) > 0);
        let rec = Arc::new(InMemoryRecorder::default());
        install(rec.clone());
        assert!(enabled());
        counter("global", 1);
        uninstall();
        counter("global", 1);
        assert_eq!(rec.aggregates().counters.get("global"), Some(&1));
    }
}
