//! In-memory aggregation: the recorder tests assert against, and the
//! shared [`Aggregates`] state every sink renders its human-readable
//! summary from.

use crate::hist::Histogram;
use crate::{olock, Field, Recorder, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A recorded discrete event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name, e.g. `train.rollback`.
    pub name: String,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl EventRecord {
    /// The value of the named field, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A recorded completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// `/`-joined ancestry path, e.g. `train/epoch`.
    pub path: String,
    /// Wall-clock duration.
    pub seconds: f64,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl SpanRecord {
    /// The value of the named field, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Everything a recorder has aggregated: the shared state behind both
/// the in-memory sink and the JSONL sink's summary section.
#[derive(Debug, Clone, Default)]
pub struct Aggregates {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Log-bucketed histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Every event, in order.
    pub events: Vec<EventRecord>,
    /// Every completed span, in completion order.
    pub spans: Vec<SpanRecord>,
}

fn owned_fields(fields: &[Field]) -> Vec<(String, Value)> {
    fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

impl Aggregates {
    pub(crate) fn apply_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn apply_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub(crate) fn apply_observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    pub(crate) fn apply_event(&mut self, name: &str, fields: &[Field]) {
        self.events.push(EventRecord { name: name.to_string(), fields: owned_fields(fields) });
    }

    pub(crate) fn apply_span(&mut self, path: &str, seconds: f64, fields: &[Field]) {
        self.spans.push(SpanRecord {
            path: path.to_string(),
            seconds,
            fields: owned_fields(fields),
        });
    }

    /// Events with the given name, in order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// The value of a counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The last value written to the named gauge, if it was ever set.
    /// Tests assert on this directly instead of re-parsing JSONL
    /// summary lines.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation ever landed in it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Renders the aggregated state as an aligned human-readable block:
    /// counters, gauges, histogram quantiles, per-path span totals, and
    /// per-name event counts.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("== obs summary ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<44} n={:<7} p50={} p95={} p99={} mean={} max={}",
                    h.count(),
                    fmt_mag(h.p50()),
                    fmt_mag(h.p95()),
                    fmt_mag(h.p99()),
                    fmt_mag(h.mean()),
                    fmt_mag(h.max()),
                );
            }
        }
        if !self.spans.is_empty() {
            // count + total seconds per distinct path
            let mut by_path: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
            for s in &self.spans {
                let e = by_path.entry(&s.path).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += s.seconds;
            }
            out.push_str("spans:\n");
            for (path, (n, total)) in by_path {
                let _ = writeln!(out, "  {path:<44} n={n:<7} total={total:.3}s");
            }
        }
        if !self.events.is_empty() {
            let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
            for e in &self.events {
                *by_name.entry(&e.name).or_insert(0) += 1;
            }
            out.push_str("events:\n");
            for (name, n) in by_name {
                let _ = writeln!(out, "  {name:<44} n={n}");
            }
        }
        out
    }
}

/// Formats a magnitude compactly: sub-second values as latencies
/// (ns/us/ms/s), everything at 1 or above as a plain number — histogram
/// names say which unit they carry.
fn fmt_mag(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v < 1e-6 {
        format!("{:.0}ns", v * 1e9)
    } else if v < 1e-3 {
        format!("{:.1}us", v * 1e6)
    } else if v < 1.0 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{v:.2}")
    }
}

/// A recorder that aggregates everything in memory. Cheap enough for
/// bench runs; the primary assertion surface for tests.
#[derive(Default)]
pub struct InMemoryRecorder {
    inner: Mutex<Aggregates>,
    records: AtomicU64,
}

impl InMemoryRecorder {
    /// A snapshot of everything recorded so far.
    pub fn aggregates(&self) -> Aggregates {
        olock(&self.inner).clone()
    }

    /// Total recorder invocations (counters + gauges + observations +
    /// events + spans) — the call count the overhead gate multiplies by
    /// the measured per-call no-op cost.
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Human-readable summary of the aggregated state.
    pub fn summary(&self) -> String {
        olock(&self.inner).summary()
    }
}

impl Recorder for InMemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.records.fetch_add(1, Ordering::Relaxed);
        olock(&self.inner).apply_counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.records.fetch_add(1, Ordering::Relaxed);
        olock(&self.inner).apply_gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.records.fetch_add(1, Ordering::Relaxed);
        olock(&self.inner).apply_observe(name, value);
    }

    fn event(&self, name: &str, fields: &[Field]) {
        self.records.fetch_add(1, Ordering::Relaxed);
        olock(&self.inner).apply_event(name, fields);
    }

    fn span_end(&self, path: &str, seconds: f64, fields: &[Field]) {
        self.records.fetch_add(1, Ordering::Relaxed);
        olock(&self.inner).apply_span(path, seconds, fields);
    }

    fn aggregates_snapshot(&self) -> Option<Aggregates> {
        Some(self.aggregates())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_and_summary_cover_every_kind() {
        let rec = InMemoryRecorder::default();
        rec.counter("engine.inserts", 2);
        rec.counter("engine.inserts", 1);
        rec.gauge("train.val_hr10", 0.625);
        for i in 1..=100 {
            rec.observe("engine.query.mih", i as f64 * 1e-5);
        }
        rec.event("train.rollback", &[("epoch", 3u64.into()), ("kind", "loss spike".into())]);
        rec.span_end("train/epoch", 0.25, &[("loss", 0.5f64.into())]);

        let agg = rec.aggregates();
        assert_eq!(agg.counter_value("engine.inserts"), 3);
        assert_eq!(agg.counter_value("never.touched"), 0);
        assert_eq!(agg.gauge_value("train.val_hr10"), Some(0.625));
        assert_eq!(agg.gauge_value("never.touched"), None);
        assert_eq!(agg.histogram("engine.query.mih").map(|h| h.count()), Some(100));
        assert!(agg.histogram("never.touched").is_none());
        assert_eq!(agg.events_named("train.rollback").count(), 1);
        let ev = agg.events_named("train.rollback").next().expect("event");
        assert_eq!(ev.field("epoch"), Some(&Value::U64(3)));
        assert_eq!(rec.record_count(), 2 + 1 + 100 + 1 + 1);

        let text = rec.summary();
        assert!(text.contains("engine.inserts"), "{text}");
        assert!(text.contains("train.val_hr10"), "{text}");
        assert!(text.contains("engine.query.mih"), "{text}");
        assert!(text.contains("p99="), "{text}");
        assert!(text.contains("train/epoch"), "{text}");
        assert!(text.contains("train.rollback"), "{text}");
    }

    #[test]
    fn magnitude_formatting_picks_sane_units() {
        assert_eq!(fmt_mag(0.0), "0");
        assert_eq!(fmt_mag(5e-8), "50ns");
        assert_eq!(fmt_mag(2.5e-5), "25.0us");
        assert_eq!(fmt_mag(1.5e-2), "15.00ms");
        assert_eq!(fmt_mag(140.0), "140.00");
    }
}
