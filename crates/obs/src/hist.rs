//! Log-bucketed histograms for latency (and other positive-magnitude)
//! distributions.
//!
//! Buckets grow geometrically by `2^(1/4)` (~19% wide) from 1 ns, which
//! keeps any quantile estimate within ~±9% of the true value — plenty
//! for p50/p95/p99 dashboards — while the whole histogram stays a fixed
//! 256 × u64 array: no allocation per observation, trivially mergeable,
//! and safe to park behind a mutex on a query path.

/// Number of buckets. `1e-9 * 2^(255/4)` ≈ 1.6e10, so the range covers
/// nanoseconds through ~500 years of seconds (or counts up to 1.6e10).
const BUCKETS: usize = 256;

/// Lower edge of bucket 0.
const MIN_VALUE: f64 = 1e-9;

/// Buckets per doubling.
const SUBDIV: f64 = 4.0;

/// A fixed-size log-bucketed histogram over positive values.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Observations dropped because they were NaN/inf/negative.
    non_finite: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .finish()
    }
}

/// The bucket a finite nonnegative value lands in. Exposed crate-wide
/// so the flight recorder can compare latencies at bucket granularity
/// ("lands in the top bucket" is a bucket-index comparison, not a float
/// threshold).
pub(crate) fn bucket_of(v: f64) -> usize {
    if v <= MIN_VALUE {
        return 0;
    }
    // lint: allow(lossy-cast) — v >= MIN_VALUE makes the log nonnegative; idx is clamped below
    let idx = ((v / MIN_VALUE).log2() * SUBDIV) as usize;
    idx.min(BUCKETS - 1)
}

/// Geometric midpoint of bucket `i`, the value quantiles report.
fn bucket_mid(i: usize) -> f64 {
    MIN_VALUE * ((i as f64 + 0.5) / SUBDIV).exp2()
}

/// Upper edge of bucket `i` — the Prometheus `le` bound of the bucket.
fn bucket_upper(i: usize) -> f64 {
    MIN_VALUE * ((i as f64 + 1.0) / SUBDIV).exp2()
}

impl Histogram {
    /// Records one observation. Non-finite or negative values are
    /// counted separately and excluded from the distribution — a NaN
    /// latency must never look like a fast query.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.non_finite += 1;
            return;
        }
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations rejected as non-finite or negative.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from bucket
    /// midpoints and clamped into `[min, max]`.
    ///
    /// Edge policy:
    ///
    /// * `q <= 0.0` returns the exact recorded minimum and `q >= 1.0`
    ///   the exact recorded maximum — never a bucket midpoint, so the
    ///   extremes round-trip losslessly;
    /// * an empty histogram (including one that only ever saw
    ///   non-finite/negative observations, which are quarantined by
    ///   [`record`](Histogram::record)) reports `0.0` for every
    ///   quantile, matching [`min`](Histogram::min) and
    ///   [`max`](Histogram::max);
    /// * a NaN `q` is treated as `0.0` (the conservative end), so a
    ///   corrupted quantile request degrades to the minimum rather
    ///   than propagating NaN into dashboards.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// `(upper_edge, count)` for every non-empty bucket, in ascending
    /// edge order — the raw material for Prometheus `_bucket` series
    /// (callers accumulate the cumulative `le` counts).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.non_finite += other.non_finite;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_observation_is_its_own_quantiles() {
        let mut h = Histogram::default();
        h.record(0.004);
        // Clamping to [min, max] makes every quantile exactly the sample.
        assert_eq!(h.p50(), 0.004);
        assert_eq!(h.p99(), 0.004);
        assert_eq!(h.min(), 0.004);
        assert_eq!(h.max(), 0.004);
        assert!((h.mean() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_log_bucket_accurate() {
        // 1..=1000 microseconds uniformly: p50 ≈ 500us, p95 ≈ 950us,
        // p99 ≈ 990us, each within one ~19% bucket.
        let mut h = Histogram::default();
        for us in 1..=1000 {
            h.record(us as f64 * 1e-6);
        }
        let within = |est: f64, truth: f64| (est / truth) > 0.8 && (est / truth) < 1.25;
        assert!(within(h.p50(), 500e-6), "p50 = {}", h.p50());
        assert!(within(h.p95(), 950e-6), "p95 = {}", h.p95());
        assert!(within(h.p99(), 990e-6), "p99 = {}", h.p99());
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 1000e-6);
    }

    #[test]
    fn non_finite_and_negative_are_quarantined() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        h.record(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.non_finite(), 3);
        assert_eq!(h.p50(), 0.5);
    }

    #[test]
    fn extremes_clamp_into_the_edge_buckets() {
        let mut h = Histogram::default();
        h.record(0.0); // below MIN_VALUE -> bucket 0
        h.record(1e12); // beyond the last bucket -> clamped
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e12);
    }

    #[test]
    fn quantile_edges_are_exact_min_and_max() {
        let mut h = Histogram::default();
        for us in 1..=1000 {
            h.record(us as f64 * 1e-6);
        }
        // q=0 / q=1 return the exact extremes, not bucket midpoints.
        assert_eq!(h.quantile(0.0), 1e-6);
        assert_eq!(h.quantile(1.0), 1000e-6);
        // Out-of-range q clamps to the same exact extremes.
        assert_eq!(h.quantile(-3.0), 1e-6);
        assert_eq!(h.quantile(7.0), 1000e-6);
    }

    #[test]
    fn quantile_nan_and_degenerate_histograms() {
        let mut h = Histogram::default();
        h.record(0.25);
        h.record(0.75);
        // NaN q degrades to q=0 (the minimum), never NaN.
        assert_eq!(h.quantile(f64::NAN), 0.25);

        // Empty histograms report 0 at every q, including the edges.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert_eq!(empty.quantile(q), 0.0);
        }

        // A histogram that only saw quarantined values is still empty.
        let mut bad = Histogram::default();
        bad.record(f64::NAN);
        bad.record(-2.0);
        bad.record(f64::INFINITY);
        assert_eq!(bad.count(), 0);
        assert_eq!(bad.non_finite(), 3);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(bad.quantile(q), 0.0);
        }
    }

    #[test]
    fn nonzero_buckets_cover_the_distribution_in_order() {
        let mut h = Histogram::default();
        for us in 1..=1000 {
            h.record(us as f64 * 1e-6);
        }
        let buckets: Vec<(f64, u64)> = h.nonzero_buckets().collect();
        assert!(!buckets.is_empty());
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "edges must ascend: {buckets:?}");
        }
        // Every observation sits at or below its bucket's upper edge
        // (up to one bucket of slack at the top for the max).
        let top_edge = buckets.last().map(|&(e, _)| e).unwrap_or(0.0);
        assert!(h.max() <= top_edge * 1.2, "max {} vs edge {top_edge}", h.max());
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for us in 1..=500 {
            a.record(us as f64 * 1e-6);
        }
        for us in 501..=1000 {
            b.record(us as f64 * 1e-6);
        }
        let mut whole = Histogram::default();
        for us in 1..=1000 {
            whole.record(us as f64 * 1e-6);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.p99(), whole.p99());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }
}
