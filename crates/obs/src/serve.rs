//! Zero-dependency blocking HTTP ops surface.
//!
//! One `std::net::TcpListener` accept loop on a background thread,
//! serving three read-only endpoints:
//!
//! * `/metrics` — the installed recorder's aggregates rendered in
//!   Prometheus text exposition format (counters, gauges, histogram
//!   buckets + quantiles);
//! * `/healthz` — `200 ok` / `503 degraded` from an [`OpsHealth`] cell
//!   the host (the soak loop) updates each tick;
//! * `/traces` — drains the flight recorder (`flight.rs`) as JSONL.
//!
//! No HTTP library, no async runtime: requests are tiny GETs from a
//! scraper, so a short read with a timeout and a `Connection: close`
//! response is the whole protocol. [`validate_exposition`] parses the
//! exposition format back so `check.sh ops` can gate the scrape output
//! offline.

use crate::memory::Aggregates;
use crate::olock;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------
// Health cell
// ---------------------------------------------------------------------

/// Shared health state behind `/healthz`: the serving loop updates it,
/// the ops server reads it. Starts healthy with detail `"startup"`
/// until the first report lands.
pub struct OpsHealth {
    healthy: AtomicBool,
    detail: Mutex<String>,
}

impl Default for OpsHealth {
    fn default() -> Self {
        OpsHealth { healthy: AtomicBool::new(true), detail: Mutex::new("startup".to_string()) }
    }
}

impl OpsHealth {
    /// A fresh health cell, shareable between the updater and the server.
    pub fn new() -> Arc<OpsHealth> {
        Arc::new(OpsHealth::default())
    }

    /// Publishes the latest health verdict and its human-readable detail.
    pub fn set(&self, healthy: bool, detail: &str) {
        *olock(&self.detail) = detail.to_string();
        self.healthy.store(healthy, Ordering::Relaxed);
    }

    /// The last published verdict.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// The last published detail string.
    pub fn detail(&self) -> String {
        olock(&self.detail).clone()
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A running ops server. Shuts down (flag + wake-up connection + join)
/// on [`shutdown`](OpsServer::shutdown) or drop.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port — the
    /// test-friendly default) and starts the accept loop on a
    /// background thread.
    pub fn start(port: u16, health: Arc<OpsHealth>) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("traj-ops".to_string())
            .spawn(move || accept_loop(listener, stop_loop, health))?;
        Ok(OpsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, health: Arc<OpsHealth>) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok((stream, _)) => handle_conn(stream, &health),
            Err(e) => {
                // The ops surface is diagnostics-only: report and keep
                // serving rather than taking the soak loop down.
                eprintln!("traj-ops: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Reads the request head (up to 8 KiB, 2 s timeout) and writes one
/// response. Any IO failure just drops the connection — a scraper
/// retries, the engine must not care.
fn handle_conn(mut stream: TcpStream, health: &OpsHealth) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain", "only GET is served\n");
        return;
    }
    match path {
        "/metrics" => {
            let agg = crate::snapshot_aggregates().unwrap_or_default();
            let body = render_prometheus(&agg);
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        "/healthz" => {
            let detail = health.detail();
            if health.healthy() {
                respond(&mut stream, "200 OK", "text/plain", &format!("ok: {detail}\n"));
            } else {
                respond(
                    &mut stream,
                    "503 Service Unavailable",
                    "text/plain",
                    &format!("degraded: {detail}\n"),
                );
            }
        }
        "/traces" => {
            let mut body = String::new();
            if let Some(rec) = crate::flight::recorder() {
                for entry in rec.drain() {
                    body.push_str(&entry.to_json_line());
                    body.push('\n');
                }
            }
            respond(&mut stream, "200 OK", "application/x-ndjson", &body);
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "unknown path\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

/// Maps a dotted metric name to the Prometheus charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value the way the exposition format spells
/// non-finite floats.
fn metric_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders aggregated metrics in Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms
/// as cumulative `_bucket{le=...}` series plus `_sum`/`_count`, with
/// `_p50`/`_p95`/`_p99` quantile gauges alongside for dashboards that
/// don't compute `histogram_quantile`.
pub fn render_prometheus(agg: &Aggregates) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, v) in &agg.counters {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {v}");
    }
    for (name, v) in &agg.gauges {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {}", metric_value(*v));
    }
    for (name, h) in &agg.histograms {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cum = 0u64;
        for (le, c) in h.nonzero_buckets() {
            cum += c;
            let _ = writeln!(out, "{m}_bucket{{le=\"{}\"}} {cum}", metric_value(le));
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{m}_sum {}", metric_value(h.sum()));
        let _ = writeln!(out, "{m}_count {}", h.count());
        for (suffix, q) in [("p50", h.p50()), ("p95", h.p95()), ("p99", h.p99())] {
            let _ = writeln!(out, "# TYPE {m}_{suffix} gauge");
            let _ = writeln!(out, "{m}_{suffix} {}", metric_value(q));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Offline exposition validation (the `check.sh ops` gate)
// ---------------------------------------------------------------------

fn parse_sample_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse::<f64>().map_err(|_| format!("bad sample value {other:?}")),
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

struct HistState {
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validates Prometheus text exposition output offline: `# TYPE` lines
/// declare a known kind, every sample parses as `name[{labels}] value`
/// with a legal metric name, and each declared histogram has ascending
/// `le` edges with non-decreasing cumulative counts ending at a `+Inf`
/// bucket that equals `_count`, plus a `_sum`. Returns the number of
/// sample lines.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    use std::collections::BTreeMap;
    let mut histograms: BTreeMap<String, HistState> = BTreeMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts.next().ok_or(format!("line {n}: TYPE without a name"))?;
                let kind = parts.next().ok_or(format!("line {n}: TYPE without a kind"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: illegal metric name {name:?}"));
                }
                match kind {
                    "counter" | "gauge" | "summary" | "untyped" => {}
                    "histogram" => {
                        histograms.insert(
                            name.to_string(),
                            HistState { buckets: Vec::new(), sum: None, count: None },
                        );
                    }
                    other => return Err(format!("line {n}: unknown TYPE kind {other:?}")),
                }
            }
            continue;
        }
        // Sample: name[{labels}] value
        let (name_part, value_part) = match line.find(|c: char| c.is_whitespace()) {
            Some(split) if !line[..split].contains('{') => {
                (&line[..split], line[split..].trim())
            }
            _ => {
                // Labels may contain spaces inside quotes; split after '}'.
                let close = line.find('}').ok_or(format!("line {n}: unparseable sample"))?;
                (&line[..close + 1], line[close + 1..].trim())
            }
        };
        let value = parse_sample_value(value_part).map_err(|e| format!("line {n}: {e}"))?;
        let (bare, labels) = match name_part.find('{') {
            Some(open) => {
                if !name_part.ends_with('}') {
                    return Err(format!("line {n}: unterminated label set"));
                }
                (&name_part[..open], Some(&name_part[open + 1..name_part.len() - 1]))
            }
            None => (name_part, None),
        };
        if !valid_metric_name(bare) {
            return Err(format!("line {n}: illegal metric name {bare:?}"));
        }
        samples += 1;

        if let Some(hist_name) = bare.strip_suffix("_bucket") {
            if let Some(state) = histograms.get_mut(hist_name) {
                let labels = labels.ok_or(format!("line {n}: _bucket without labels"))?;
                let le_text = labels
                    .split(',')
                    .find_map(|kv| kv.trim().strip_prefix("le="))
                    .ok_or(format!("line {n}: _bucket without an le label"))?
                    .trim_matches('"');
                let le = parse_sample_value(le_text).map_err(|e| format!("line {n}: {e}"))?;
                state.buckets.push((le, value));
                continue;
            }
        }
        if let Some(hist_name) = bare.strip_suffix("_sum") {
            if let Some(state) = histograms.get_mut(hist_name) {
                state.sum = Some(value);
                continue;
            }
        }
        if let Some(hist_name) = bare.strip_suffix("_count") {
            if let Some(state) = histograms.get_mut(hist_name) {
                state.count = Some(value);
                continue;
            }
        }
    }
    for (name, state) in &histograms {
        if state.buckets.is_empty() {
            return Err(format!("histogram {name} has no buckets"));
        }
        for w in state.buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("histogram {name}: le edges not ascending"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {name}: cumulative counts decreased"));
            }
        }
        let (last_le, last_cum) = state.buckets[state.buckets.len() - 1];
        if last_le != f64::INFINITY {
            return Err(format!("histogram {name}: final bucket is not le=\"+Inf\""));
        }
        let count = state.count.ok_or(format!("histogram {name}: missing _count"))?;
        if state.sum.is_none() {
            return Err(format!("histogram {name}: missing _sum"));
        }
        if last_cum != count {
            return Err(format!(
                "histogram {name}: +Inf bucket {last_cum} disagrees with _count {count}"
            ));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Recorder};

    fn sample_aggregates() -> Aggregates {
        let rec = InMemoryRecorder::default();
        rec.counter("engine.inserts", 42);
        rec.counter("engine.linear_fallbacks", 3);
        rec.gauge("soak.drift_p95", 0.125);
        for i in 1..=200 {
            rec.observe("engine.query.mih", i as f64 * 1e-5);
        }
        rec.aggregates()
    }

    #[test]
    fn exposition_round_trips_through_the_validator() {
        let text = render_prometheus(&sample_aggregates());
        let samples = validate_exposition(&text).expect("valid exposition");
        assert!(samples >= 8, "expected counters+gauge+histogram series, got {samples}:\n{text}");
        assert!(text.contains("# TYPE engine_inserts counter"), "{text}");
        assert!(text.contains("engine_inserts 42"), "{text}");
        assert!(text.contains("# TYPE soak_drift_p95 gauge"), "{text}");
        assert!(text.contains("# TYPE engine_query_mih histogram"), "{text}");
        assert!(text.contains("engine_query_mih_bucket{le=\"+Inf\"} 200"), "{text}");
        assert!(text.contains("engine_query_mih_count 200"), "{text}");
        assert!(text.contains("engine_query_mih_p99"), "{text}");
    }

    #[test]
    fn empty_aggregates_render_an_empty_valid_exposition() {
        let text = render_prometheus(&Aggregates::default());
        assert_eq!(validate_exposition(&text), Ok(0));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("# TYPE x mystery\n").is_err());
        assert!(validate_exposition("9bad 1\n").is_err());
        assert!(validate_exposition("name notanumber\n").is_err());
        // Histogram whose +Inf bucket disagrees with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 9\n";
        assert!(validate_exposition(bad).unwrap_err().contains("disagrees"));
        // Histogram missing the +Inf bucket entirely.
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        // Cumulative counts must not decrease.
        let dec = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(dec).unwrap_err().contains("decreased"));
    }

    #[test]
    fn server_serves_metrics_health_and_traces() {
        use std::io::{Read as _, Write as _};
        let health = OpsHealth::new();
        let mut server = OpsServer::start(0, health.clone()).expect("bind ephemeral");
        let addr = server.addr();

        let get = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).expect("connect");
            let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .expect("write request");
            let mut text = String::new();
            let _ = conn.read_to_string(&mut text);
            text
        };

        // Health flips between ok and degraded.
        assert!(get("/healthz").starts_with("HTTP/1.1 200"));
        health.set(false, "drift over threshold");
        let resp = get("/healthz");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("drift over threshold"), "{resp}");
        health.set(true, "tick 5");
        assert!(get("/healthz").starts_with("HTTP/1.1 200"));

        // /metrics renders whatever recorder is installed; with none on
        // this thread it is an empty, still-valid exposition.
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        let body = metrics.split("\r\n\r\n").nth(1).expect("body");
        assert!(validate_exposition(body).is_ok(), "{body}");

        // Unknown path and bad method.
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
        let traces = get("/traces");
        assert!(traces.starts_with("HTTP/1.1 200"), "{traces}");

        server.shutdown();
        // Idempotent shutdown (also exercised again on drop).
        server.shutdown();
    }
}
