//! JSONL export sink and the hand-rolled parser that validates it.
//!
//! No `serde` in an offline workspace, so both directions are written by
//! hand: [`JsonlRecorder`] streams events and spans as they happen and
//! appends aggregated counter/gauge/histogram summary lines on flush;
//! [`parse_json`] / [`validate_record`] read the lines back so the
//! `check.sh obs` round-trip gate can assert the schema without external
//! tooling.
//!
//! ## Line schema
//!
//! Every line is one JSON object with a `"kind"` discriminator:
//!
//! ```json
//! {"kind":"event","name":"train.rollback","fields":{"epoch":3,"kind":"loss spike"}}
//! {"kind":"span","path":"train/epoch","seconds":0.251,"fields":{"loss":0.5}}
//! {"kind":"counter","name":"engine.inserts","value":128}
//! {"kind":"gauge","name":"train.val_hr10","value":0.625}
//! {"kind":"histogram","name":"engine.query.mih","count":500,"p50":0.0001, ...}
//! ```
//!
//! Metric lines are cumulative snapshots: on repeated flushes the last
//! occurrence of a name wins.

use crate::memory::Aggregates;
use crate::{olock, Field, Recorder, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Escapes `s` into `out` as JSON string contents (no surrounding
/// quotes). Shared with the flight recorder's dump writer so both
/// sinks emit byte-identical line schemas.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
}

/// Writes an f64 as a JSON value. JSON has no NaN/inf literals, so
/// non-finite values become `null` — the reader treats them as absent.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => push_f64(out, *x),
        Value::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(x) => {
            out.push('"');
            escape_into(out, x);
            out.push('"');
        }
    }
}

pub(crate) fn push_fields(out: &mut String, fields: &[Field]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        push_value(out, v);
    }
    out.push('}');
}

/// A recorder that streams events and spans to a JSONL file and keeps
/// counters/gauges/histograms aggregated in memory, appending them as
/// summary lines on [`flush`](Recorder::flush) (and on drop).
///
/// Enabled from bench binaries via `OBS_JSONL=path` — see
/// [`init_from_env`](crate::init_from_env).
pub struct JsonlRecorder {
    out: Mutex<BufWriter<File>>,
    agg: Mutex<Aggregates>,
}

impl JsonlRecorder {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder { out: Mutex::new(BufWriter::new(file)), agg: Mutex::new(Aggregates::default()) })
    }

    /// A snapshot of everything aggregated so far (streamed events and
    /// spans are retained here too, so summaries match the file).
    pub fn aggregates(&self) -> Aggregates {
        olock(&self.agg).clone()
    }

    /// Human-readable summary of the aggregated state.
    pub fn summary(&self) -> String {
        olock(&self.agg).summary()
    }

    /// Appends one line. IO failures are swallowed: losing telemetry
    /// must never take the instrumented program down with it.
    fn write_line(&self, line: &str) {
        let mut out = olock(&self.out);
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }
}

impl Recorder for JsonlRecorder {
    fn counter(&self, name: &str, delta: u64) {
        olock(&self.agg).apply_counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        olock(&self.agg).apply_gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        olock(&self.agg).apply_observe(name, value);
    }

    fn event(&self, name: &str, fields: &[Field]) {
        olock(&self.agg).apply_event(name, fields);
        let mut line = String::from("{\"kind\":\"event\",\"name\":\"");
        escape_into(&mut line, name);
        line.push_str("\",\"fields\":");
        push_fields(&mut line, fields);
        line.push('}');
        self.write_line(&line);
    }

    fn span_end(&self, path: &str, seconds: f64, fields: &[Field]) {
        olock(&self.agg).apply_span(path, seconds, fields);
        let mut line = String::from("{\"kind\":\"span\",\"path\":\"");
        escape_into(&mut line, path);
        line.push_str("\",\"seconds\":");
        push_f64(&mut line, seconds);
        line.push_str(",\"fields\":");
        push_fields(&mut line, fields);
        line.push('}');
        self.write_line(&line);
    }

    fn flush(&self) {
        let snapshot = olock(&self.agg).clone();
        for (name, v) in &snapshot.counters {
            let mut line = String::from("{\"kind\":\"counter\",\"name\":\"");
            escape_into(&mut line, name);
            let _ = write!(line, "\",\"value\":{v}}}");
            self.write_line(&line);
        }
        for (name, v) in &snapshot.gauges {
            let mut line = String::from("{\"kind\":\"gauge\",\"name\":\"");
            escape_into(&mut line, name);
            line.push_str("\",\"value\":");
            push_f64(&mut line, *v);
            line.push('}');
            self.write_line(&line);
        }
        for (name, h) in &snapshot.histograms {
            let mut line = String::from("{\"kind\":\"histogram\",\"name\":\"");
            escape_into(&mut line, name);
            let _ = write!(line, "\",\"count\":{}", h.count());
            for (key, v) in [
                ("p50", h.p50()),
                ("p95", h.p95()),
                ("p99", h.p99()),
                ("mean", h.mean()),
                ("min", h.min()),
                ("max", h.max()),
            ] {
                let _ = write!(line, ",\"{key}\":");
                push_f64(&mut line, v);
            }
            let _ = write!(line, ",\"non_finite\":{}}}", h.non_finite());
            self.write_line(&line);
        }
        let _ = olock(&self.out).flush();
    }

    fn aggregates_snapshot(&self) -> Option<Aggregates> {
        Some(self.aggregates())
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        Recorder::flush(self);
    }
}

// ---------------------------------------------------------------------
// Reading (round-trip validation)
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough structure for the round-trip gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates never appear in our own output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Parses one JSON document (the subset the exporter emits: objects,
/// arrays, strings, numbers, booleans, null).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// What [`validate_record`] extracted from a well-formed line.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSummary {
    /// The `"kind"` discriminator: `event`, `span`, `counter`, `gauge`,
    /// or `histogram`.
    pub kind: String,
    /// The record's name (the `/`-joined path for spans).
    pub name: String,
}

fn require_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn require_num(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric field '{key}'"))
}

/// Parses one exporter line and checks it against the schema for its
/// `"kind"`. This is the `check.sh obs` round-trip gate: export → parse
/// → assert schema.
pub fn validate_record(line: &str) -> Result<RecordSummary, String> {
    let doc = parse_json(line)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("record is not a JSON object".to_string());
    }
    let kind = require_str(&doc, "kind")?;
    let name = match kind.as_str() {
        "event" => {
            let name = require_str(&doc, "name")?;
            if !matches!(doc.get("fields"), Some(Json::Obj(_))) {
                return Err("event record missing 'fields' object".to_string());
            }
            name
        }
        "span" => {
            let path = require_str(&doc, "path")?;
            let seconds = require_num(&doc, "seconds")?;
            if seconds < 0.0 {
                return Err("span has negative duration".to_string());
            }
            if !matches!(doc.get("fields"), Some(Json::Obj(_))) {
                return Err("span record missing 'fields' object".to_string());
            }
            path
        }
        "counter" | "gauge" => {
            let name = require_str(&doc, "name")?;
            require_num(&doc, "value")?;
            name
        }
        "histogram" => {
            let name = require_str(&doc, "name")?;
            for key in ["count", "p50", "p95", "p99", "mean", "min", "max", "non_finite"] {
                require_num(&doc, key)?;
            }
            name
        }
        other => return Err(format!("unknown record kind '{other}'")),
    };
    Ok(RecordSummary { kind, name })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("traj-obs-{tag}-{}-{n}.jsonl", std::process::id()))
    }

    #[test]
    fn export_then_parse_round_trips_every_kind() {
        let path = temp_path("roundtrip");
        let rec = JsonlRecorder::create(&path).expect("create jsonl");
        rec.counter("engine.inserts", 7);
        rec.gauge("train.val_hr10", 0.625);
        for i in 1..=50 {
            rec.observe("engine.query.mih", i as f64 * 1e-5);
        }
        rec.event(
            "train.rollback",
            &[("epoch", 3u64.into()), ("kind", "loss spike".into()), ("lr_after", 5e-4f64.into())],
        );
        rec.span_end("train/epoch", 0.25, &[("loss", 0.5f64.into())]);
        Recorder::flush(&rec);

        let text = std::fs::read_to_string(&path).expect("read back");
        let mut kinds = std::collections::BTreeSet::new();
        for line in text.lines() {
            let rs = validate_record(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            kinds.insert(rs.kind);
        }
        for expected in ["event", "span", "counter", "gauge", "histogram"] {
            assert!(kinds.contains(expected), "missing kind {expected} in {text}");
        }

        // The event line carries its fields intact.
        let event_line = text
            .lines()
            .find(|l| l.contains("\"kind\":\"event\""))
            .expect("event line present");
        let doc = parse_json(event_line).expect("parse event");
        let fields = doc.get("fields").expect("fields");
        assert_eq!(fields.get("epoch").and_then(Json::as_f64), Some(3.0));
        assert_eq!(fields.get("kind").and_then(Json::as_str), Some("loss spike"));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strings_with_special_characters_survive() {
        let path = temp_path("escape");
        let rec = JsonlRecorder::create(&path).expect("create jsonl");
        let nasty = "quote \" backslash \\ newline \n tab \t unicode é control \u{1}";
        rec.event("data.note", &[("msg", nasty.into())]);
        Recorder::flush(&rec);

        let text = std::fs::read_to_string(&path).expect("read back");
        let line = text.lines().next().expect("one line");
        let doc = parse_json(line).expect("parse");
        assert_eq!(
            doc.get("fields").and_then(|f| f.get("msg")).and_then(Json::as_str),
            Some(nasty)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let path = temp_path("nonfinite");
        let rec = JsonlRecorder::create(&path).expect("create jsonl");
        rec.event("train.diverged", &[("loss", f64::NAN.into())]);
        Recorder::flush(&rec);
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc = parse_json(text.lines().next().expect("line")).expect("parse");
        assert_eq!(doc.get("fields").and_then(|f| f.get("loss")), Some(&Json::Null));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parser_handles_the_json_basics() {
        assert_eq!(parse_json("3.5e2"), Ok(Json::Num(350.0)));
        assert_eq!(parse_json("-7"), Ok(Json::Num(-7.0)));
        assert_eq!(parse_json("true"), Ok(Json::Bool(true)));
        assert_eq!(parse_json("null"), Ok(Json::Null));
        assert_eq!(
            parse_json("[1, \"two\", {\"three\": 3}]"),
            Ok(Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("two".to_string()),
                Json::Obj([("three".to_string(), Json::Num(3.0))].into_iter().collect()),
            ]))
        );
        assert_eq!(parse_json("\"\\u0041\\n\""), Ok(Json::Str("A\n".to_string())));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("{\"open\": ").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("'single'").is_err());
        assert!(parse_json("").is_err());
        assert!(validate_record("{\"kind\":\"mystery\",\"name\":\"x\"}").is_err());
        assert!(validate_record("{\"name\":\"missing kind\"}").is_err());
        assert!(validate_record("{\"kind\":\"counter\",\"name\":\"c\"}").is_err());
        assert!(
            validate_record("{\"kind\":\"span\",\"path\":\"p\",\"seconds\":-1,\"fields\":{}}")
                .is_err()
        );
    }
}
