//! Windowed trend detection over a metric series.
//!
//! Drift detection in the soak loop needs exactly one statistical
//! primitive: "has this metric's recent mean dropped (or risen)
//! relative to a frozen baseline?" — applied to the validation HR@10
//! series and to per-strategy latency aggregates. [`TrendWindow`]
//! keeps a bounded history, freezes the first `baseline_len` samples
//! as the reference, and compares the mean of the most recent
//! `recent_len` samples against it. No exponential smoothing, no
//! tunable forgetting factor: the soak loop is deterministic and its
//! detector must be too.

/// A bounded metric series with a frozen baseline prefix.
#[derive(Debug, Clone)]
pub struct TrendWindow {
    baseline_len: usize,
    recent_len: usize,
    baseline: Vec<f64>,
    recent: Vec<f64>,
    pushed: u64,
}

impl TrendWindow {
    /// A window whose first `baseline_len` finite samples become the
    /// frozen reference and whose detection window covers the most
    /// recent `recent_len` samples. Both must be at least 1.
    pub fn new(baseline_len: usize, recent_len: usize) -> Self {
        TrendWindow {
            baseline_len: baseline_len.max(1),
            recent_len: recent_len.max(1),
            baseline: Vec::new(),
            recent: Vec::new(),
            pushed: 0,
        }
    }

    /// Feeds one sample. Non-finite samples are counted but excluded
    /// from both windows — a NaN metric must never poison the detector.
    pub fn push(&mut self, v: f64) {
        self.pushed += 1;
        if !v.is_finite() {
            return;
        }
        if self.baseline.len() < self.baseline_len {
            self.baseline.push(v);
            return;
        }
        self.recent.push(v);
        if self.recent.len() > self.recent_len {
            self.recent.remove(0);
        }
    }

    /// Total samples pushed (finite or not).
    pub fn samples(&self) -> u64 {
        self.pushed
    }

    /// True once the baseline is frozen and the recent window is full —
    /// before that, [`relative_drop`](TrendWindow::relative_drop)
    /// reports `0.0` so nothing fires on a cold detector.
    pub fn warmed_up(&self) -> bool {
        self.baseline.len() >= self.baseline_len && self.recent.len() >= self.recent_len
    }

    /// Mean of the frozen baseline prefix (`None` before any sample).
    pub fn baseline_mean(&self) -> Option<f64> {
        (!self.baseline.is_empty())
            .then(|| self.baseline.iter().sum::<f64>() / self.baseline.len() as f64)
    }

    /// Mean of the recent window (`None` while empty).
    pub fn recent_mean(&self) -> Option<f64> {
        (!self.recent.is_empty())
            .then(|| self.recent.iter().sum::<f64>() / self.recent.len() as f64)
    }

    /// Relative drop of the recent mean below the baseline mean, in
    /// `[0, 1]`-ish units: `(baseline - recent) / baseline`. Positive
    /// means the metric fell (bad for HR@10), negative means it rose.
    /// Returns `0.0` until [`warmed_up`](TrendWindow::warmed_up), and
    /// when the baseline mean is not usable as a denominator.
    pub fn relative_drop(&self) -> f64 {
        if !self.warmed_up() {
            return 0.0;
        }
        match (self.baseline_mean(), self.recent_mean()) {
            (Some(b), Some(r)) if b.abs() > f64::EPSILON => (b - r) / b,
            _ => 0.0,
        }
    }

    /// True when the recent mean sits at least `threshold` (relative)
    /// below the baseline — the drift trigger. Never fires before
    /// [`warmed_up`](TrendWindow::warmed_up), whatever the threshold.
    pub fn dropped_by(&self, threshold: f64) -> bool {
        self.warmed_up() && self.relative_drop() >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_detector_never_fires() {
        let mut w = TrendWindow::new(3, 2);
        assert!(!w.dropped_by(0.0));
        w.push(1.0);
        w.push(1.0);
        assert!(!w.warmed_up());
        assert_eq!(w.relative_drop(), 0.0);
    }

    #[test]
    fn detects_a_relative_drop() {
        let mut w = TrendWindow::new(4, 2);
        for _ in 0..4 {
            w.push(0.8);
        }
        w.push(0.8);
        w.push(0.8);
        assert!(w.warmed_up());
        assert!(w.relative_drop().abs() < 1e-12);
        assert!(!w.dropped_by(0.1));
        // The metric collapses: recent window slides onto the bad
        // samples.
        w.push(0.4);
        w.push(0.4);
        assert!((w.relative_drop() - 0.5).abs() < 1e-12);
        assert!(w.dropped_by(0.25));
    }

    #[test]
    fn baseline_is_frozen_against_slow_decay() {
        // A slow continuous decay must still trip the detector —
        // that is exactly what a moving baseline would hide.
        let mut w = TrendWindow::new(3, 3);
        let mut v = 1.0;
        for _ in 0..40 {
            w.push(v);
            v *= 0.93;
        }
        assert!(w.dropped_by(0.5));
    }

    #[test]
    fn improvement_reads_negative() {
        let mut w = TrendWindow::new(2, 2);
        w.push(0.5);
        w.push(0.5);
        w.push(0.9);
        w.push(0.9);
        assert!(w.relative_drop() < 0.0);
        assert!(!w.dropped_by(0.01));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut w = TrendWindow::new(2, 2);
        w.push(1.0);
        w.push(f64::NAN);
        w.push(1.0);
        w.push(f64::INFINITY);
        w.push(0.5);
        w.push(0.5);
        assert_eq!(w.samples(), 6);
        assert!(w.warmed_up());
        assert!((w.relative_drop() - 0.5).abs() < 1e-12);
    }
}
