//! Tail-exemplar flight recorder: a lock-free ring buffer of recent
//! slow-query traces, force-dumped to JSONL when the engine degrades,
//! a refresh fails, or a panic poisons an instrumented lock.
//!
//! Aggregate histograms (PR 5) answer "what is p99"; the flight
//! recorder answers "show me the last N queries that *were* the p99".
//! Producers call [`offer`] with the query's wall-clock seconds and a
//! closure that builds the trace fields; the closure only runs when the
//! latency lands at or above the configured tail bucket, so fast
//! queries pay one atomic load and one bucket comparison.
//!
//! The ring is a fixed array of `AtomicPtr` slots. Capture swaps a
//! boxed entry in and frees whatever it displaced; drain swaps nulls
//! in and takes ownership of what it finds. Neither path ever blocks a
//! query thread on a lock — only [`force_dump`] serializes (via
//! `try_lock`, so a dump contended by another dump is skipped rather
//! than waited for, which keeps the poison path re-entrancy safe).

use crate::hist::bucket_of;
use crate::jsonl::{escape_into, parse_json, push_fields, validate_record, Json};
use crate::Field;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Configuration for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Ring capacity: how many tail exemplars are retained before the
    /// oldest is overwritten. Clamped to at least 1.
    pub capacity: usize,
    /// Latency threshold in seconds. A query qualifies for capture when
    /// its latency lands in the same log-histogram bucket as this value
    /// or higher (bucket-granularity comparison, matching how the
    /// aggregate histograms would classify it). `0.0` captures
    /// everything.
    pub tail_threshold_seconds: f64,
    /// Where [`force_dump`] appends JSONL; `None` disables dumping
    /// (the ring still captures and [`drain`](FlightRecorder::drain)
    /// still works, e.g. for the `/traces` endpoint).
    pub dump_path: Option<PathBuf>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { capacity: 64, tail_threshold_seconds: 0.0, dump_path: None }
    }
}

/// One captured trace: a named event plus its structured fields, stamped
/// with a process-wide capture sequence number.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// Monotone capture sequence (process-wide per recorder); drains
    /// and dumps are ordered by this.
    pub seq: u64,
    /// Event name, e.g. `flight.trace`.
    pub name: &'static str,
    /// Structured trace fields. The recorder appends `flight_seq` and
    /// `seconds` at capture time.
    pub fields: Vec<Field>,
}

impl FlightEntry {
    /// Renders the entry as one JSONL event line, byte-compatible with
    /// the [`JsonlRecorder`](crate::JsonlRecorder) event schema so the
    /// same validator reads both.
    pub fn to_json_line(&self) -> String {
        let mut line = String::from("{\"kind\":\"event\",\"name\":\"");
        escape_into(&mut line, self.name);
        line.push_str("\",\"fields\":");
        push_fields(&mut line, &self.fields);
        line.push('}');
        line
    }
}

/// The lock-free ring buffer of tail exemplars. Install one globally
/// with [`install`]; producers reach it through [`offer`].
pub struct FlightRecorder {
    slots: Vec<AtomicPtr<FlightEntry>>,
    head: AtomicUsize,
    seq: AtomicU64,
    threshold_bucket: usize,
    captured: AtomicU64,
    dropped: AtomicU64,
    dump_path: Option<PathBuf>,
    dump_file: Mutex<()>,
}

impl FlightRecorder {
    /// Builds a recorder from `cfg` (capacity clamped to at least 1,
    /// non-finite/negative thresholds treated as 0).
    pub fn new(cfg: FlightConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        let threshold = if cfg.tail_threshold_seconds.is_finite() && cfg.tail_threshold_seconds > 0.0
        {
            cfg.tail_threshold_seconds
        } else {
            0.0
        };
        FlightRecorder {
            slots: (0..capacity).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
            head: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            threshold_bucket: if threshold == 0.0 { 0 } else { bucket_of(threshold) },
            captured: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dump_path: cfg.dump_path,
            dump_file: Mutex::new(()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries captured so far (including ones since overwritten).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Entries overwritten before ever being drained or dumped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Whether a latency of `seconds` lands at or above the tail
    /// threshold bucket (non-finite and negative latencies never
    /// qualify — they are quarantined by the histograms too).
    pub fn qualifies(&self, seconds: f64) -> bool {
        seconds.is_finite() && seconds >= 0.0 && bucket_of(seconds) >= self.threshold_bucket
    }

    /// Captures one trace if `seconds` qualifies; `build` runs only on
    /// the capture path. Returns whether the entry was retained.
    pub fn offer(&self, seconds: f64, build: impl FnOnce() -> (&'static str, Vec<Field>)) -> bool {
        if !self.qualifies(seconds) {
            return false;
        }
        let (name, mut fields) = build();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        fields.push(("flight_seq", seq.into()));
        fields.push(("seconds", seconds.into()));
        let entry = Box::into_raw(Box::new(FlightEntry { seq, name, fields }));
        let idx = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let old = self.slots[idx].swap(entry, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: the swap transferred sole ownership of `old` to
            // this thread; it was created by Box::into_raw in this
            // function (or is null, excluded above) and no other thread
            // can reach it after the swap.
            drop(unsafe { Box::from_raw(old) });
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.captured.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Takes every retained entry out of the ring, oldest first.
    pub fn drain(&self) -> Vec<FlightEntry> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: same ownership transfer as in `offer` — the
                // swap makes this thread the unique owner of `p`.
                out.push(*unsafe { Box::from_raw(p) });
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Poison-proof, non-blocking acquisition of the dump-file lock.
    /// `None` means another dump is in flight (skip, never wait: the
    /// caller may be inside a panic path).
    fn try_dump_lock(&self) -> Option<MutexGuard<'_, ()>> {
        match self.dump_file.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    /// Drains the ring and appends the entries to the configured dump
    /// path as JSONL, preceded by a `flight.dump` header event carrying
    /// `reason` and the entry count. Returns the number of trace
    /// entries written (0 when no path is configured, the ring is
    /// empty, another dump holds the lock, or IO fails — a failed dump
    /// must never take the process down).
    pub fn force_dump(&self, reason: &str) -> usize {
        let Some(path) = &self.dump_path else { return 0 };
        let Some(_guard) = self.try_dump_lock() else { return 0 };
        let entries = self.drain();
        if entries.is_empty() {
            return 0;
        }
        let mut header = String::from("{\"kind\":\"event\",\"name\":\"flight.dump\",\"fields\":");
        push_fields(
            &mut header,
            &[("reason", reason.into()), ("entries", entries.len().into())],
        );
        header.push('}');
        let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(path)
        else {
            return 0;
        };
        let mut body = header;
        body.push('\n');
        for e in &entries {
            body.push_str(&e.to_json_line());
            body.push('\n');
        }
        match file.write_all(body.as_bytes()) {
            Ok(()) => entries.len(),
            Err(_) => 0,
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        for slot in &self.slots {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: `&mut self` guarantees no concurrent access;
                // every non-null pointer is an unclaimed Box from
                // `offer`.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Global installation (mirrors the recorder slot in lib.rs)
// ---------------------------------------------------------------------

/// Whether a flight recorder is installed: one relaxed load, the
/// disabled fast path for [`offer`].
static FLIGHT_ACTIVE: AtomicUsize = AtomicUsize::new(0);

static FLIGHT: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);

/// Re-entrancy guard for [`poison_dump`]: a dump triggered by lock
/// poison must not recurse into another dump if the dump path itself
/// trips a poisoned lock.
static DUMPING: AtomicBool = AtomicBool::new(false);

/// Poison-proof read of the global flight slot; recovery is sound
/// because the slot only ever holds a whole `Option<Arc<..>>` replaced
/// atomically under the write lock.
fn fread() -> std::sync::RwLockReadGuard<'static, Option<Arc<FlightRecorder>>> {
    match FLIGHT.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-proof write of the global flight slot; see [`fread`].
fn fwrite() -> std::sync::RwLockWriteGuard<'static, Option<Arc<FlightRecorder>>> {
    match FLIGHT.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs a flight recorder process-wide, replacing any previous one,
/// and returns a handle to it (for draining and stats).
pub fn install(cfg: FlightConfig) -> Arc<FlightRecorder> {
    let rec = Arc::new(FlightRecorder::new(cfg));
    let mut g = fwrite();
    if g.is_none() {
        FLIGHT_ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
    *g = Some(rec.clone());
    rec
}

/// Removes the process-wide flight recorder; [`offer`] returns to the
/// one-atomic-load no-op path.
pub fn uninstall() {
    let mut g = fwrite();
    if g.take().is_some() {
        FLIGHT_ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// True when a flight recorder is installed. One relaxed atomic load —
/// safe on the hottest query path.
#[inline]
pub fn installed() -> bool {
    FLIGHT_ACTIVE.load(Ordering::Relaxed) != 0
}

/// The installed flight recorder, if any.
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    if !installed() {
        return None;
    }
    fread().clone()
}

/// Offers a trace to the installed flight recorder. No-op (one relaxed
/// load) when none is installed; `build` runs only when the latency
/// qualifies for capture.
#[inline]
pub fn offer(seconds: f64, build: impl FnOnce() -> (&'static str, Vec<Field>)) {
    if !installed() {
        return;
    }
    if let Some(rec) = recorder() {
        rec.offer(seconds, build);
    }
}

/// Force-dumps the installed flight recorder (see
/// [`FlightRecorder::force_dump`]). Returns the number of entries
/// written; 0 when no recorder is installed.
pub fn force_dump(reason: &str) -> usize {
    match recorder() {
        Some(rec) => rec.force_dump(reason),
        None => 0,
    }
}

/// The panic/poison hook: force-dumps with a re-entrancy guard so a
/// poisoned lock *inside* the dump path cannot recurse. Called from
/// the poison arms of the workspace's poison-proof lock helpers.
pub fn poison_dump(context: &str) {
    if DUMPING.swap(true, Ordering::SeqCst) {
        return;
    }
    force_dump(context);
    DUMPING.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Offline dump validation
// ---------------------------------------------------------------------

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get("fields")
        .and_then(|f| f.get(key))
        .and_then(Json::as_str)
        .ok_or_else(|| format!("trace missing string field '{key}'"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    let v = doc
        .get("fields")
        .and_then(|f| f.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("trace missing numeric field '{key}'"))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field '{key}' = {v} is not a nonnegative integer"));
    }
    Ok(v as u64) // lint: allow(lossy-cast) — checked nonnegative integer above
}

fn parse_u64_list(text: &str, key: &str) -> Result<Vec<u64>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| t.parse::<u64>().map_err(|_| format!("field '{key}' has non-integer item {t:?}")))
        .collect()
}

/// Offline self-validation of a flight-recorder dump file: every line
/// is a well-formed `flight.dump` header or `flight.trace` event; trace
/// query ids are unique; step clocks are strictly monotone from 0; the
/// per-shard lists agree with the shard count and the candidate total;
/// and per-shard publish seqs are non-decreasing across traces from the
/// same engine/shard-count group. Returns the number of trace lines.
pub fn validate_flight_dump(text: &str) -> Result<usize, String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut ids = BTreeSet::new();
    // (engine, instance, shard_count) -> per-shard last-seen publish
    // seq, in flight_seq order (dumps append drains in seq order). The
    // optional `instance` field separates traces from unrelated engine
    // instances whose seqs would otherwise conflate.
    let mut last_seqs: BTreeMap<(String, u64, usize), Vec<u64>> = BTreeMap::new();
    let mut traces = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let rs = validate_record(line).map_err(|e| format!("line {n}: {e}"))?;
        if rs.kind != "event" {
            return Err(format!("line {n}: unexpected kind '{}' in flight dump", rs.kind));
        }
        match rs.name.as_str() {
            "flight.dump" => continue,
            "flight.trace" => {}
            other => return Err(format!("line {n}: unexpected event '{other}' in flight dump")),
        }
        traces += 1;
        let doc = parse_json(line).map_err(|e| format!("line {n}: {e}"))?;
        let id = field_u64(&doc, "query_id").map_err(|e| format!("line {n}: {e}"))?;
        if !ids.insert(id) {
            return Err(format!("line {n}: duplicate query_id {id}"));
        }
        let steps = field_str(&doc, "steps").map_err(|e| format!("line {n}: {e}"))?;
        let mut prev_clock: Option<u64> = None;
        for step in steps.split(',').filter(|s| !s.is_empty()) {
            let (clock, label) = step
                .split_once(':')
                .ok_or_else(|| format!("line {n}: malformed step {step:?}"))?;
            if label.is_empty() {
                return Err(format!("line {n}: step {step:?} has an empty label"));
            }
            let clock: u64 = clock
                .parse()
                .map_err(|_| format!("line {n}: step {step:?} has a non-integer clock"))?;
            match prev_clock {
                None if clock != 0 => {
                    return Err(format!("line {n}: step clock starts at {clock}, not 0"));
                }
                Some(p) if clock <= p => {
                    return Err(format!("line {n}: step clocks not strictly monotone ({p} then {clock})"));
                }
                _ => {}
            }
            prev_clock = Some(clock);
        }
        if prev_clock.is_none() {
            return Err(format!("line {n}: trace has no steps"));
        }
        let engine = field_str(&doc, "engine").map_err(|e| format!("line {n}: {e}"))?.to_string();
        let shards = field_u64(&doc, "shards").map_err(|e| format!("line {n}: {e}"))? as usize; // lint: allow(lossy-cast) — shard counts are tiny
        let seqs = parse_u64_list(field_str(&doc, "shard_seqs").map_err(|e| format!("line {n}: {e}"))?, "shard_seqs")
            .map_err(|e| format!("line {n}: {e}"))?;
        let gens = parse_u64_list(field_str(&doc, "shard_gens").map_err(|e| format!("line {n}: {e}"))?, "shard_gens")
            .map_err(|e| format!("line {n}: {e}"))?;
        let cands = parse_u64_list(
            field_str(&doc, "shard_candidates").map_err(|e| format!("line {n}: {e}"))?,
            "shard_candidates",
        )
        .map_err(|e| format!("line {n}: {e}"))?;
        for (key, len) in [("shard_seqs", seqs.len()), ("shard_gens", gens.len()), ("shard_candidates", cands.len())] {
            if len != shards {
                return Err(format!("line {n}: {key} has {len} items for {shards} shards"));
            }
        }
        if gens.contains(&0) {
            return Err(format!("line {n}: shard generation 0 (generations start at 1)"));
        }
        let total = field_u64(&doc, "candidates").map_err(|e| format!("line {n}: {e}"))?;
        let sum: u64 = cands.iter().sum();
        if total != sum {
            return Err(format!("line {n}: candidates {total} != per-shard sum {sum}"));
        }
        let instance = match doc.get("fields").and_then(|f| f.get("instance")) {
            Some(_) => field_u64(&doc, "instance").map_err(|e| format!("line {n}: {e}"))?,
            None => 0,
        };
        let entry =
            last_seqs.entry((engine, instance, shards)).or_insert_with(|| vec![0; shards]);
        for (shard, (&seq, last)) in seqs.iter().zip(entry.iter_mut()).enumerate() {
            if seq < *last {
                return Err(format!(
                    "line {n}: shard {shard} publish seq went backwards ({last} then {seq})"
                ));
            }
            *last = seq;
        }
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_fields(id: u64, seqs: &str, cands: &[u64]) -> (&'static str, Vec<Field>) {
        let total: u64 = cands.iter().sum();
        let cand_list = cands.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let gens = cands.iter().map(|_| "1").collect::<Vec<_>>().join(",");
        (
            "flight.trace",
            vec![
                ("query_id", id.into()),
                ("strategy", "mih".into()),
                ("engine", "sharded".into()),
                ("shards", (cands.len() as u64).into()),
                ("candidates", total.into()),
                ("steps", "0:embed,1:fanout,2:merge,3:record".into()),
                ("shard_seqs", seqs.to_string().into()),
                ("shard_gens", gens.into()),
                ("shard_candidates", cand_list.into()),
            ],
        )
    }

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("traj-flight-{tag}-{}-{n}.jsonl", std::process::id()))
    }

    #[test]
    fn ring_captures_drains_and_overwrites_in_order() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 3,
            tail_threshold_seconds: 0.0,
            dump_path: None,
        });
        for i in 0..5u64 {
            assert!(rec.offer(1e-3, || trace_fields(i, "1,2", &[4, 6])));
        }
        assert_eq!(rec.captured(), 5);
        assert_eq!(rec.dropped(), 2);
        let entries = rec.drain();
        // Capacity 3: the two oldest were overwritten.
        assert_eq!(entries.len(), 3);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        // Drained means gone.
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn threshold_filters_at_bucket_granularity() {
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 8,
            tail_threshold_seconds: 1e-3,
            dump_path: None,
        });
        assert!(!rec.qualifies(1e-6));
        assert!(!rec.qualifies(f64::NAN));
        assert!(!rec.qualifies(-1.0));
        assert!(rec.qualifies(1e-3));
        assert!(rec.qualifies(0.5));
        let mut built = false;
        assert!(!rec.offer(1e-6, || {
            built = true;
            trace_fields(0, "1", &[1])
        }));
        assert!(!built, "build closure must not run for fast queries");
        assert!(rec.offer(2e-3, || trace_fields(1, "1", &[1])));
        assert_eq!(rec.drain().len(), 1);
    }

    #[test]
    fn force_dump_round_trips_through_the_validator() {
        let path = temp_path("dump");
        let rec = FlightRecorder::new(FlightConfig {
            capacity: 8,
            tail_threshold_seconds: 0.0,
            dump_path: Some(path.clone()),
        });
        rec.offer(1e-3, || trace_fields(10, "1,1", &[3, 5]));
        rec.offer(2e-3, || trace_fields(11, "1,2", &[2, 2]));
        assert_eq!(rec.force_dump("engine.degraded"), 2);
        // Second dump on an empty ring writes nothing.
        assert_eq!(rec.force_dump("engine.degraded"), 0);

        // A later dump appends (publish seqs continue non-decreasing).
        rec.offer(3e-3, || trace_fields(12, "2,2", &[1, 1]));
        assert_eq!(rec.force_dump("soak.final"), 1);

        let text = std::fs::read_to_string(&path).expect("read dump");
        let traces = validate_flight_dump(&text).expect("dump validates");
        assert_eq!(traces, 3);
        assert!(text.lines().next().expect("header").contains("flight.dump"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validator_rejects_corrupt_dumps() {
        let good = FlightEntry {
            seq: 0,
            name: "flight.trace",
            fields: trace_fields(1, "1,1", &[2, 3]).1,
        }
        .to_json_line();
        assert_eq!(validate_flight_dump(&good), Ok(1));

        // Duplicate query id.
        let dup = format!("{good}\n{good}");
        assert!(validate_flight_dump(&dup).unwrap_err().contains("duplicate query_id"));

        // Candidate total disagrees with the per-shard rows.
        let bad_total = good.replace("\"candidates\":5", "\"candidates\":9");
        assert!(validate_flight_dump(&bad_total).unwrap_err().contains("per-shard sum"));

        // Non-monotone step clocks.
        let bad_steps = good.replace("0:embed,1:fanout", "0:embed,0:fanout");
        assert!(validate_flight_dump(&bad_steps).unwrap_err().contains("monotone"));

        // Publish seq going backwards within a shard.
        let older = FlightEntry {
            seq: 1,
            name: "flight.trace",
            fields: trace_fields(2, "0,1", &[2, 3]).1,
        }
        .to_json_line();
        let regress = format!("{good}\n{older}");
        assert!(validate_flight_dump(&regress).unwrap_err().contains("went backwards"));

        // Shard list length mismatch.
        let short = FlightEntry {
            seq: 2,
            name: "flight.trace",
            fields: trace_fields(3, "1", &[2, 3]).1,
        }
        .to_json_line();
        assert!(validate_flight_dump(&short).unwrap_err().contains("shard_seqs"));

        // Foreign lines don't belong in a dump.
        assert!(validate_flight_dump("{\"kind\":\"counter\",\"name\":\"c\",\"value\":1}")
            .unwrap_err()
            .contains("unexpected"));
        assert!(validate_flight_dump("not json").is_err());
    }

    #[test]
    fn global_install_offer_and_poison_dump_guard() {
        // The only test touching the global flight slot (keeps parallel
        // tests from interfering, mirroring the recorder-slot test).
        let path = temp_path("global");
        assert!(!installed());
        offer(1.0, || panic!("must not build when uninstalled"));
        assert_eq!(force_dump("noop"), 0);
        poison_dump("noop"); // no recorder: harmless

        let rec = install(FlightConfig {
            capacity: 4,
            tail_threshold_seconds: 0.0,
            dump_path: Some(path.clone()),
        });
        assert!(installed());
        offer(1e-3, || trace_fields(100, "1", &[7]));
        assert_eq!(rec.captured(), 1);
        poison_dump("obs.lock.poisoned");
        let text = std::fs::read_to_string(&path).expect("read dump");
        assert_eq!(validate_flight_dump(&text), Ok(1));
        assert!(text.contains("obs.lock.poisoned"));
        assert!(!DUMPING.load(Ordering::SeqCst), "guard must reset after dump");

        uninstall();
        assert!(!installed());
        offer(1.0, || panic!("must not build after uninstall"));
        let _ = std::fs::remove_file(&path);
    }
}
