//! Typed errors of the serving engine.

use std::fmt;
use traj2hash::CheckpointError;
use traj_index::SearchError;

/// Why an engine operation failed.
#[derive(Debug)]
pub enum EngineError {
    /// An index rejected the query and no linear-scan degradation was
    /// possible either (e.g. the corpus itself is width-inconsistent).
    Search(SearchError),
    /// `remove` was asked for an id that does not exist or was already
    /// removed.
    UnknownId(u64),
    /// The [`EngineConfig`](crate::EngineConfig) is unusable as given.
    InvalidConfig(String),
    /// A snapshot failed to encode, decode, or validate.
    Snapshot(CheckpointError),
    /// The engine state cannot be snapshotted — currently only when the
    /// model's grid channel uses a non-serializable embedding provider
    /// (Node2vec).
    SnapshotUnsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Search(e) => write!(f, "search failed: {e}"),
            EngineError::UnknownId(id) => write!(f, "no live trajectory with id {id}"),
            EngineError::InvalidConfig(s) => write!(f, "invalid engine config: {s}"),
            EngineError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            EngineError::SnapshotUnsupported(s) => write!(f, "snapshot unsupported: {s}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Search(e) => Some(e),
            EngineError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SearchError> for EngineError {
    fn from(e: SearchError) -> Self {
        EngineError::Search(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Snapshot(e)
    }
}
