//! # traj-engine — the Traj2Hash serving layer
//!
//! The paper's end product is a *search system*: Euclidean embeddings
//! for similarity computation (Eq. 15) plus binary codes for Hamming
//! top-k search (Eq. 16, Section V-E). This crate packages that system
//! behind one owning facade, [`Traj2HashEngine`], instead of the ad-hoc
//! `prepare → embed_all → pack_codes → build index → query` wiring every
//! caller used to repeat:
//!
//! * **one query path** — [`Traj2HashEngine::query`] covers all five
//!   strategies ([`Strategy`]) with automatic linear-scan degradation;
//! * **a pluggable index layer** — every structure sits behind the
//!   [`AnnIndex`] trait ([`HammingTable`](traj_index::HammingTable),
//!   [`MultiIndexHashing`](traj_index::MultiIndexHashing),
//!   [`VpTree`](traj_index::VpTree), and the brute-force fallbacks
//!   [`BruteForceEuclidean`] / [`BruteForceHamming`]);
//! * **a live corpus** — [`Traj2HashEngine::insert`] /
//!   [`Traj2HashEngine::remove`] via generations + tombstones with
//!   threshold-triggered compaction;
//! * **snapshots** — [`Traj2HashEngine::save_snapshot`] /
//!   [`Traj2HashEngine::load_snapshot`] persist model parameters,
//!   corpus, embeddings, and codes in the CRC-checksummed container
//!   format, so cold-start never re-encodes;
//! * **a model-checked publish protocol** — the concurrent engine's
//!   swap points are [`cell::PublishCell`]s, whose pin/publish
//!   invariants the [`loomlet`] interleaving enumerator verifies
//!   exhaustively.

#![warn(missing_docs)]

pub mod ann;
pub mod cell;
pub mod engine;
pub mod error;
pub mod loomlet;
pub mod shard;
pub mod sharded;
pub mod snapshot;
pub mod telemetry;
pub mod trace;

pub use ann::{AnnIndex, BruteForceEuclidean, BruteForceHamming, IndexKind, QueryRep};
pub use cell::{PublishCell, Sequenced};
pub use engine::{
    EngineConfig, EngineStats, EuclideanBackend, Hit, Strategy, Traj2HashEngine,
};
pub use error::EngineError;
pub use sharded::{
    ModelBlueprint, PinnedView, ReaderSpec, ShardConfig, ShardReader, ShardedEngine,
};
pub use telemetry::{EngineTelemetry, QueryInfo, StrategyTelemetry};
pub use trace::{QueryTrace, ShardTrace, ShardTraceRow, TraceCtx};
