//! The `Traj2HashEngine` facade.
//!
//! Owns the full serving state — trained model, corpus, dense
//! embeddings (Eq. 15), packed binary codes (Eq. 16), and the search
//! structures — behind one typed `query` entry point covering all five
//! strategies of Section V-E, plus incremental `insert`/`remove` and
//! checksummed snapshots.
//!
//! ## Generations and tombstones
//!
//! The index structures are immutable once built, so mutation is layered
//! on top of them instead of into them:
//!
//! * every trajectory gets a monotonically increasing stable id; slots
//!   are stored in id order, so slot order == id order forever
//!   (compaction preserves relative order, and new ids only append);
//! * `insert` appends to a **delta** region past `indexed_len` that
//!   queries scan linearly — exactness is preserved because the delta
//!   is searched with the same metric and merged through the shared
//!   top-k helper;
//! * `remove` marks a **tombstone**; indexed queries over-fetch
//!   `k + dead_in_indexed` and filter, which still yields the exact
//!   live top-k because the structures are exact and total order on
//!   `(distance, slot)` is unchanged by deletion;
//! * when the delta or tombstone count crosses the configured
//!   thresholds the engine **rebuilds**: compacts live entries in
//!   order, bumps the generation, and re-indexes everything.
//!
//! Index build failures never poison the engine: it degrades to
//! linear scans (the whole corpus becomes "delta") until a later
//! rebuild succeeds.

use crate::error::EngineError;
use crate::shard::{self, DeltaSeg, GenIndexes, SearchCtx};
use crate::snapshot;
use crate::telemetry::{EngineTelemetry, QueryInfo};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;
use traj_data::Trajectory;
use traj_index::BinaryCode;
use traj2hash::Traj2Hash;

/// A search strategy of Section V-E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Brute-force scan in the Euclidean embedding space (the paper's
    /// `Euclidean-BF`) — or the configured Euclidean index.
    EuclideanBf,
    /// Brute-force scan in Hamming space (`Hamming-BF`).
    HammingBf,
    /// Radius-2 hash-table lookup (`Hamming-Table`). Honest about empty
    /// balls: may return fewer than `k` hits.
    Table,
    /// Multi-index hashing: exact Hamming k-NN via substring pigeonhole.
    Mih,
    /// `Hamming-Hybrid`: table lookup first, full scan only when the
    /// radius-2 ball holds fewer than `k`.
    Hybrid,
}

impl Strategy {
    /// All strategies, for exhaustive tests and benchmarks.
    pub const ALL: [Strategy; 5] =
        [Strategy::EuclideanBf, Strategy::HammingBf, Strategy::Table, Strategy::Mih, Strategy::Hybrid];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::EuclideanBf => "Euclidean-BF",
            Strategy::HammingBf => "Hamming-BF",
            Strategy::Table => "Hamming-Table",
            Strategy::Mih => "Hamming-MIH",
            Strategy::Hybrid => "Hamming-Hybrid",
        }
    }

    /// Position in [`Strategy::ALL`] (indexes the telemetry arrays).
    pub fn index(&self) -> usize {
        match self {
            Strategy::EuclideanBf => 0,
            Strategy::HammingBf => 1,
            Strategy::Table => 2,
            Strategy::Mih => 3,
            Strategy::Hybrid => 4,
        }
    }

    /// The obs histogram this strategy's query latencies land in.
    pub fn metric_name(&self) -> &'static str {
        match self {
            Strategy::EuclideanBf => "engine.query.euclidean_bf",
            Strategy::HammingBf => "engine.query.hamming_bf",
            Strategy::Table => "engine.query.table",
            Strategy::Mih => "engine.query.mih",
            Strategy::Hybrid => "engine.query.hybrid",
        }
    }
}

/// Which structure serves `Strategy::EuclideanBf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EuclideanBackend {
    /// Plain scan — bit-identical to `euclidean_top_k`, the default.
    BruteForce,
    /// VP-tree with triangle-inequality pruning. Exact in distances;
    /// under exact distance ties it may return a different (equally
    /// near) id than the scan.
    VpTree,
}

/// Engine construction and maintenance knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Substring tables for the MIH index.
    pub mih_tables: usize,
    /// Structure behind `Strategy::EuclideanBf`.
    pub euclidean_backend: EuclideanBackend,
    /// Worker threads for bulk encoding at build time.
    pub encode_threads: usize,
    /// Minimum delta/tombstone count before an automatic rebuild can
    /// trigger — absorbs churn on small corpora. `usize::MAX`
    /// effectively disables automatic rebuilds.
    pub rebuild_slack: usize,
    /// Rebuild when un-indexed inserts exceed this fraction of the
    /// indexed region (and `rebuild_slack`).
    pub max_delta_fraction: f64,
    /// Rebuild when tombstones exceed this fraction of all slots (and
    /// `rebuild_slack`).
    pub max_dead_fraction: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mih_tables: 4,
            euclidean_backend: EuclideanBackend::BruteForce,
            encode_threads: 1,
            rebuild_slack: 64,
            max_delta_fraction: 0.25,
            max_dead_fraction: 0.25,
        }
    }
}

impl EngineConfig {
    pub(crate) fn validate(&self) -> Result<(), EngineError> {
        if self.mih_tables == 0 {
            return Err(EngineError::InvalidConfig("mih_tables must be > 0".into()));
        }
        for (name, v) in [
            ("max_delta_fraction", self.max_delta_fraction),
            ("max_dead_fraction", self.max_dead_fraction),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(EngineError::InvalidConfig(format!(
                    "{name} must be finite and > 0, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// A search result: the stable id of a trajectory plus its distance to
/// the query (Euclidean or Hamming, by strategy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Stable trajectory id (assigned at insert, survives compaction).
    pub id: u64,
    /// Distance to the query.
    pub distance: f64,
}

/// Observability counters for the engine's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Live (non-tombstoned) trajectories.
    pub live: usize,
    /// Slots covered by the current generation's indexes.
    pub indexed: usize,
    /// Slots inserted after the last rebuild (linearly scanned).
    pub delta: usize,
    /// Tombstoned slots awaiting compaction.
    pub dead: usize,
    /// Rebuild counter; bumps on every (re)index.
    pub generation: u64,
    /// True when index construction failed and every query degrades to
    /// a linear scan.
    pub degraded: bool,
}

/// Borrowed views of everything the snapshot encoder serializes:
/// model, config, ids, trajectories, embeddings, codes, tombstone
/// flags, and `next_id`.
pub(crate) type SnapshotParts<'a> = (
    &'a Traj2Hash,
    &'a EngineConfig,
    &'a [u64],
    &'a [Trajectory],
    &'a [Vec<f32>],
    &'a [BinaryCode],
    &'a [bool],
    u64,
);

/// The serving facade over encode → hash → index → search.
pub struct Traj2HashEngine {
    model: Traj2Hash,
    cfg: EngineConfig,
    // Parallel slot arrays, always in ascending-id order.
    ids: Vec<u64>,
    trajs: Vec<Trajectory>,
    embeddings: Vec<Vec<f32>>,
    codes: Vec<BinaryCode>,
    dead: Vec<bool>,
    dead_count: usize,
    /// Tombstones among the indexed slots only (the over-fetch margin).
    dead_in_indexed: usize,
    next_id: u64,
    generation: u64,
    /// `None` = degraded: every strategy linear-scans.
    indexes: Option<GenIndexes>,
    /// Always-on self-measurement (see [`crate::telemetry`]); behind a
    /// mutex because `query` takes `&self`.
    telemetry: Mutex<EngineTelemetry>,
    /// Process-unique trace instance id: groups this engine's flight-
    /// recorder traces for offline generation-monotonicity validation.
    trace_instance: u64,
}

/// Poison-proof telemetry lock: a panicking reader must not wedge the
/// engine. Detecting poison here means a query thread panicked mid-
/// telemetry — exactly the moment a post-mortem wants the flight
/// recorder's tail exemplars, so the poison arm force-dumps them
/// (re-entrancy-guarded and best-effort) before continuing.
pub(crate) fn tlock(m: &Mutex<EngineTelemetry>) -> std::sync::MutexGuard<'_, EngineTelemetry> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            traj_obs::flight::poison_dump("engine.telemetry.poisoned");
            poisoned.into_inner()
        }
    }
}

impl Traj2HashEngine {
    /// Builds an engine over `corpus`, encoding every trajectory with
    /// `model` and indexing the results. Corpus trajectories receive
    /// ids `0..corpus.len()` in order.
    pub fn build(
        model: Traj2Hash,
        corpus: Vec<Trajectory>,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        let embeddings = model.embed_all_with_threads(&corpus, cfg.encode_threads.max(1));
        let codes: Vec<BinaryCode> =
            embeddings.iter().map(|e| BinaryCode::from_floats(e)).collect();
        let n = corpus.len();
        let mut engine = Traj2HashEngine {
            model,
            cfg,
            ids: (0..n as u64).collect(),
            trajs: corpus,
            embeddings,
            codes,
            dead: vec![false; n],
            dead_count: 0,
            dead_in_indexed: 0,
            next_id: n as u64,
            generation: 0,
            indexes: None,
            telemetry: Mutex::new(EngineTelemetry::default()),
            trace_instance: crate::trace::next_instance_id(),
        };
        engine.rebuild();
        Ok(engine)
    }

    /// Builds an engine from a borrowed model: a byte-identical replica
    /// is constructed via [`Traj2Hash::spec`], sharing the frozen
    /// grid-input cache, and the caller keeps the original (useful
    /// mid-training, where the trainer still owns the model).
    pub fn build_from(
        model: &Traj2Hash,
        corpus: Vec<Trajectory>,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        let replica = Traj2Hash::from_spec(&model.spec(), &model.params.clone_values());
        Self::build(replica, corpus, cfg)
    }

    /// Reassembles an engine from snapshot parts. Entries must arrive in
    /// ascending-id order (the snapshot stores them that way).
    pub(crate) fn from_loaded(
        model: Traj2Hash,
        cfg: EngineConfig,
        ids: Vec<u64>,
        trajs: Vec<Trajectory>,
        embeddings: Vec<Vec<f32>>,
        codes: Vec<BinaryCode>,
        next_id: u64,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        let n = ids.len();
        let mut engine = Traj2HashEngine {
            model,
            cfg,
            ids,
            trajs,
            embeddings,
            codes,
            dead: vec![false; n],
            dead_count: 0,
            dead_in_indexed: 0,
            next_id,
            generation: 0,
            indexes: None,
            telemetry: Mutex::new(EngineTelemetry::default()),
            trace_instance: crate::trace::next_instance_id(),
        };
        engine.rebuild();
        Ok(engine)
    }

    /// The owned model (for direct embedding access).
    pub fn model(&self) -> &Traj2Hash {
        &self.model
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of live trajectories.
    pub fn len(&self) -> usize {
        self.ids.len() - self.dead_count
    }

    /// True when no live trajectory remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the engine's always-on self-measurement:
    /// per-strategy latency/candidate histograms, fallback counters,
    /// and lifecycle counts.
    pub fn telemetry(&self) -> EngineTelemetry {
        tlock(&self.telemetry).clone()
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> EngineStats {
        let indexed = self.indexes.as_ref().map(|ix| ix.covers).unwrap_or(0);
        EngineStats {
            live: self.len(),
            indexed,
            delta: self.ids.len() - indexed,
            dead: self.dead_count,
            generation: self.generation,
            degraded: self.indexes.is_none(),
        }
    }

    /// True when `id` refers to a live trajectory.
    pub fn contains(&self, id: u64) -> bool {
        self.slot_of(id).is_some()
    }

    /// The live trajectory with stable id `id`.
    pub fn get(&self, id: u64) -> Option<&Trajectory> {
        self.slot_of(id).map(|s| &self.trajs[s])
    }

    /// Live ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.ids
            .iter()
            .zip(&self.dead)
            .filter(|(_, &dead)| !dead)
            .map(|(&id, _)| id)
    }

    /// Consumes the engine, returning the model (e.g. to resume
    /// training).
    pub fn into_model(self) -> Traj2Hash {
        self.model
    }

    fn slot_of(&self, id: u64) -> Option<usize> {
        // Slots are in ascending-id order by construction.
        let slot = self.ids.binary_search(&id).ok()?;
        (!self.dead[slot]).then_some(slot)
    }

    /// Encodes and inserts a trajectory, returning its stable id. The
    /// entry lands in the delta region and is searchable immediately; a
    /// threshold-crossing insert triggers a rebuild.
    pub fn insert(&mut self, t: Trajectory) -> u64 {
        let embedding = self.model.embed(&t).data().to_vec();
        let code = BinaryCode::from_floats(&embedding);
        let id = self.next_id;
        self.next_id += 1;
        self.ids.push(id);
        self.trajs.push(t);
        self.embeddings.push(embedding);
        self.codes.push(code);
        self.dead.push(false);
        tlock(&self.telemetry).inserts += 1;
        traj_obs::counter("engine.inserts", 1);
        self.maybe_rebuild();
        id
    }

    /// Tombstones the trajectory with stable id `id`. It disappears
    /// from every subsequent query; storage is reclaimed at the next
    /// compaction. Unknown or already-removed ids fail with
    /// [`EngineError::UnknownId`].
    pub fn remove(&mut self, id: u64) -> Result<(), EngineError> {
        let slot = self.slot_of(id).ok_or(EngineError::UnknownId(id))?;
        self.dead[slot] = true;
        self.dead_count += 1;
        if let Some(ix) = &self.indexes {
            if slot < ix.covers {
                self.dead_in_indexed += 1;
            }
        }
        tlock(&self.telemetry).removes += 1;
        traj_obs::counter("engine.removes", 1);
        self.maybe_rebuild();
        Ok(())
    }

    /// Forces compaction + re-index now (normally triggered
    /// automatically by the thresholds in [`EngineConfig`]).
    pub fn compact(&mut self) {
        self.rebuild();
    }

    fn maybe_rebuild(&mut self) {
        let indexed = self.indexes.as_ref().map(|ix| ix.covers).unwrap_or(0);
        let delta = self.ids.len() - indexed;
        let slack = self.cfg.rebuild_slack;
        // lint: allow(lossy-cast) — nonnegative fraction of a corpus size that fits usize
        let delta_cap = slack.max((indexed as f64 * self.cfg.max_delta_fraction) as usize);
        let dead_cap =
            // lint: allow(lossy-cast) — nonnegative fraction of a corpus size that fits usize
            slack.max((self.ids.len() as f64 * self.cfg.max_dead_fraction) as usize);
        if delta > delta_cap || self.dead_count > dead_cap {
            self.rebuild();
        }
    }

    /// Drops tombstoned slots (preserving order) and rebuilds every
    /// index over the compacted corpus. On index-build failure the
    /// engine enters degraded linear-scan mode instead of panicking;
    /// the next rebuild retries.
    fn rebuild(&mut self) {
        let t0 = Instant::now();
        let compacting = self.dead_count > 0;
        if self.dead_count > 0 {
            let mut w = 0usize;
            for r in 0..self.ids.len() {
                if !self.dead[r] {
                    if w != r {
                        self.ids.swap(w, r);
                        self.trajs.swap(w, r);
                        self.embeddings.swap(w, r);
                        self.codes.swap(w, r);
                    }
                    w += 1;
                }
            }
            self.ids.truncate(w);
            self.trajs.truncate(w);
            self.embeddings.truncate(w);
            self.codes.truncate(w);
            self.dead.clear();
            self.dead.resize(w, false);
            self.dead_count = 0;
        }
        self.dead_in_indexed = 0;
        self.generation += 1;
        self.indexes = GenIndexes::try_build(&self.codes, &self.embeddings, &self.cfg);
        let degraded = self.indexes.is_none();
        {
            let mut t = tlock(&self.telemetry);
            t.rebuilds += 1;
            if compacting {
                t.compactions += 1;
            }
            if degraded {
                t.degraded_rebuilds += 1;
            }
        }
        if traj_obs::enabled() {
            traj_obs::counter("engine.rebuilds", 1);
            if compacting {
                traj_obs::counter("engine.compactions", 1);
            }
            traj_obs::event(
                "engine.rebuild",
                &[
                    ("generation", self.generation.into()),
                    ("covers", self.ids.len().into()),
                    ("compacted", compacting.into()),
                    ("degraded", degraded.into()),
                    ("seconds", t0.elapsed().as_secs_f64().into()),
                ],
            );
            if degraded {
                traj_obs::counter("engine.degraded_entries", 1);
                traj_obs::event(
                    "engine.degraded",
                    &[("reason", "index build failed".into()), ("generation", self.generation.into())],
                );
            }
        }
        if degraded {
            // Outside the `enabled()` gate: the flight recorder can be
            // installed without an obs recorder, and a degraded entry is
            // exactly when its tail exemplars are wanted.
            traj_obs::flight::force_dump("engine.degraded");
        }
    }

    /// Drops the generation indexes, forcing every strategy onto the
    /// degraded linear-scan path until the next successful rebuild (or
    /// [`compact`](Traj2HashEngine::compact)). An ops/chaos-drill hook:
    /// results stay exact, only the access path changes — this is how
    /// tests and drills exercise the degradation counters end to end.
    pub fn force_degrade(&mut self) {
        self.indexes = None;
        // Mirror a failed rebuild: with no indexed region there is no
        // over-fetch margin; scans filter tombstones directly.
        self.dead_in_indexed = 0;
        tlock(&self.telemetry).degraded_rebuilds += 1;
        if traj_obs::enabled() {
            traj_obs::counter("engine.degraded_entries", 1);
            traj_obs::event(
                "engine.degraded",
                &[("reason", "forced".into()), ("generation", self.generation.into())],
            );
        }
        // Outside the `enabled()` gate: flight capture works standalone.
        traj_obs::flight::force_dump("engine.degraded");
    }

    /// Builds a *replacement* engine: the current live corpus re-encoded
    /// with `model`, preserving every stable id and `next_id`, so a
    /// subsequent [`hot_swap`](Traj2HashEngine::hot_swap) is invisible
    /// to callers holding ids. This is the refresh half of the live
    /// model-update path: fine-tune a model elsewhere, `refreshed()`,
    /// snapshot the replacement, validate it by loading it back, then
    /// swap.
    pub fn refreshed(&self, model: Traj2Hash) -> Result<Traj2HashEngine, EngineError> {
        let live: Vec<usize> = (0..self.ids.len()).filter(|&s| !self.dead[s]).collect();
        let ids: Vec<u64> = live.iter().map(|&s| self.ids[s]).collect();
        let trajs: Vec<Trajectory> = live.iter().map(|&s| self.trajs[s].clone()).collect();
        let embeddings = model.embed_all_with_threads(&trajs, self.cfg.encode_threads.max(1));
        let codes: Vec<BinaryCode> =
            embeddings.iter().map(|e| BinaryCode::from_floats(e)).collect();
        Self::from_loaded(model, self.cfg.clone(), ids, trajs, embeddings, codes, self.next_id)
    }

    /// Atomically swaps `replacement`'s model, corpus, and indexes into
    /// this engine, keeping the engine's *cumulative* telemetry and a
    /// monotonically increasing generation counter. From a caller's
    /// point of view the engine object never stops serving — queries
    /// before the swap answer from the old state, queries after from
    /// the new one.
    ///
    /// The replacement is typically produced by
    /// [`refreshed`](Traj2HashEngine::refreshed) and round-tripped
    /// through the `T2HSNAP1` snapshot machinery first, so the bytes
    /// that go live are the bytes that were validated on disk.
    pub fn hot_swap(&mut self, replacement: Traj2HashEngine) {
        let Traj2HashEngine {
            model,
            cfg,
            ids,
            trajs,
            embeddings,
            codes,
            dead,
            dead_count,
            dead_in_indexed,
            next_id,
            generation: _,
            indexes,
            telemetry: _,
            trace_instance: _,
        } = replacement;
        self.model = model;
        self.cfg = cfg;
        self.ids = ids;
        self.trajs = trajs;
        self.embeddings = embeddings;
        self.codes = codes;
        self.dead = dead;
        self.dead_count = dead_count;
        self.dead_in_indexed = dead_in_indexed;
        // next_id only moves forward: a stale replacement must not make
        // the engine re-issue ids that are already out there.
        self.next_id = self.next_id.max(next_id);
        self.indexes = indexes;
        self.generation += 1;
        let degraded = self.indexes.is_none();
        tlock(&self.telemetry).hot_swaps += 1;
        if traj_obs::enabled() {
            traj_obs::counter("engine.hot_swaps", 1);
            traj_obs::event(
                "engine.hot_swap",
                &[
                    ("generation", self.generation.into()),
                    ("live", self.len().into()),
                    ("degraded", degraded.into()),
                ],
            );
        }
    }

    /// Attempts to leave degraded linear-scan mode by rebuilding the
    /// generation indexes; a no-op when the engine is already healthy.
    /// Returns `true` when the engine is healthy afterwards. This is
    /// the recovery half of the degrade → recover drill: results were
    /// exact throughout, only the access path (and its latency) was
    /// degraded.
    pub fn recover(&mut self) -> bool {
        if self.indexes.is_some() {
            return true;
        }
        self.rebuild();
        let healthy = self.indexes.is_some();
        if healthy {
            tlock(&self.telemetry).recoveries += 1;
            if traj_obs::enabled() {
                traj_obs::counter("engine.recoveries", 1);
                traj_obs::event(
                    "engine.recovered",
                    &[("generation", self.generation.into()), ("live", self.len().into())],
                );
            }
        }
        healthy
    }

    /// Top-k search over the live corpus.
    ///
    /// The query is encoded once with the owned model; the selected
    /// [`Strategy`] then runs against the generation indexes (with
    /// tombstone filtering and a linear merge of the delta region) or
    /// falls back to an exact linear scan whenever an index cannot
    /// answer — a query never fails because an index degraded.
    ///
    /// `Table` is the one strategy that may return fewer than `k` hits:
    /// it reports exactly the radius-2 ball, like the paper's
    /// `Hamming-Table` row.
    pub fn query(
        &self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<Vec<Hit>, EngineError> {
        self.query_with_info(q, k, strategy).map(|(hits, _)| hits)
    }

    /// [`query`](Traj2HashEngine::query) plus per-query diagnostics:
    /// which path answered (index vs. degraded linear scan), how many
    /// candidates were considered, the tombstone over-fetch applied, and
    /// the wall-clock cost. Every query is also folded into
    /// [`telemetry`](Traj2HashEngine::telemetry) and mirrored to the
    /// installed obs recorder, if any.
    pub fn query_with_info(
        &self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<(Vec<Hit>, QueryInfo), EngineError> {
        self.query_traced(q, k, strategy).map(|(hits, info, _)| (hits, info))
    }

    /// [`query_with_info`](Traj2HashEngine::query_with_info) plus the
    /// sealed per-query [`QueryTrace`](crate::trace::QueryTrace): the
    /// step clock, the single shard row (the facade reports its rebuild
    /// generation as its publish seq), and the fallback taxonomy. The
    /// trace is inert — no id allocated, nothing recorded — unless an
    /// obs recorder or a flight recorder is installed.
    pub fn query_traced(
        &self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<(Vec<Hit>, QueryInfo, crate::trace::QueryTrace), EngineError> {
        let mut trace = crate::trace::TraceCtx::new();
        let degraded = self.indexes.is_none();
        if k == 0 || self.is_empty() {
            let info = QueryInfo {
                strategy,
                degraded,
                linear_fallback: false,
                candidates: 0,
                overfetch: 0,
                seconds: 0.0,
                shards: 1,
                fanout_seconds: 0.0,
                merge_seconds: 0.0,
            };
            trace.step("empty");
            let qt = trace.finish(strategy, 0.0);
            qt.offer_to_flight("facade", self.trace_instance);
            return Ok((Vec::new(), info, qt));
        }
        let t0 = Instant::now();
        trace.step("embed");
        let embedding = self.model.embed(q).data().to_vec();
        let code = BinaryCode::from_floats(&embedding);
        trace.step("search");
        let mut strace = trace.shard_trace();
        let (slot_hits, path) =
            shard::search(&self.search_ctx(), strategy, &embedding, &code, k, &mut strace);
        trace.step("finalize");
        if trace.active() {
            trace.push_shard(crate::trace::ShardTraceRow {
                shard: 0,
                // The rebuild generation is the facade's single-writer
                // publish-seq analogue: bumped on every rebuild, never
                // reset over the engine's lifetime.
                publish_seq: self.generation,
                generation: self.generation,
                degraded,
                candidates: path.candidates,
                fallback: path.fallback,
                spill: path.spill,
                steps: strace.into_steps(),
            });
        }
        let hits: Vec<Hit> = slot_hits
            .into_iter()
            .map(|h| Hit { id: self.ids[h.index], distance: h.distance })
            .collect();
        let seconds = t0.elapsed().as_secs_f64();
        let overfetch = if degraded || path.fallback { 0 } else { self.dead_in_indexed };
        let info = QueryInfo {
            strategy,
            degraded,
            linear_fallback: path.fallback,
            candidates: path.candidates,
            overfetch,
            seconds,
            shards: 1,
            fanout_seconds: 0.0,
            merge_seconds: 0.0,
        };
        {
            let mut t = tlock(&self.telemetry);
            let s = &mut t.strategies[strategy.index()];
            s.queries += 1;
            s.latency.record(seconds);
            s.candidates.record(path.candidates as f64);
            if path.fallback {
                s.linear_fallbacks += 1;
            }
            if degraded {
                s.degraded_queries += 1;
            }
            if path.spill {
                t.hybrid_spills += 1;
            }
            t.overfetch.record(overfetch as f64);
        }
        if traj_obs::enabled() {
            traj_obs::observe_secs(strategy.metric_name(), seconds);
            traj_obs::observe_value("engine.query.candidates", path.candidates as f64);
            traj_obs::observe_value("engine.query.overfetch", overfetch as f64);
            if path.fallback {
                traj_obs::counter("engine.linear_fallbacks", 1);
            }
            if degraded {
                traj_obs::counter("engine.degraded_queries", 1);
            }
            if path.spill {
                traj_obs::counter("engine.hybrid_spills", 1);
            }
        }
        let qt = trace.finish(strategy, seconds);
        qt.offer_to_flight("facade", self.trace_instance);
        Ok((hits, info, qt))
    }

    /// The borrowed search view over the current state, handed to the
    /// shared per-shard search core (`crate::shard::search`). Healthy:
    /// indexed region + one delta segment. Degraded: everything is one
    /// linearly scanned delta segment.
    fn search_ctx(&self) -> SearchCtx<'_> {
        match &self.indexes {
            Some(ix) => SearchCtx {
                indexed_embeddings: &self.embeddings[..ix.covers],
                indexes: Some(ix),
                delta: vec![DeltaSeg {
                    embeddings: &self.embeddings[ix.covers..],
                    codes: &self.codes[ix.covers..],
                }],
                dead: &self.dead,
                dead_in_indexed: self.dead_in_indexed,
                euclidean_backend: self.cfg.euclidean_backend,
            },
            None => SearchCtx {
                indexed_embeddings: &[],
                indexes: None,
                delta: vec![DeltaSeg { embeddings: &self.embeddings, codes: &self.codes }],
                dead: &self.dead,
                dead_in_indexed: self.dead_in_indexed,
                euclidean_backend: self.cfg.euclidean_backend,
            },
        }
    }

    /// Serializes the full engine state — model spec + parameters,
    /// engine config, and every live entry (id, points, embedding,
    /// code) — into the checksummed snapshot container.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, EngineError> {
        snapshot::encode(self)
    }

    /// Restores an engine from [`Traj2HashEngine::snapshot_bytes`]
    /// output. Cold-start is instant: no trajectory is re-encoded,
    /// only the indexes are rebuilt.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, EngineError> {
        snapshot::decode(bytes)
    }

    /// Writes a snapshot atomically and durably (unique fsync'd tmp →
    /// rename → parent-dir fsync), mirroring the checkpoint discipline.
    /// Goes through `traj2hash::iofault::durable_write`, so installed
    /// fault plans apply.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        self.save_snapshot_retry(path, &traj2hash::RetryPolicy::none()).map(|_| ())
    }

    /// [`save_snapshot`](Traj2HashEngine::save_snapshot) under a
    /// bounded retry/backoff policy; returns the write receipt
    /// (attempts made, faults survived) so callers can log how hard
    /// the save had to fight.
    pub fn save_snapshot_retry(
        &self,
        path: impl AsRef<Path>,
        policy: &traj2hash::RetryPolicy,
    ) -> Result<traj2hash::WriteReceipt, EngineError> {
        let path = path.as_ref();
        let t0 = Instant::now();
        let bytes = self.snapshot_bytes()?;
        let len = bytes.len();
        let receipt = traj2hash::durable_write_retry(path, &bytes, policy)
            .map_err(traj2hash::CheckpointError::Io)?;
        {
            let mut t = tlock(&self.telemetry);
            t.snapshot_saves += 1;
            t.snapshot_bytes += len as u64;
        }
        if traj_obs::enabled() {
            traj_obs::counter("engine.snapshot.saves", 1);
            traj_obs::counter("engine.snapshot.bytes_written", len as u64);
            traj_obs::observe_secs("engine.snapshot.save_secs", t0.elapsed().as_secs_f64());
        }
        Ok(receipt)
    }

    /// Reads and validates a snapshot written by
    /// [`Traj2HashEngine::save_snapshot`]. Stale staging leftovers from
    /// crashed writers are cleaned up along the way — they are never
    /// read.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let t0 = Instant::now();
        traj2hash::clean_stale_tmps(path.as_ref());
        let bytes = std::fs::read(path).map_err(traj2hash::CheckpointError::Io)?;
        let engine = Self::from_snapshot_bytes(&bytes);
        if traj_obs::enabled() {
            traj_obs::counter("engine.snapshot.loads", 1);
            traj_obs::counter("engine.snapshot.bytes_read", bytes.len() as u64);
            traj_obs::observe_secs("engine.snapshot.load_secs", t0.elapsed().as_secs_f64());
            if engine.is_err() {
                traj_obs::counter("engine.snapshot.load_failures", 1);
            }
        }
        engine
    }

    // Snapshot internals need field access without making fields public.
    pub(crate) fn snapshot_parts(&self) -> SnapshotParts<'_> {
        (
            &self.model,
            &self.cfg,
            &self.ids,
            &self.trajs,
            &self.embeddings,
            &self.codes,
            &self.dead,
            self.next_id,
        )
    }
}
