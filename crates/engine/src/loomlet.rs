//! loomlet — a deterministic interleaving enumerator for the publish
//! protocol.
//!
//! A miniature, zero-dependency cousin of the `loom` model checker:
//! instead of instrumenting real atomics, it models each logical thread
//! as a sequence of *atomic steps* (closures over a shared state) and
//! executes **every** interleaving of those steps, checking an
//! invariant after each one. That is exact — not sampled — coverage of
//! the schedule space, which is feasible because the publish protocol's
//! critical sections ([`crate::cell::PublishCell::pin`] /
//! [`publish`](crate::cell::PublishCell::publish)) are themselves
//! atomic under the cell's lock: any real concurrent execution is
//! equivalent to *some* sequential interleaving of these steps, so
//! checking all interleavings checks all executions.
//!
//! The step count is the multinomial coefficient
//! `(Σ lens)! / Π lens!` ([`interleaving_count`]); tests assert the
//! exact value so nobody can silently shrink the explored space.
//!
//! Used by the `loomlet_publish` suite to verify reader pin / writer
//! publish / hot-swap schedules over real `ShardCell`s and the model
//! blueprint cell: monotone publish sequences, no torn views, and
//! every pinned value is one a writer actually published.

use std::fmt;

/// An invariant violation, carrying the exact schedule that produced
/// it so the failure replays deterministically.
#[derive(Debug)]
pub struct Violation {
    /// The interleaving as a sequence of thread indices, one per step
    /// executed, in order.
    pub schedule: Vec<usize>,
    /// How many steps of `schedule` had executed when the invariant
    /// tripped (the violation surfaced after step `executed - 1`).
    pub executed: usize,
    /// The invariant's message.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated after step {} of schedule {:?}: {}",
            self.executed, self.schedule, self.message
        )
    }
}

impl std::error::Error for Violation {}

/// The number of distinct interleavings of threads with the given step
/// counts: the multinomial `(Σ lens)! / Π lens!`, computed without
/// overflow by incremental binomials.
pub fn interleaving_count(lens: &[usize]) -> u64 {
    let mut total: u64 = 0;
    let mut count: u64 = 1;
    for &len in lens {
        for i in 1..=len as u64 {
            total += 1;
            // count *= C(total, i) incrementally: multiply then divide
            // stays exact because count * total is always divisible.
            count = count * total / i;
        }
    }
    count
}

fn enumerate(lens: &[usize], done: &[usize], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if prefix.len() == lens.iter().sum::<usize>() {
        out.push(prefix.clone());
        return;
    }
    for t in 0..lens.len() {
        if done[t] < lens[t] {
            let mut next = done.to_vec();
            next[t] += 1;
            prefix.push(t);
            enumerate(lens, &next, prefix, out);
            prefix.pop();
        }
    }
}

/// All interleavings of threads with the given step counts, each as a
/// sequence of thread indices. Exhaustive and deterministic (threads
/// explored in index order at every branch).
pub fn interleavings(lens: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    enumerate(lens, &vec![0; lens.len()], &mut Vec::new(), &mut out);
    out
}

/// One atomic step of a model-checked thread: a boxed mutation of the
/// shared state `S`.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// Executes every interleaving of `threads` (each a list of atomic
/// steps over a fresh state from `mk_state`), running `invariant`
/// after every step. Returns the number of interleavings explored —
/// assert it against [`interleaving_count`] so the schedule space can
/// never silently shrink — or the first [`Violation`] with its full
/// schedule.
///
/// Steps must be pure functions of the state (no ambient randomness or
/// time), so a reported schedule replays exactly.
pub fn explore<S>(
    mk_state: impl Fn() -> S,
    threads: &[Vec<Step<S>>],
    invariant: impl Fn(&S) -> Result<(), String>,
) -> Result<u64, Violation> {
    let lens: Vec<usize> = threads.iter().map(|t| t.len()).collect();
    let mut explored = 0u64;
    for schedule in interleavings(&lens) {
        let mut state = mk_state();
        let mut pcs = vec![0usize; threads.len()];
        for (step_no, &t) in schedule.iter().enumerate() {
            threads[t][pcs[t]](&mut state);
            pcs[t] += 1;
            if let Err(message) = invariant(&state) {
                return Err(Violation { schedule, executed: step_no + 1, message });
            }
        }
        explored += 1;
    }
    Ok(explored)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinomial_counts_are_exact() {
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleaving_count(&[3]), 1);
        assert_eq!(interleaving_count(&[1, 1]), 2);
        assert_eq!(interleaving_count(&[2, 2]), 6);
        assert_eq!(interleaving_count(&[3, 2, 3]), 560);
        assert_eq!(interleaving_count(&[4, 4]), 70);
    }

    #[test]
    fn interleavings_match_the_count_and_preserve_program_order() {
        let lens = [2, 3];
        let all = interleavings(&lens);
        assert_eq!(all.len() as u64, interleaving_count(&lens));
        let mut seen = std::collections::HashSet::new();
        for s in &all {
            assert_eq!(s.iter().filter(|&&t| t == 0).count(), 2);
            assert_eq!(s.iter().filter(|&&t| t == 1).count(), 3);
            assert!(seen.insert(s.clone()), "duplicate schedule {s:?}");
        }
    }

    #[test]
    fn explore_runs_every_schedule_and_reports_violations_exactly() {
        // Two writers each appending their id: every interleaving of
        // (2,2) steps, 6 total.
        let threads: Vec<Vec<Step<Vec<usize>>>> = vec![
            vec![Box::new(|s: &mut Vec<usize>| s.push(0)), Box::new(|s: &mut Vec<usize>| s.push(0))],
            vec![Box::new(|s: &mut Vec<usize>| s.push(1)), Box::new(|s: &mut Vec<usize>| s.push(1))],
        ];
        let explored = explore(Vec::new, &threads, |_| Ok(())).expect("no invariant set");
        assert_eq!(explored, interleaving_count(&[2, 2]));

        // An invariant that rejects thread 1 moving first trips on the
        // first schedule that starts with 1, with the schedule attached.
        let err = explore(Vec::new, &threads, |s: &Vec<usize>| {
            if s.first() == Some(&1) {
                Err("thread 1 moved first".into())
            } else {
                Ok(())
            }
        })
        .expect_err("must violate");
        assert_eq!(err.schedule[0], 1);
        assert_eq!(err.executed, 1);
        assert!(err.to_string().contains("thread 1 moved first"));
    }
}
