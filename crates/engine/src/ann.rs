//! The `AnnIndex` trait: one interface over every top-k structure.
//!
//! The engine talks to its indexes exclusively through this trait, so
//! exchanging a `HammingTable` for `MultiIndexHashing`, a `VpTree` for a
//! brute-force scan — or a future structure entirely — never touches the
//! query path. Queries arrive as a [`QueryRep`] because the two search
//! spaces have incompatible inputs: the Euclidean structures need the
//! dense embedding `h_f` (Eq. 15), the Hamming structures the packed
//! code `sign(h_f)` (Eq. 16).

use traj_index::{
    euclidean_top_k, hamming_top_k, BinaryCode, HammingTable, Hit, MultiIndexHashing,
    SearchError, VpTree,
};

/// A query in one of the two representations the engine produces.
#[derive(Debug, Clone, Copy)]
pub enum QueryRep<'a> {
    /// The dense Euclidean embedding `h_f`.
    Dense(&'a [f32]),
    /// The packed binary code `sign(h_f)`.
    Code(&'a BinaryCode),
}

impl QueryRep<'_> {
    fn name(&self) -> &'static str {
        match self {
            QueryRep::Dense(_) => "dense",
            QueryRep::Code(_) => "code",
        }
    }
}

/// Which space an index searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Euclidean distance over dense embeddings.
    Euclidean,
    /// Hamming distance over binary codes.
    Hamming,
}

/// An exact (or exact-within-radius) top-k index over a frozen slice of
/// the corpus. Hits are slot indices into that slice.
pub trait AnnIndex: Send + Sync {
    /// The space this index searches.
    fn kind(&self) -> IndexKind;
    /// Number of indexed entries.
    fn len(&self) -> usize;
    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The k nearest entries to `query`, nearest first with ascending
    /// index tie-breaking. A query in the wrong representation fails
    /// with [`SearchError::RepresentationMismatch`]; width mismatches
    /// fail with [`SearchError::WidthMismatch`].
    fn search(&self, query: QueryRep<'_>, k: usize) -> Result<Vec<Hit>, SearchError>;
}

fn wrong_rep(expected: &'static str, got: QueryRep<'_>) -> SearchError {
    SearchError::RepresentationMismatch { expected, got: got.name() }
}

/// Brute-force Euclidean scan behind the [`AnnIndex`] interface — the
/// always-correct fallback every other Euclidean structure is measured
/// against.
pub struct BruteForceEuclidean {
    data: Vec<Vec<f32>>,
    dim: usize,
}

impl BruteForceEuclidean {
    /// Wraps the embeddings, rejecting mixed widths (a scan over those
    /// would silently compare truncated vectors).
    pub fn new(data: Vec<Vec<f32>>) -> Result<Self, SearchError> {
        let dim = data.first().map(Vec::len).unwrap_or(0);
        for (i, v) in data.iter().enumerate() {
            if v.len() != dim {
                return Err(SearchError::InconsistentCodes {
                    position: i,
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        Ok(BruteForceEuclidean { data, dim })
    }
}

impl AnnIndex for BruteForceEuclidean {
    fn kind(&self) -> IndexKind {
        IndexKind::Euclidean
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn search(&self, query: QueryRep<'_>, k: usize) -> Result<Vec<Hit>, SearchError> {
        let QueryRep::Dense(q) = query else {
            return Err(wrong_rep("dense", query));
        };
        if self.data.is_empty() {
            return Ok(Vec::new());
        }
        if q.len() != self.dim {
            return Err(SearchError::WidthMismatch { query: q.len(), index: self.dim });
        }
        Ok(euclidean_top_k(&self.data, q, k))
    }
}

/// Brute-force Hamming scan behind the [`AnnIndex`] interface.
pub struct BruteForceHamming {
    codes: Vec<BinaryCode>,
    bits: usize,
}

impl BruteForceHamming {
    /// Wraps the codes, rejecting mixed widths.
    pub fn new(codes: Vec<BinaryCode>) -> Result<Self, SearchError> {
        let bits = codes.first().map(|c| c.len()).unwrap_or(0);
        for (i, c) in codes.iter().enumerate() {
            if c.len() != bits {
                return Err(SearchError::InconsistentCodes {
                    position: i,
                    expected: bits,
                    got: c.len(),
                });
            }
        }
        Ok(BruteForceHamming { codes, bits })
    }
}

impl AnnIndex for BruteForceHamming {
    fn kind(&self) -> IndexKind {
        IndexKind::Hamming
    }

    fn len(&self) -> usize {
        self.codes.len()
    }

    fn search(&self, query: QueryRep<'_>, k: usize) -> Result<Vec<Hit>, SearchError> {
        let QueryRep::Code(q) = query else {
            return Err(wrong_rep("code", query));
        };
        if self.codes.is_empty() {
            return Ok(Vec::new());
        }
        if q.len() != self.bits {
            return Err(SearchError::WidthMismatch { query: q.len(), index: self.bits });
        }
        Ok(hamming_top_k(&self.codes, q, k))
    }
}

impl AnnIndex for HammingTable {
    fn kind(&self) -> IndexKind {
        IndexKind::Hamming
    }

    fn len(&self) -> usize {
        HammingTable::len(self)
    }

    /// The Hamming-Hybrid strategy: radius-2 table lookup with
    /// brute-force fallback when the ball holds fewer than `k`.
    fn search(&self, query: QueryRep<'_>, k: usize) -> Result<Vec<Hit>, SearchError> {
        let QueryRep::Code(q) = query else {
            return Err(wrong_rep("code", query));
        };
        self.hybrid_top_k(q, k)
    }
}

impl AnnIndex for MultiIndexHashing {
    fn kind(&self) -> IndexKind {
        IndexKind::Hamming
    }

    fn len(&self) -> usize {
        MultiIndexHashing::len(self)
    }

    fn search(&self, query: QueryRep<'_>, k: usize) -> Result<Vec<Hit>, SearchError> {
        let QueryRep::Code(q) = query else {
            return Err(wrong_rep("code", query));
        };
        self.top_k(q, k)
    }
}

impl AnnIndex for VpTree {
    fn kind(&self) -> IndexKind {
        IndexKind::Euclidean
    }

    fn len(&self) -> usize {
        VpTree::len(self)
    }

    fn search(&self, query: QueryRep<'_>, k: usize) -> Result<Vec<Hit>, SearchError> {
        let QueryRep::Dense(q) = query else {
            return Err(wrong_rep("dense", query));
        };
        if self.is_empty() {
            return Ok(Vec::new());
        }
        if q.len() != self.dim() {
            return Err(SearchError::WidthMismatch { query: q.len(), index: self.dim() });
        }
        Ok(self.top_k(q, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings() -> Vec<Vec<f32>> {
        // Irrational-ish spacing keeps pairwise distances tie-free, so
        // index order is fully determined and comparisons are exact.
        (0..40u32)
            .map(|i| {
                vec![i as f32 * 1.37, (i * i % 83) as f32 * 0.51, (i % 7) as f32 * 2.31]
            })
            .collect()
    }

    fn codes() -> Vec<BinaryCode> {
        embeddings()
            .iter()
            .map(|e| {
                BinaryCode::from_floats(&e.iter().map(|x| x - 10.0).collect::<Vec<_>>())
            })
            .collect()
    }

    #[test]
    fn every_backend_agrees_with_its_direct_path() {
        let embs = embeddings();
        let q = vec![3.0f32, 35.0, 2.0];
        let bf = BruteForceEuclidean::new(embs.clone()).unwrap();
        let vp = VpTree::build(embs.clone());
        let want = euclidean_top_k(&embs, &q, 5);
        assert_eq!(bf.search(QueryRep::Dense(&q), 5).unwrap(), want);
        assert_eq!(vp.search(QueryRep::Dense(&q), 5).unwrap(), want);

        let cs = codes();
        let qc = cs[3].clone();
        let bh = BruteForceHamming::new(cs.clone()).unwrap();
        let mih = MultiIndexHashing::try_build(cs.clone(), 2).unwrap();
        let want = hamming_top_k(&cs, &qc, 5);
        assert_eq!(bh.search(QueryRep::Code(&qc), 5).unwrap(), want);
        assert_eq!(mih.search(QueryRep::Code(&qc), 5).unwrap(), want);
    }

    #[test]
    fn wrong_representation_is_a_typed_error() {
        let bf = BruteForceEuclidean::new(embeddings()).unwrap();
        let qc = BinaryCode::zeros(3);
        assert_eq!(
            bf.search(QueryRep::Code(&qc), 1),
            Err(SearchError::RepresentationMismatch { expected: "dense", got: "code" })
        );
        let bh = BruteForceHamming::new(codes()).unwrap();
        assert_eq!(
            bh.search(QueryRep::Dense(&[0.0; 3]), 1),
            Err(SearchError::RepresentationMismatch { expected: "code", got: "dense" })
        );
    }

    #[test]
    fn width_mismatch_is_a_typed_error() {
        let bf = BruteForceEuclidean::new(embeddings()).unwrap();
        assert_eq!(
            bf.search(QueryRep::Dense(&[0.0; 5]), 1),
            Err(SearchError::WidthMismatch { query: 5, index: 3 })
        );
        let vp = VpTree::build(embeddings());
        assert_eq!(
            vp.search(QueryRep::Dense(&[0.0; 5]), 1),
            Err(SearchError::WidthMismatch { query: 5, index: 3 })
        );
    }

    #[test]
    fn mixed_widths_rejected_at_build() {
        let mut embs = embeddings();
        embs.push(vec![0.0; 9]);
        assert!(BruteForceEuclidean::new(embs).is_err());
        let mut cs = codes();
        cs.push(BinaryCode::zeros(64));
        assert!(BruteForceHamming::new(cs).is_err());
    }

    #[test]
    fn empty_backends_answer_with_nothing() {
        let bf = BruteForceEuclidean::new(Vec::new()).unwrap();
        assert!(bf.is_empty());
        assert!(bf.search(QueryRep::Dense(&[1.0]), 3).unwrap().is_empty());
        let bh = BruteForceHamming::new(Vec::new()).unwrap();
        assert!(bh.search(QueryRep::Code(&BinaryCode::zeros(8)), 3).unwrap().is_empty());
    }
}
