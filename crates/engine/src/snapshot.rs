//! Engine snapshots: serialize the *served* state — model parameters,
//! corpus, embeddings, codes, and index configuration — so a restart
//! cold-starts without re-encoding a single trajectory (only the index
//! structures, which build in O(n), are reconstructed).
//!
//! Reuses the checkpoint container (`magic`, version, length, CRC-32)
//! from `traj2hash::checkpoint`, with its own magic so checkpoints and
//! snapshots can never be confused for one another: a checkpoint fed to
//! the snapshot loader (or vice versa) fails with `BadMagic`.
//!
//! ## Payload layout (version 1, all little-endian)
//!
//! ```text
//! model:  dim, blocks, heads, grid_dim (u64 each), readout (u8),
//!         use_grids (u8), use_rev_aug (u8), fine_cell_m (f64),
//!         norm mean_x/mean_y/std_x/std_y (f64), beta (f32),
//!         grid tag (u8) [+ bbox 4xf64, cell_size f64, emb dim/nx/ny
//!         u64, ex f32s, ey f32s], parameter blob (len-prefixed)
//! engine: mih_tables (u64), euclidean backend (u8), encode_threads,
//!         rebuild_slack (u64), delta/dead fractions (f64), next_id
//! corpus: entry count (u64); per live entry: id (u64), points
//!         (u64 count + f64 x/y pairs), embedding (f32s), code
//!         (u64 bits, u64 word count, u64 words)
//! ```
//!
//! Tombstoned entries are dropped at save time, so a loaded engine is
//! always compacted; stable ids and `next_id` are preserved, so
//! insert/remove sequences continue seamlessly across a reload.

use crate::engine::{EngineConfig, EuclideanBackend, Traj2HashEngine};
use crate::error::EngineError;
use std::sync::Arc;
use traj2hash::checkpoint::{
    decode_container, encode_container, PayloadReader, PayloadWriter,
};
use traj2hash::encoder::GridInputCache;
use traj2hash::{CheckpointError, ModelConfig, ModelSpec, Readout, Traj2Hash};
use traj_data::{BoundingBox, Point, Trajectory};
use traj_grid::{DecomposedGridEmbedding, GridEmbedding, GridSpec};
use traj_index::BinaryCode;

/// Magic prefix of every engine snapshot file.
pub const MAGIC: &[u8; 8] = b"T2HSNAP1";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

fn malformed(msg: impl Into<String>) -> EngineError {
    EngineError::Snapshot(CheckpointError::Malformed(msg.into()))
}

fn write_f32s(w: &mut PayloadWriter, v: &[f32]) {
    w.u64(v.len() as u64);
    for &x in v {
        w.f32(x);
    }
}

fn read_f32s(r: &mut PayloadReader) -> Result<Vec<f32>, CheckpointError> {
    let n = r.len_prefix(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f32()?);
    }
    Ok(out)
}

/// One live corpus entry, borrowed from whichever engine is saving.
pub(crate) struct EntryRef<'a> {
    pub id: u64,
    pub traj: &'a Trajectory,
    pub embedding: &'a [f32],
    pub code: &'a BinaryCode,
}

/// Everything the snapshot format serializes, borrowed: both the
/// single-shard facade and the sharded engine flatten themselves into
/// this view, so there is exactly one byte layout (`T2HSNAP1`) and a
/// snapshot written by either engine loads into either. Entries must be
/// in ascending-id order (the sharded engine re-sorts its interleaved
/// shards before saving).
pub(crate) struct SnapshotView<'a> {
    pub model: &'a Traj2Hash,
    pub cfg: &'a EngineConfig,
    pub entries: Vec<EntryRef<'a>>,
    pub next_id: u64,
}

/// A fully decoded snapshot, owned: the caller reassembles whichever
/// engine it wants (the shard layout is *not* serialized — the sharded
/// engine redistributes entries by id on load).
pub(crate) struct DecodedSnapshot {
    pub model: Traj2Hash,
    pub cfg: EngineConfig,
    pub ids: Vec<u64>,
    pub trajs: Vec<Trajectory>,
    pub embeddings: Vec<Vec<f32>>,
    pub codes: Vec<BinaryCode>,
    pub next_id: u64,
}

pub(crate) fn encode(engine: &Traj2HashEngine) -> Result<Vec<u8>, EngineError> {
    let (model, cfg, ids, trajs, embeddings, codes, dead, next_id) = engine.snapshot_parts();
    let entries = (0..ids.len())
        .filter(|&s| !dead[s])
        .map(|s| EntryRef {
            id: ids[s],
            traj: &trajs[s],
            embedding: &embeddings[s],
            code: &codes[s],
        })
        .collect();
    encode_view(&SnapshotView { model, cfg, entries, next_id })
}

pub(crate) fn encode_view(view: &SnapshotView<'_>) -> Result<Vec<u8>, EngineError> {
    let (model, cfg, next_id) = (view.model, view.cfg, view.next_id);
    let spec = model.spec();
    let mut w = PayloadWriter::new();

    // Model section.
    let mc = &spec.cfg;
    w.u64(mc.dim as u64);
    w.u64(mc.blocks as u64);
    w.u64(mc.heads as u64);
    w.u64(mc.grid_dim as u64);
    w.u8(match mc.readout {
        Readout::LowerBound => 0,
        Readout::Mean => 1,
        Readout::Cls => 2,
    });
    w.u8(u8::from(mc.use_grids));
    w.u8(u8::from(mc.use_rev_aug));
    w.f64(mc.fine_cell_m);
    w.f64(spec.norm.mean_x);
    w.f64(spec.norm.mean_y);
    w.f64(spec.norm.std_x);
    w.f64(spec.norm.std_y);
    w.f32(spec.beta);
    match &spec.grid {
        Some((gspec, emb, _cache)) => {
            let dec = emb.as_decomposed().ok_or_else(|| {
                EngineError::SnapshotUnsupported(
                    "grid channel uses a non-decomposed embedding (e.g. Node2vec); \
                     only decomposed per-axis tables serialize"
                        .into(),
                )
            })?;
            w.u8(1);
            let bb = gspec.bbox();
            w.f64(bb.min_x);
            w.f64(bb.min_y);
            w.f64(bb.max_x);
            w.f64(bb.max_y);
            w.f64(gspec.cell_size());
            let (dim, nx, ny, ex, ey) = dec.raw_parts();
            w.u64(dim as u64);
            w.u64(nx as u64);
            w.u64(ny as u64);
            write_f32s(&mut w, ex);
            write_f32s(&mut w, ey);
        }
        None => w.u8(0),
    }
    w.bytes(&model.save_bytes());

    // Engine section.
    w.u64(cfg.mih_tables as u64);
    w.u8(match cfg.euclidean_backend {
        EuclideanBackend::BruteForce => 0,
        EuclideanBackend::VpTree => 1,
    });
    w.u64(cfg.encode_threads as u64);
    w.u64(cfg.rebuild_slack as u64);
    w.f64(cfg.max_delta_fraction);
    w.f64(cfg.max_dead_fraction);
    w.u64(next_id);

    // Corpus section: live entries only, in ascending-id order.
    w.u64(view.entries.len() as u64);
    for e in &view.entries {
        w.u64(e.id);
        w.u64(e.traj.points.len() as u64);
        for p in &e.traj.points {
            w.f64(p.x);
            w.f64(p.y);
        }
        write_f32s(&mut w, e.embedding);
        w.u64(e.code.len() as u64);
        w.u64(e.code.words().len() as u64);
        for &word in e.code.words() {
            w.u64(word);
        }
    }
    Ok(encode_container(MAGIC, VERSION, &w.into_payload()))
}

pub(crate) fn decode(bytes: &[u8]) -> Result<Traj2HashEngine, EngineError> {
    let d = decode_parts(bytes)?;
    Traj2HashEngine::from_loaded(d.model, d.cfg, d.ids, d.trajs, d.embeddings, d.codes, d.next_id)
}

pub(crate) fn decode_parts(bytes: &[u8]) -> Result<DecodedSnapshot, EngineError> {
    let (_, payload) = decode_container(bytes, MAGIC, VERSION)?;
    let mut r = PayloadReader::new(payload);

    // Model section.
    let dim = r.u64_usize("model dim")?;
    let blocks = r.u64_usize("block count")?;
    let heads = r.u64_usize("head count")?;
    let grid_dim = r.u64_usize("grid dim")?;
    let readout = match r.u8()? {
        0 => Readout::LowerBound,
        1 => Readout::Mean,
        2 => Readout::Cls,
        t => return Err(malformed(format!("bad readout tag {t}"))),
    };
    let use_grids = read_bool(&mut r, "use_grids")?;
    let use_rev_aug = read_bool(&mut r, "use_rev_aug")?;
    let fine_cell_m = r.f64()?;
    let cfg = ModelConfig { dim, blocks, heads, grid_dim, readout, use_grids, use_rev_aug, fine_cell_m };
    let norm = traj_data::NormStats {
        mean_x: r.f64()?,
        mean_y: r.f64()?,
        std_x: r.f64()?,
        std_y: r.f64()?,
    };
    let beta = r.f32()?;
    let grid_tag = r.u8()?;
    let grid = match grid_tag {
        0 => None,
        1 => {
            let bbox = BoundingBox {
                min_x: r.f64()?,
                min_y: r.f64()?,
                max_x: r.f64()?,
                max_y: r.f64()?,
            };
            let cell_size = r.f64()?;
            if !cell_size.is_finite() || cell_size <= 0.0 {
                return Err(malformed(format!("bad grid cell size {cell_size}")));
            }
            let edim = r.u64_usize("grid embedding dim")?;
            let nx = r.u64_usize("grid nx")?;
            let ny = r.u64_usize("grid ny")?;
            let ex = read_f32s(&mut r)?;
            let ey = read_f32s(&mut r)?;
            let emb = DecomposedGridEmbedding::from_raw_parts(edim, nx, ny, ex, ey)
                .map_err(malformed)?;
            let gspec = GridSpec::new(bbox, cell_size);
            if gspec.nx() != nx || gspec.ny() != ny {
                return Err(malformed(format!(
                    "grid spec derives {}x{} cells but tables cover {nx}x{ny}",
                    gspec.nx(),
                    gspec.ny()
                )));
            }
            let emb: Arc<dyn GridEmbedding + Send + Sync> = Arc::new(emb);
            Some((gspec, emb, GridInputCache::default()))
        }
        t => return Err(malformed(format!("bad grid tag {t}"))),
    };
    if use_grids != grid.is_some() {
        return Err(malformed("grid presence disagrees with use_grids"));
    }
    let params_blob = r.blob()?;
    let spec = ModelSpec { cfg, norm, grid, beta };
    let model = Traj2Hash::from_spec_bytes(&spec, &params_blob).map_err(malformed)?;

    // Engine section.
    let engine_cfg = EngineConfig {
        mih_tables: r.u64_usize("mih tables")?,
        euclidean_backend: match r.u8()? {
            0 => EuclideanBackend::BruteForce,
            1 => EuclideanBackend::VpTree,
            t => return Err(malformed(format!("bad euclidean backend tag {t}"))),
        },
        encode_threads: r.u64_usize("encode threads")?,
        rebuild_slack: r.u64_usize("rebuild slack")?,
        max_delta_fraction: r.f64()?,
        max_dead_fraction: r.f64()?,
    };
    let next_id = r.u64()?;

    // Corpus section.
    let n = r.len_prefix(8 * 4)?;
    let mut ids = Vec::with_capacity(n);
    let mut trajs = Vec::with_capacity(n);
    let mut embeddings = Vec::with_capacity(n);
    let mut codes = Vec::with_capacity(n);
    for e in 0..n {
        let id = r.u64()?;
        if let Some(&prev) = ids.last() {
            if id <= prev {
                return Err(malformed(format!("entry {e}: id {id} not ascending after {prev}")));
            }
        }
        if id >= next_id {
            return Err(malformed(format!("entry {e}: id {id} >= next_id {next_id}")));
        }
        let np = r.len_prefix(16)?;
        let mut points = Vec::with_capacity(np);
        for _ in 0..np {
            points.push(Point {
                x: r.f64()?,
                y: r.f64()?,
            });
        }
        let embedding = read_f32s(&mut r)?;
        if embedding.len() != dim {
            return Err(malformed(format!(
                "entry {e}: embedding width {} != model dim {dim}",
                embedding.len()
            )));
        }
        let bits = r.u64_usize("code width")?;
        if bits != dim {
            return Err(malformed(format!("entry {e}: code width {bits} != model dim {dim}")));
        }
        let nw = r.len_prefix(8)?;
        let mut words = Vec::with_capacity(nw);
        for _ in 0..nw {
            words.push(r.u64()?);
        }
        let code = BinaryCode::from_words(words, bits).map_err(malformed)?;
        ids.push(id);
        trajs.push(Trajectory { points });
        embeddings.push(embedding);
        codes.push(code);
    }
    r.expect_end()?;
    Ok(DecodedSnapshot { model, cfg: engine_cfg, ids, trajs, embeddings, codes, next_id })
}

fn read_bool(r: &mut PayloadReader, what: &str) -> Result<bool, EngineError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(malformed(format!("bad bool tag {t} for {what}"))),
    }
}
