//! Per-query tracing: the request-level observability layer on top of
//! `traj-obs`'s aggregate metrics.
//!
//! A [`TraceCtx`] travels with one query from the public entry point
//! through the fan-out, the per-shard search core, and the top-k merge,
//! stamping each phase on a monotone step clock and collecting one
//! [`ShardTraceRow`] per shard (pinned publish seq, candidate count,
//! fallback taxonomy). [`TraceCtx::finish`] seals it into a
//! [`QueryTrace`], which can be offered to the flight recorder
//! (`traj_obs::flight`) as a tail exemplar.
//!
//! ## Disabled cost
//!
//! Tracing is active only while an obs recorder or a flight recorder is
//! installed ([`tracing_enabled`]): two relaxed atomic loads. A
//! disabled [`TraceCtx`] allocates nothing (empty `Vec`s), takes no
//! query id, and every `step` is a branch on a local bool — the
//! `perf_smoke` overhead gate holds the whole disabled path under 1% of
//! the query budget. Query *results* are identical either way; tracing
//! observes, it never steers.

use crate::engine::Strategy;
use std::sync::atomic::{AtomicU64, Ordering};
use traj_obs::Field;

/// Process-wide query id allocator: ids are unique across every engine
/// and reader in the process, so flight dumps interleaving facade and
/// sharded traces stay unambiguous. Relaxed is enough — uniqueness
/// comes from `fetch_add`, no other memory is published under it.
static QUERY_IDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide engine instance id allocator: each engine (facade or
/// shard set) gets one, so offline validation can group per-shard
/// publish-seq monotonicity checks by instance instead of conflating
/// seqs from unrelated engines. Relaxed for the same reason as
/// `QUERY_IDS`.
static INSTANCE_IDS: AtomicU64 = AtomicU64::new(0);

/// Allocates a trace instance id for a newly built engine.
pub(crate) fn next_instance_id() -> u64 {
    INSTANCE_IDS.fetch_add(1, Ordering::Relaxed)
}

/// True when any trace consumer is installed: an obs recorder
/// (aggregates + JSONL) or a flight recorder (tail exemplars). Two
/// relaxed atomic loads — the disabled fast path of every query.
pub(crate) fn tracing_enabled() -> bool {
    traj_obs::enabled() || traj_obs::flight::installed()
}

/// The per-query trace context: a query id plus a monotone step clock,
/// created at the public entry point and threaded through fan-out,
/// per-shard search, and merge.
pub struct TraceCtx {
    active: bool,
    query_id: u64,
    clock: u64,
    steps: Vec<(u64, &'static str)>,
    shards: Vec<ShardTraceRow>,
}

impl TraceCtx {
    /// A context for one query: live (with a fresh query id) when a
    /// trace consumer is installed, inert otherwise.
    pub fn new() -> TraceCtx {
        if !tracing_enabled() {
            return TraceCtx::disabled();
        }
        TraceCtx {
            active: true,
            query_id: QUERY_IDS.fetch_add(1, Ordering::Relaxed),
            clock: 0,
            steps: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// An inert context: every operation is a branch on a bool, nothing
    /// allocates, and [`TraceCtx::finish`] yields an empty trace.
    pub fn disabled() -> TraceCtx {
        TraceCtx { active: false, query_id: 0, clock: 0, steps: Vec::new(), shards: Vec::new() }
    }

    /// Whether this context is recording.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The process-unique query id (0 when inert).
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Stamps a phase label at the current step clock and advances the
    /// clock. No-op when inert.
    pub fn step(&mut self, label: &'static str) {
        if self.active {
            self.steps.push((self.clock, label));
            self.clock += 1;
        }
    }

    /// A per-shard sub-trace sharing this context's activity flag, for
    /// handing into the shard search core (possibly on another thread).
    pub fn shard_trace(&self) -> ShardTrace {
        ShardTrace::new(self.active)
    }

    /// Appends one shard's outcome row. No-op when inert.
    pub fn push_shard(&mut self, row: ShardTraceRow) {
        if self.active {
            self.shards.push(row);
        }
    }

    /// Seals the context into a [`QueryTrace`].
    pub fn finish(self, strategy: Strategy, seconds: f64) -> QueryTrace {
        QueryTrace {
            active: self.active,
            query_id: self.query_id,
            strategy,
            seconds,
            steps: self.steps,
            shards: self.shards,
        }
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx::new()
    }
}

/// A per-shard sub-trace: the taxonomy steps one shard's search took.
/// Cheap enough to hand into scoped fan-out threads by `&mut`.
pub struct ShardTrace {
    active: bool,
    steps: Vec<&'static str>,
}

impl ShardTrace {
    /// A sub-trace; records only when `active`.
    pub fn new(active: bool) -> ShardTrace {
        ShardTrace { active, steps: Vec::new() }
    }

    /// Stamps one taxonomy label. No-op when inactive.
    pub fn step(&mut self, label: &'static str) {
        if self.active {
            self.steps.push(label);
        }
    }

    /// Consumes the sub-trace into its label sequence.
    pub fn into_steps(self) -> Vec<&'static str> {
        self.steps
    }
}

/// One shard's contribution to a query: the generation the reader
/// pinned, what the search path did, and the taxonomy steps it took.
#[derive(Debug, Clone)]
pub struct ShardTraceRow {
    /// Shard index within the fan-out (0 for the unsharded facade).
    pub shard: usize,
    /// The pinned state's publish sequence (the facade reports its
    /// rebuild generation here — its single-writer analogue).
    pub publish_seq: u64,
    /// The pinned state's rebuild generation.
    pub generation: u64,
    /// Whether the pinned state was serving degraded (scan-only).
    pub degraded: bool,
    /// Candidates this shard considered before its local top-k.
    pub candidates: usize,
    /// The shard's index could not answer and a full scan did.
    pub fallback: bool,
    /// A Hybrid radius-2 ball came up short and spilled into a scan.
    pub spill: bool,
    /// Taxonomy labels from the shard search core, in order.
    pub steps: Vec<&'static str>,
}

/// A sealed per-query trace: everything the flight recorder retains for
/// a tail exemplar.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Whether the trace actually recorded (false = tracing disabled).
    pub active: bool,
    /// Process-unique query id.
    pub query_id: u64,
    /// The strategy that served the query.
    pub strategy: Strategy,
    /// End-to-end wall-clock seconds.
    pub seconds: f64,
    /// `(clock, label)` phase steps, strictly monotone in clock.
    pub steps: Vec<(u64, &'static str)>,
    /// One row per shard in fan-out order.
    pub shards: Vec<ShardTraceRow>,
}

fn join_u64(vals: impl Iterator<Item = u64>) -> String {
    let mut out = String::new();
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

impl QueryTrace {
    /// Number of shards the query fanned out across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total candidates considered across all shards.
    pub fn candidates(&self) -> usize {
        self.shards.iter().map(|r| r.candidates).sum()
    }

    /// The structured flight-recorder fields for this trace. `engine`
    /// labels the serving topology (`"facade"` / `"sharded"`),
    /// `instance` the engine's process-unique trace instance id —
    /// together with the shard count they key the offline per-shard
    /// publish-seq monotonicity check.
    pub fn flight_fields(&self, engine: &'static str, instance: u64) -> Vec<Field> {
        let steps = {
            let mut out = String::new();
            for (i, (c, l)) in self.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
                out.push(':');
                out.push_str(l);
            }
            out
        };
        let shard_steps = self
            .shards
            .iter()
            .map(|r| r.steps.join("+"))
            .collect::<Vec<_>>()
            .join(";");
        vec![
            ("query_id", self.query_id.into()),
            ("strategy", self.strategy.name().into()),
            ("engine", engine.into()),
            ("instance", instance.into()),
            ("shards", self.shards.len().into()),
            ("candidates", self.candidates().into()),
            ("fallback", self.shards.iter().any(|r| r.fallback).into()),
            ("degraded", self.shards.iter().any(|r| r.degraded).into()),
            ("spill", self.shards.iter().any(|r| r.spill).into()),
            ("steps", steps.into()),
            ("shard_seqs", join_u64(self.shards.iter().map(|r| r.publish_seq)).into()),
            ("shard_gens", join_u64(self.shards.iter().map(|r| r.generation)).into()),
            (
                "shard_candidates",
                join_u64(self.shards.iter().map(|r| r.candidates as u64)).into(), // lint: allow(lossy-cast) — candidate counts fit u64
            ),
            ("shard_steps", shard_steps.into()),
        ]
    }

    /// Offers this trace to the installed flight recorder as a tail
    /// exemplar (no-op when tracing was disabled or no flight recorder
    /// is installed; the field vector is only built when the latency
    /// qualifies for capture).
    pub fn offer_to_flight(&self, engine: &'static str, instance: u64) {
        if !self.active {
            return;
        }
        traj_obs::flight::offer(self.seconds, || {
            ("flight.trace", self.flight_fields(engine, instance))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_context_records_nothing() {
        // No recorder, no flight recorder on this thread.
        let mut ctx = TraceCtx::disabled();
        ctx.step("embed");
        ctx.step("fanout");
        let mut st = ctx.shard_trace();
        st.step("indexed");
        assert!(st.into_steps().is_empty());
        ctx.push_shard(ShardTraceRow {
            shard: 0,
            publish_seq: 1,
            generation: 1,
            degraded: false,
            candidates: 5,
            fallback: false,
            spill: false,
            steps: Vec::new(),
        });
        let qt = ctx.finish(Strategy::Mih, 0.001);
        assert!(!qt.active);
        assert!(qt.steps.is_empty());
        assert_eq!(qt.shard_count(), 0);
        assert_eq!(qt.candidates(), 0);
    }

    #[test]
    fn active_context_stamps_a_monotone_clock_and_unique_ids() {
        let rec = Arc::new(traj_obs::InMemoryRecorder::default());
        traj_obs::with_local_recorder(rec, || {
            let mut a = TraceCtx::new();
            let mut b = TraceCtx::new();
            assert!(a.active() && b.active());
            assert_ne!(a.query_id(), b.query_id());
            a.step("embed");
            a.step("fanout");
            a.step("merge");
            let mut st = a.shard_trace();
            st.step("indexed");
            a.push_shard(ShardTraceRow {
                shard: 0,
                publish_seq: 3,
                generation: 2,
                degraded: false,
                candidates: 11,
                fallback: false,
                spill: false,
                steps: st.into_steps(),
            });
            b.step("empty");
            let qa = a.finish(Strategy::Table, 0.5);
            let clocks: Vec<u64> = qa.steps.iter().map(|&(c, _)| c).collect();
            assert_eq!(clocks, vec![0, 1, 2]);
            assert_eq!(qa.shard_count(), 1);
            assert_eq!(qa.candidates(), 11);
            let fields = qa.flight_fields("sharded", 7);
            let get = |key: &str| {
                fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v.to_string())
            };
            assert_eq!(get("steps").as_deref(), Some("0:embed,1:fanout,2:merge"));
            assert_eq!(get("shard_seqs").as_deref(), Some("3"));
            assert_eq!(get("shard_gens").as_deref(), Some("2"));
            assert_eq!(get("shard_candidates").as_deref(), Some("11"));
            assert_eq!(get("shard_steps").as_deref(), Some("indexed"));
            assert_eq!(get("engine").as_deref(), Some("sharded"));
            assert_eq!(get("instance").as_deref(), Some("7"));
        });
    }
}
