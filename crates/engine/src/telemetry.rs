//! Engine-owned telemetry: per-strategy latency/candidate histograms
//! and lifecycle counters.
//!
//! Unlike the global `traj_obs` recorder (which the *application*
//! installs), [`EngineTelemetry`] is always collected — it is part of
//! the engine's state, like [`EngineStats`](crate::EngineStats) — so
//! bench binaries and `microprof` read one source of truth whether or
//! not a recorder is installed. When a recorder *is* installed the same
//! numbers are mirrored to it, which is how the per-strategy histograms
//! reach the JSONL export.

use crate::engine::Strategy;
use traj_obs::Histogram;

/// Query-path counters and histograms for one [`Strategy`].
#[derive(Debug, Clone, Default)]
pub struct StrategyTelemetry {
    /// Queries answered by this strategy.
    pub queries: u64,
    /// Queries answered by a full linear scan because the index could
    /// not serve them (engine degraded, or the structure rejected the
    /// query) — *not* counted for strategies that scan by design.
    pub linear_fallbacks: u64,
    /// Queries that ran while the engine was in degraded mode.
    pub degraded_queries: u64,
    /// Wall-clock per query, in seconds.
    pub latency: Histogram,
    /// Candidates considered before top-k selection.
    pub candidates: Histogram,
}

/// Everything the engine measures about itself. Obtain a snapshot with
/// [`Traj2HashEngine::telemetry`](crate::Traj2HashEngine::telemetry).
#[derive(Debug, Clone, Default)]
pub struct EngineTelemetry {
    /// Per-strategy query telemetry, in [`Strategy::ALL`] order.
    pub strategies: [StrategyTelemetry; 5],
    /// Trajectories inserted since construction.
    pub inserts: u64,
    /// Trajectories tombstoned since construction.
    pub removes: u64,
    /// Index rebuilds (including the one at construction).
    pub rebuilds: u64,
    /// Rebuilds that also compacted tombstoned slots away.
    pub compactions: u64,
    /// Rebuilds that failed and left the engine in degraded mode.
    pub degraded_rebuilds: u64,
    /// `Hybrid` queries whose radius-2 ball came up short and spilled
    /// into a full scan (designed behaviour, tracked separately from
    /// [`StrategyTelemetry::linear_fallbacks`]).
    pub hybrid_spills: u64,
    /// Tombstone over-fetch margin applied per indexed query.
    pub overfetch: Histogram,
    /// Snapshots written.
    pub snapshot_saves: u64,
    /// Total snapshot bytes written.
    pub snapshot_bytes: u64,
    /// Live refreshes: a replacement engine's state hot-swapped in via
    /// [`Traj2HashEngine::hot_swap`](crate::Traj2HashEngine::hot_swap).
    pub hot_swaps: u64,
    /// Degraded → healthy transitions performed by
    /// [`Traj2HashEngine::recover`](crate::Traj2HashEngine::recover).
    pub recoveries: u64,
}

impl EngineTelemetry {
    /// The telemetry bucket for `strategy`.
    pub fn strategy(&self, strategy: Strategy) -> &StrategyTelemetry {
        &self.strategies[strategy.index()]
    }

    /// Total queries across all strategies.
    pub fn total_queries(&self) -> u64 {
        self.strategies.iter().map(|s| s.queries).sum()
    }

    /// Total linear-scan fallbacks across all strategies.
    pub fn total_linear_fallbacks(&self) -> u64 {
        self.strategies.iter().map(|s| s.linear_fallbacks).sum()
    }

    /// Renders a compact human-readable block, one row per strategy
    /// plus the lifecycle counters.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("== engine telemetry ==\n");
        for (i, s) in Strategy::ALL.iter().enumerate() {
            let t = &self.strategies[i];
            if t.queries == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<15} n={:<6} p50={:>9.1}us p99={:>9.1}us cand(p50)={:<7.0} fallbacks={} degraded={}",
                s.name(),
                t.queries,
                t.latency.p50() * 1e6,
                t.latency.p99() * 1e6,
                t.candidates.p50(),
                t.linear_fallbacks,
                t.degraded_queries,
            );
        }
        let _ = writeln!(
            out,
            "  inserts={} removes={} rebuilds={} compactions={} degraded_rebuilds={} hybrid_spills={}",
            self.inserts,
            self.removes,
            self.rebuilds,
            self.compactions,
            self.degraded_rebuilds,
            self.hybrid_spills,
        );
        if self.snapshot_saves > 0 {
            let _ = writeln!(
                out,
                "  snapshot_saves={} snapshot_bytes={}",
                self.snapshot_saves, self.snapshot_bytes
            );
        }
        if self.hot_swaps > 0 || self.recoveries > 0 {
            let _ = writeln!(out, "  hot_swaps={} recoveries={}", self.hot_swaps, self.recoveries);
        }
        out
    }
}

/// Per-query diagnostics returned by
/// [`Traj2HashEngine::query_with_info`](crate::Traj2HashEngine::query_with_info).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryInfo {
    /// The strategy that served the query.
    pub strategy: Strategy,
    /// True when the engine was in degraded (index-less) mode.
    pub degraded: bool,
    /// True when the answer came from a full linear scan because the
    /// index could not serve the query.
    pub linear_fallback: bool,
    /// Candidates considered before top-k selection.
    pub candidates: usize,
    /// Tombstone over-fetch margin the index path applied (0 on scan
    /// paths).
    pub overfetch: usize,
    /// Wall-clock seconds spent answering.
    pub seconds: f64,
    /// Shards the query fanned out across (1 for the single-shard
    /// facade).
    pub shards: usize,
    /// Seconds spent fanning the query out across shards (0 for the
    /// single-shard facade, where there is no fan-out stage).
    pub fanout_seconds: f64,
    /// Seconds spent merging per-shard hits through the shared top-k
    /// helper (0 for the single-shard facade).
    pub merge_seconds: f64,
}
