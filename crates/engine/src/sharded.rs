//! The sharded, concurrently readable serving engine.
//!
//! [`Traj2HashEngine`](crate::Traj2HashEngine) serves the five Section
//! V-E strategies behind one `&mut self` facade: one writer, zero
//! concurrent readers. [`ShardedEngine`] lifts the same semantics onto
//! every core:
//!
//! * the corpus is partitioned across N shards by stable id
//!   (`id % shards`, so the mapping survives compaction and reload);
//! * each shard's state is an **immutable per-generation snapshot**
//!   ([`crate::shard::ShardState`]) published behind an `Arc` swap —
//!   readers pin a generation with one brief read-lock `Arc::clone`,
//!   then search entirely lock-free; writers build the next state off
//!   to the side and publish it atomically;
//! * every query fans out across shards (sequentially or on a scoped
//!   thread pool, [`ShardConfig::fan_out_threads`]) and per-shard hits
//!   merge through the shared NaN-sound `topk` helper under the same
//!   `(distance, id)` total order the facade uses — so sharded results
//!   are **bit-for-bit identical** to unsharded, a property the
//!   `shard_parity` proptest suite pins down;
//! * rebuild/compaction is **per shard**: one shard compacting never
//!   blocks reads on the others, and even the compacting shard keeps
//!   serving its previous generation until the new one is published;
//! * [`ShardedEngine::query_many`] answers request batches, amortizing
//!   query encoding with one fused matmul per dense layer over the
//!   whole batch ([`Traj2Hash::embed_batch`]).
//!
//! ## Reading from other threads
//!
//! The model's parameters live in `Rc<RefCell<..>>` cells (the autodiff
//! tape mutates them in place during training), so a [`Traj2HashEngine`]
//! — and the writer half of [`ShardedEngine`] — is not `Sync`. Readers
//! therefore get their own byte-identical model replica: call
//! [`ShardedEngine::reader`] for a [`ReaderSpec`] (cheap, `Send`), move
//! it into the reader thread, and [`ReaderSpec::into_reader`] builds the
//! replica locally. A [`ShardReader`] shares the engine's shard set and
//! telemetry, refreshes its replica automatically after a hot swap, and
//! answers queries bit-identically to the writer.

use crate::cell::{PublishCell, Sequenced};
use crate::engine::{
    tlock, EngineConfig, EngineStats, Hit, Strategy, Traj2HashEngine,
};
use crate::error::EngineError;
use crate::shard::{self, ShardState};
use crate::snapshot::{self, EntryRef, SnapshotView};
use crate::telemetry::{EngineTelemetry, QueryInfo};
use crate::trace::{self, QueryTrace, ShardTrace, ShardTraceRow, TraceCtx};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use traj_data::Trajectory;
use traj_index::search::Hit as SlotHit;
use traj_index::topk::top_k_hits;
use traj_index::BinaryCode;
use traj2hash::{ModelSpec, Traj2Hash};
use tinynn::Tensor;

/// Pre-encoded entries of one shard (or of the whole corpus, when
/// flattened): parallel `(ids, trajs, embeddings, codes)` vectors.
type Entries = (Vec<u64>, Vec<Trajectory>, Vec<Vec<f32>>, Vec<BinaryCode>);

/// Partitions ascending-id entries across `n_shards` by `id % n_shards`.
fn partition(entries: Entries, n_shards: usize) -> Vec<Entries> {
    let (ids, trajs, embeddings, codes) = entries;
    let mut parts: Vec<Entries> = (0..n_shards).map(|_| Default::default()).collect();
    for (((id, traj), embedding), code) in ids.into_iter().zip(trajs).zip(embeddings).zip(codes)
    {
        // lint: allow(lossy-cast) — residue mod the shard count, which is a small usize
        let p = &mut parts[(id % n_shards as u64) as usize];
        p.0.push(id);
        p.1.push(traj);
        p.2.push(embedding);
        p.3.push(code);
    }
    parts
}

/// Sharding knobs, on top of the per-shard [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards the corpus partitions into (`id % shards`).
    pub shards: usize,
    /// Scoped worker threads a single query fans out on. `0` or `1`
    /// searches the shards sequentially on the calling thread — the
    /// right default when throughput comes from many reader threads
    /// each running their own queries.
    pub fan_out_threads: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 4, fan_out_threads: 0 }
    }
}

impl ShardConfig {
    fn validate(&self) -> Result<(), EngineError> {
        if self.shards == 0 {
            return Err(EngineError::InvalidConfig("shards must be >= 1".into()));
        }
        Ok(())
    }
}

/// The `Send + Sync` recipe readers rebuild their model replica from.
/// Published behind a [`PublishCell`] whose sequence (`version`) bumps
/// on every hot swap, so readers know to refresh their replica.
pub struct ModelBlueprint {
    spec: ModelSpec,
    values: Vec<Tensor>,
    version: u64,
}

impl ModelBlueprint {
    /// Captures `model`'s spec and parameter values. The version starts
    /// at 0 and is stamped by the cell on publish.
    pub fn of(model: &Traj2Hash) -> ModelBlueprint {
        ModelBlueprint { spec: model.spec(), values: model.params.clone_values(), version: 0 }
    }

    /// Builds a byte-identical model replica from the blueprint.
    pub fn instantiate(&self) -> Traj2Hash {
        Traj2Hash::from_spec(&self.spec, &self.values)
    }

    /// The blueprint's publish version (bumps on every hot swap).
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Sequenced for ModelBlueprint {
    fn seq(&self) -> u64 {
        self.version
    }
    fn set_seq(&mut self, seq: u64) {
        self.version = seq;
    }
}

/// One shard's publish point: readers pin the current generation, the
/// writer swaps in the next. The cell stamps the strictly monotone
/// per-shard `publish_seq` the concurrency and loomlet suites assert
/// never moves backwards under a pinned reader.
pub type ShardCell = PublishCell<ShardState>;

/// Everything shared between the writer and its readers: the shard
/// cells, the cumulative telemetry, and the model blueprint.
struct ShardSet {
    cells: Vec<ShardCell>,
    telemetry: Mutex<EngineTelemetry>,
    model: PublishCell<ModelBlueprint>,
    /// Process-unique trace instance id: flight-recorder traces carry
    /// it so offline validation can group per-shard publish-seq checks
    /// by the engine that produced them.
    trace_instance: u64,
}

impl ShardSet {
    fn pin_all(&self) -> Vec<Arc<ShardState>> {
        self.cells.iter().map(|c| c.pin()).collect()
    }
}

/// A pinned, fully consistent view of every shard at one instant. The
/// corpus it describes cannot change underneath the holder — that is
/// the generation-pinning read protocol.
pub struct PinnedView {
    states: Vec<Arc<ShardState>>,
}

impl PinnedView {
    /// Per-shard publish sequence numbers (strictly monotone per shard).
    pub fn publish_seqs(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.publish_seq).collect()
    }

    /// Per-shard rebuild generation counters.
    pub fn generations(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.generation).collect()
    }

    /// Live entries across all shards.
    pub fn live(&self) -> usize {
        self.states.iter().map(|s| s.live()).sum()
    }

    /// Verifies every structural invariant of every pinned shard state
    /// (array lengths, tombstone counts, slot ordering, index
    /// coverage). A torn publish would trip this; the concurrency suite
    /// runs it continuously under writer churn.
    pub fn check_consistent(&self) -> Result<(), String> {
        for (i, s) in self.states.iter().enumerate() {
            s.check_consistent().map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

/// Aggregated fan-out outcome for one query.
struct FanInfo {
    candidates: usize,
    fallback: bool,
    degraded: bool,
    spill: bool,
    overfetch: usize,
    fanout_seconds: f64,
    merge_seconds: f64,
}

/// Searches every pinned shard and merges to the global top-k. Hits are
/// merged under the `(distance, id)` total order — identical to the
/// facade's `(distance, slot)` order because facade slots are ascending
/// in id — so the result is bit-for-bit what a single-shard engine
/// returns.
fn fan_out(
    states: &[Arc<ShardState>],
    strategy: Strategy,
    q_emb: &[f32],
    q_code: &BinaryCode,
    k: usize,
    threads: usize,
    trace: &mut TraceCtx,
) -> (Vec<Hit>, FanInfo) {
    let t0 = Instant::now();
    trace.step("fanout");
    let tracing = trace.active();
    let n = states.len();
    let mut results: Vec<(Vec<SlotHit>, shard::PathInfo, ShardTrace)> = (0..n)
        .map(|_| (Vec::new(), shard::PathInfo::scan(0, false), ShardTrace::new(tracing)))
        .collect();
    if threads <= 1 || n <= 1 {
        for (st, slot) in states.iter().zip(results.iter_mut()) {
            let (hits, path) = shard::search(&st.ctx(), strategy, q_emb, q_code, k, &mut slot.2);
            slot.0 = hits;
            slot.1 = path;
        }
    } else {
        let workers = threads.min(n);
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (ci, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                scope.spawn(move || {
                    for (j, slot) in out_chunk.iter_mut().enumerate() {
                        let st = &states[base + j];
                        let (hits, path) =
                            shard::search(&st.ctx(), strategy, q_emb, q_code, k, &mut slot.2);
                        slot.0 = hits;
                        slot.1 = path;
                    }
                });
            }
        });
    }
    let fanout_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    trace.step("merge");
    let mut merged: Vec<SlotHit> = Vec::new();
    let mut info = FanInfo {
        candidates: 0,
        fallback: false,
        degraded: false,
        spill: false,
        overfetch: 0,
        fanout_seconds,
        merge_seconds: 0.0,
    };
    for (si, (st, (hits, path, strace))) in states.iter().zip(results).enumerate() {
        let shard_degraded = st.degraded();
        info.candidates += path.candidates;
        info.fallback |= path.fallback;
        info.degraded |= shard_degraded;
        info.spill |= path.spill;
        if !shard_degraded && !path.fallback {
            info.overfetch += st.dead_in_indexed;
        }
        if tracing {
            trace.push_shard(ShardTraceRow {
                shard: si,
                publish_seq: st.publish_seq,
                generation: st.generation,
                degraded: shard_degraded,
                candidates: path.candidates,
                fallback: path.fallback,
                spill: path.spill,
                steps: strace.into_steps(),
            });
        }
        // Re-key per-shard slot hits by stable id: `top_k_hits` breaks
        // distance ties by ascending index, so keying by id reproduces
        // the facade's ascending-slot (== ascending-id) tie-break.
        merged.extend(hits.into_iter().map(|h| SlotHit {
            // lint: allow(lossy-cast) — stable ids are assigned from a usize-ranged monotone counter
            index: st.id_at(h.index) as usize,
            distance: h.distance,
        }));
    }
    let top = top_k_hits(merged, k);
    let hits = top
        .into_iter()
        .map(|h| Hit { id: h.index as u64, distance: h.distance })
        .collect();
    info.merge_seconds = t1.elapsed().as_secs_f64();
    (hits, info)
}

/// Folds one answered query into telemetry and the obs recorder, seals
/// the trace, and offers it to the flight recorder as a tail-latency
/// exemplar. Returns the [`QueryInfo`] and the sealed [`QueryTrace`].
fn record_query(
    set: &ShardSet,
    strategy: Strategy,
    k_shards: usize,
    info: &FanInfo,
    seconds: f64,
    mut trace: TraceCtx,
) -> (QueryInfo, QueryTrace) {
    let q = QueryInfo {
        strategy,
        degraded: info.degraded,
        linear_fallback: info.fallback,
        candidates: info.candidates,
        overfetch: info.overfetch,
        seconds,
        shards: k_shards,
        fanout_seconds: info.fanout_seconds,
        merge_seconds: info.merge_seconds,
    };
    {
        let mut t = tlock(&set.telemetry);
        let s = &mut t.strategies[strategy.index()];
        s.queries += 1;
        s.latency.record(seconds);
        s.candidates.record(info.candidates as f64);
        if info.fallback {
            s.linear_fallbacks += 1;
        }
        if info.degraded {
            s.degraded_queries += 1;
        }
        if info.spill {
            t.hybrid_spills += 1;
        }
        t.overfetch.record(info.overfetch as f64);
    }
    if traj_obs::enabled() {
        traj_obs::observe_secs(strategy.metric_name(), seconds);
        traj_obs::observe_value("engine.query.candidates", info.candidates as f64);
        traj_obs::observe_value("engine.query.overfetch", info.overfetch as f64);
        traj_obs::observe_secs("engine.query.fanout_secs", info.fanout_seconds);
        traj_obs::observe_secs("engine.query.merge_secs", info.merge_seconds);
        traj_obs::observe_value("engine.query.shards", k_shards as f64);
        if info.fallback {
            traj_obs::counter("engine.linear_fallbacks", 1);
        }
        if info.degraded {
            traj_obs::counter("engine.degraded_queries", 1);
        }
        if info.spill {
            traj_obs::counter("engine.hybrid_spills", 1);
        }
    }
    trace.step("record");
    let qt = trace.finish(strategy, seconds);
    qt.offer_to_flight("sharded", set.trace_instance);
    (q, qt)
}

fn empty_query_info(strategy: Strategy, degraded: bool, shards: usize) -> QueryInfo {
    QueryInfo {
        strategy,
        degraded,
        linear_fallback: false,
        candidates: 0,
        overfetch: 0,
        seconds: 0.0,
        shards,
        fanout_seconds: 0.0,
        merge_seconds: 0.0,
    }
}

/// The sharded, concurrently readable serving engine. Same search
/// semantics as [`Traj2HashEngine`] — bit-identical results on all five
/// strategies — plus lock-free multi-reader serving via
/// [`ShardedEngine::reader`] and batched [`ShardedEngine::query_many`].
pub struct ShardedEngine {
    model: Traj2Hash,
    cfg: EngineConfig,
    scfg: ShardConfig,
    set: Arc<ShardSet>,
    next_id: u64,
    generation: u64,
}

impl ShardedEngine {
    /// Builds a sharded engine over `corpus`; trajectories receive ids
    /// `0..corpus.len()` and land on shard `id % shards`.
    pub fn build(
        model: Traj2Hash,
        corpus: Vec<Trajectory>,
        cfg: EngineConfig,
        scfg: ShardConfig,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        scfg.validate()?;
        let embeddings = model.embed_all_with_threads(&corpus, cfg.encode_threads.max(1));
        let codes: Vec<BinaryCode> =
            embeddings.iter().map(|e| BinaryCode::from_floats(e)).collect();
        let n = corpus.len();
        let ids: Vec<u64> = (0..n as u64).collect();
        Self::from_parts(model, cfg, scfg, ids, corpus, embeddings, codes, n as u64)
    }

    /// Builds from a borrowed model (byte-identical replica via
    /// [`Traj2Hash::spec`]); the caller keeps the original.
    pub fn build_from(
        model: &Traj2Hash,
        corpus: Vec<Trajectory>,
        cfg: EngineConfig,
        scfg: ShardConfig,
    ) -> Result<Self, EngineError> {
        let replica = Traj2Hash::from_spec(&model.spec(), &model.params.clone_values());
        Self::build(replica, corpus, cfg, scfg)
    }

    /// Assembles the engine from pre-encoded entries in ascending-id
    /// order, distributing them across shards by `id % shards`.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        model: Traj2Hash,
        cfg: EngineConfig,
        scfg: ShardConfig,
        ids: Vec<u64>,
        trajs: Vec<Trajectory>,
        embeddings: Vec<Vec<f32>>,
        codes: Vec<BinaryCode>,
        next_id: u64,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        scfg.validate()?;
        let n_shards = scfg.shards;
        let cells: Vec<ShardCell> = partition((ids, trajs, embeddings, codes), n_shards)
            .into_iter()
            .map(|(ids, trajs, embeddings, codes)| {
                ShardCell::new(ShardState::build(ids, trajs, embeddings, codes, &cfg))
            })
            .collect();
        let set = Arc::new(ShardSet {
            cells,
            telemetry: Mutex::new(EngineTelemetry::default()),
            model: PublishCell::new(ModelBlueprint::of(&model)),
            trace_instance: trace::next_instance_id(),
        });
        {
            // Construction counts as each shard's first rebuild, like
            // the facade's build-time rebuild.
            let mut t = tlock(&set.telemetry);
            t.rebuilds += n_shards as u64;
        }
        Ok(ShardedEngine { model, cfg, scfg, set, next_id, generation: 1 })
    }

    fn shard_of(&self, id: u64) -> usize {
        // lint: allow(lossy-cast) — residue mod the shard count, which is a small usize
        (id % self.scfg.shards as u64) as usize
    }

    /// The writer's model (for direct embedding access).
    pub fn model(&self) -> &Traj2Hash {
        &self.model
    }

    /// The per-shard engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The sharding configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.scfg
    }

    /// Consumes the engine, returning the writer's model.
    pub fn into_model(self) -> Traj2Hash {
        self.model
    }

    /// Number of live trajectories across all shards.
    pub fn len(&self) -> usize {
        self.set.pin_all().iter().map(|s| s.live()).sum()
    }

    /// True when no live trajectory remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live ids in ascending order (collected across shards).
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .set
            .pin_all()
            .iter()
            .flat_map(|s| s.live_slots().into_iter().map(|(_, id)| id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// True when `id` refers to a live trajectory.
    pub fn contains(&self, id: u64) -> bool {
        self.set.cells[self.shard_of(id)].pin().slot_of(id).is_some()
    }

    /// The live trajectory with stable id `id` (cloned out of the
    /// pinned shard state).
    pub fn get(&self, id: u64) -> Option<Trajectory> {
        let state = self.set.cells[self.shard_of(id)].pin();
        state.slot_of(id).map(|s| state.traj_at(s).clone())
    }

    /// Cumulative telemetry (shared with every reader).
    pub fn telemetry(&self) -> EngineTelemetry {
        tlock(&self.set.telemetry).clone()
    }

    /// Aggregated lifecycle counters. `generation` is the engine-level
    /// swap/build counter; per-shard rebuild generations are visible
    /// through [`ShardedEngine::pin`].
    pub fn stats(&self) -> EngineStats {
        let states = self.set.pin_all();
        EngineStats {
            live: states.iter().map(|s| s.live()).sum(),
            indexed: states.iter().map(|s| s.indexed()).sum(),
            delta: states.iter().map(|s| s.slots() - s.indexed()).sum(),
            dead: states.iter().map(|s| s.dead_count).sum(),
            generation: self.generation,
            degraded: states.iter().any(|s| s.degraded()),
        }
    }

    /// Pins a consistent view of every shard (the generation-pinning
    /// read protocol, exposed for tests and diagnostics).
    pub fn pin(&self) -> PinnedView {
        PinnedView { states: self.set.pin_all() }
    }

    /// A `Send` handle for spawning readers on other threads.
    pub fn reader(&self) -> ReaderSpec {
        ReaderSpec { set: Arc::clone(&self.set) }
    }

    /// Top-k search over the live corpus; results are bit-identical to
    /// [`Traj2HashEngine::query`] on the same corpus and model.
    pub fn query(
        &self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<Vec<Hit>, EngineError> {
        self.query_with_info(q, k, strategy).map(|(hits, _)| hits)
    }

    /// [`query`](ShardedEngine::query) plus per-query diagnostics,
    /// including the per-shard fan-out and merge timings.
    pub fn query_with_info(
        &self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<(Vec<Hit>, QueryInfo), EngineError> {
        self.query_traced(q, k, strategy).map(|(hits, info, _)| (hits, info))
    }

    /// [`query_with_info`](ShardedEngine::query_with_info) plus the
    /// sealed per-query [`QueryTrace`]: per-shard pinned publish seqs,
    /// candidate counts, fallback taxonomy, and the fan-out/merge step
    /// clock. The trace is empty (inert) unless an obs recorder or a
    /// flight recorder is installed.
    pub fn query_traced(
        &self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<(Vec<Hit>, QueryInfo, QueryTrace), EngineError> {
        let states = self.set.pin_all();
        query_pinned(&self.set, &states, &self.model, q, k, strategy, self.scfg.fan_out_threads)
    }

    /// Answers a batch of queries, encoding them all in one batched
    /// forward pass ([`Traj2Hash::embed_batch`] — one fused matmul per
    /// dense layer over the whole batch) and fanning each query across
    /// the shards pinned once for the whole batch. Results are
    /// bit-identical to calling [`ShardedEngine::query`] per query.
    pub fn query_many(
        &self,
        qs: &[Trajectory],
        k: usize,
        strategy: Strategy,
    ) -> Result<Vec<Vec<Hit>>, EngineError> {
        let states = self.set.pin_all();
        let live: usize = states.iter().map(|s| s.live()).sum();
        if k == 0 || live == 0 {
            return Ok(qs.iter().map(|_| Vec::new()).collect());
        }
        let t0 = Instant::now();
        let embeddings = self.model.embed_batch(qs);
        let encode_seconds = t0.elapsed().as_secs_f64();
        if traj_obs::enabled() && !qs.is_empty() {
            traj_obs::observe_secs(
                "engine.query.batch_encode_secs",
                encode_seconds / qs.len() as f64,
            );
        }
        let mut out = Vec::with_capacity(qs.len());
        for embedding in &embeddings {
            let tq = Instant::now();
            let mut trace = TraceCtx::new();
            trace.step("embed");
            let code = BinaryCode::from_floats(embedding);
            let (hits, info) = fan_out(
                &states,
                strategy,
                embedding,
                &code,
                k,
                self.scfg.fan_out_threads,
                &mut trace,
            );
            record_query(
                &self.set,
                strategy,
                states.len(),
                &info,
                tq.elapsed().as_secs_f64(),
                trace,
            );
            out.push(hits);
        }
        Ok(out)
    }

    /// Encodes and inserts a trajectory, returning its stable id. Only
    /// the owning shard republishes; reads on every other shard are
    /// untouched, and reads on the owning shard keep their pinned
    /// generation.
    pub fn insert(&mut self, t: Trajectory) -> u64 {
        let embedding = self.model.embed(&t).data().to_vec();
        let code = BinaryCode::from_floats(&embedding);
        let id = self.next_id;
        self.next_id += 1;
        let si = self.shard_of(id);
        let cell = &self.set.cells[si];
        let next = cell.pin().with_insert(id, t, embedding, code);
        cell.publish(next);
        tlock(&self.set.telemetry).inserts += 1;
        traj_obs::counter("engine.inserts", 1);
        self.maybe_rebuild_shard(si);
        id
    }

    /// Tombstones the trajectory with stable id `id` on its shard.
    pub fn remove(&mut self, id: u64) -> Result<(), EngineError> {
        let si = self.shard_of(id);
        let cell = &self.set.cells[si];
        let pinned = cell.pin();
        let slot = pinned.slot_of(id).ok_or(EngineError::UnknownId(id))?;
        cell.publish(pinned.with_remove(slot));
        tlock(&self.set.telemetry).removes += 1;
        traj_obs::counter("engine.removes", 1);
        self.maybe_rebuild_shard(si);
        Ok(())
    }

    fn maybe_rebuild_shard(&self, si: usize) {
        if self.set.cells[si].pin().needs_rebuild(&self.cfg) {
            self.rebuild_shard(si);
        }
    }

    /// Compacts and re-indexes one shard. The next generation is built
    /// entirely off the publish lock — readers (on this shard and all
    /// others) keep serving the previous generation until the single
    /// atomic publish at the end.
    fn rebuild_shard(&self, si: usize) {
        let t0 = Instant::now();
        let prev = self.set.cells[si].pin();
        let compacting = prev.dead_count > 0;
        let next = prev.rebuilt(&self.cfg);
        let degraded = next.base.indexes.is_none();
        let generation = next.generation;
        let covers = next.base.len();
        self.set.cells[si].publish(next);
        {
            let mut t = tlock(&self.set.telemetry);
            t.rebuilds += 1;
            if compacting {
                t.compactions += 1;
            }
            if degraded {
                t.degraded_rebuilds += 1;
            }
        }
        if traj_obs::enabled() {
            traj_obs::counter("engine.rebuilds", 1);
            if compacting {
                traj_obs::counter("engine.compactions", 1);
            }
            traj_obs::event(
                "engine.shard.rebuild",
                &[
                    ("shard", si.into()),
                    ("generation", generation.into()),
                    ("covers", covers.into()),
                    ("compacted", compacting.into()),
                    ("degraded", degraded.into()),
                    ("seconds", t0.elapsed().as_secs_f64().into()),
                ],
            );
            if degraded {
                traj_obs::counter("engine.degraded_entries", 1);
            }
        }
        if degraded {
            // Dump tail exemplars the moment a shard drops to degraded
            // serving: the traces leading up to an index-build failure
            // are exactly what a post-mortem wants. Deliberately outside
            // the `enabled()` gate — the flight recorder can be
            // installed without an obs recorder.
            traj_obs::flight::force_dump("engine.degraded");
        }
    }

    /// Forces compaction + re-index of every shard, one at a time (each
    /// shard keeps serving while the others rebuild).
    pub fn compact(&mut self) {
        for si in 0..self.set.cells.len() {
            self.rebuild_shard(si);
        }
    }

    /// Drops every shard's indexes, forcing degraded linear-scan
    /// serving until [`recover`](ShardedEngine::recover) or a rebuild.
    /// Results stay exact; only the access path changes.
    pub fn force_degrade(&mut self) {
        for cell in &self.set.cells {
            let next = cell.pin().with_degraded();
            cell.publish(next);
        }
        tlock(&self.set.telemetry).degraded_rebuilds += 1;
        if traj_obs::enabled() {
            traj_obs::counter("engine.degraded_entries", 1);
            traj_obs::event(
                "engine.degraded",
                &[("reason", "forced".into()), ("generation", self.generation.into())],
            );
        }
        // Outside the `enabled()` gate: flight capture works standalone.
        traj_obs::flight::force_dump("engine.degraded");
    }

    /// Rebuilds every degraded shard; returns `true` when all shards
    /// are healthy afterwards.
    pub fn recover(&mut self) -> bool {
        let mut was_degraded = false;
        for si in 0..self.set.cells.len() {
            if self.set.cells[si].pin().degraded() {
                was_degraded = true;
                self.rebuild_shard(si);
            }
        }
        let healthy = !self.set.pin_all().iter().any(|s| s.degraded());
        if was_degraded && healthy {
            tlock(&self.set.telemetry).recoveries += 1;
            if traj_obs::enabled() {
                traj_obs::counter("engine.recoveries", 1);
                traj_obs::event(
                    "engine.recovered",
                    &[("generation", self.generation.into()), ("live", self.len().into())],
                );
            }
        }
        healthy
    }

    /// Flattens every live entry across shards into ascending-id order:
    /// `(ids, trajs, embeddings, codes)`.
    fn flattened(states: &[Arc<ShardState>]) -> Entries {
        let mut entries: Vec<(u64, usize, usize)> = Vec::new();
        for (si, st) in states.iter().enumerate() {
            for (slot, id) in st.live_slots() {
                entries.push((id, si, slot));
            }
        }
        entries.sort_unstable_by_key(|&(id, _, _)| id);
        let mut ids = Vec::with_capacity(entries.len());
        let mut trajs = Vec::with_capacity(entries.len());
        let mut embeddings = Vec::with_capacity(entries.len());
        let mut codes = Vec::with_capacity(entries.len());
        for (id, si, slot) in entries {
            let st = &states[si];
            ids.push(id);
            trajs.push(st.traj_at(slot).clone());
            embeddings.push(st.embedding_at(slot).to_vec());
            codes.push(st.code_at(slot).clone());
        }
        (ids, trajs, embeddings, codes)
    }

    /// Builds a *replacement* engine: the current live corpus re-encoded
    /// with `model`, preserving every stable id and `next_id`, ready for
    /// [`hot_swap`](ShardedEngine::hot_swap).
    pub fn refreshed(&self, model: Traj2Hash) -> Result<ShardedEngine, EngineError> {
        let states = self.set.pin_all();
        let (ids, trajs, _, _) = Self::flattened(&states);
        let embeddings = model.embed_all_with_threads(&trajs, self.cfg.encode_threads.max(1));
        let codes: Vec<BinaryCode> =
            embeddings.iter().map(|e| BinaryCode::from_floats(e)).collect();
        Self::from_parts(
            model,
            self.cfg.clone(),
            self.scfg.clone(),
            ids,
            trajs,
            embeddings,
            codes,
            self.next_id,
        )
    }

    /// Atomically swaps `replacement`'s model and corpus into this
    /// engine, shard by shard, keeping cumulative telemetry and the
    /// monotone per-shard publish sequence. Readers that pinned before
    /// the swap finish their queries on the old generation; readers
    /// that pin after see the new one (and refresh their model replica
    /// via the bumped blueprint version).
    pub fn hot_swap(&mut self, replacement: ShardedEngine) {
        let rep_states = replacement.set.pin_all();
        let rep_next = replacement.next_id;
        let model = replacement.into_model();
        if rep_states.len() == self.set.cells.len() {
            for (cell, st) in self.set.cells.iter().zip(&rep_states) {
                cell.publish((**st).clone());
            }
        } else {
            // Shard counts differ: redistribute by id under *this*
            // engine's mapping.
            let parts = partition(Self::flattened(&rep_states), self.scfg.shards);
            for (cell, (ids, trajs, embeddings, codes)) in self.set.cells.iter().zip(parts) {
                cell.publish(ShardState::build(ids, trajs, embeddings, codes, &self.cfg));
            }
        }
        // Build the blueprint before touching the cell: the write lock
        // is held only for the Arc swap, never across the clone.
        self.set.model.publish(ModelBlueprint::of(&model));
        self.model = model;
        // next_id only moves forward: a stale replacement must not make
        // the engine re-issue ids that are already out there.
        self.next_id = self.next_id.max(rep_next);
        self.generation += 1;
        let degraded = self.set.pin_all().iter().any(|s| s.degraded());
        tlock(&self.set.telemetry).hot_swaps += 1;
        if traj_obs::enabled() {
            traj_obs::counter("engine.hot_swaps", 1);
            traj_obs::event(
                "engine.hot_swap",
                &[
                    ("generation", self.generation.into()),
                    ("live", self.len().into()),
                    ("degraded", degraded.into()),
                ],
            );
        }
    }

    /// Serializes the engine into the same `T2HSNAP1` container the
    /// facade writes: entries are flattened back to ascending-id order,
    /// so the snapshot is shard-layout-free and loads into either
    /// engine (with any shard count).
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, EngineError> {
        let states = self.set.pin_all();
        let mut entries: Vec<(u64, usize, usize)> = Vec::new();
        for (si, st) in states.iter().enumerate() {
            for (slot, id) in st.live_slots() {
                entries.push((id, si, slot));
            }
        }
        entries.sort_unstable_by_key(|&(id, _, _)| id);
        let entries: Vec<EntryRef<'_>> = entries
            .iter()
            .map(|&(id, si, slot)| EntryRef {
                id,
                traj: states[si].traj_at(slot),
                embedding: states[si].embedding_at(slot),
                code: states[si].code_at(slot),
            })
            .collect();
        snapshot::encode_view(&SnapshotView {
            model: &self.model,
            cfg: &self.cfg,
            entries,
            next_id: self.next_id,
        })
    }

    /// Restores a sharded engine from snapshot bytes written by either
    /// engine, distributing entries across `scfg.shards` shards.
    pub fn from_snapshot_bytes(bytes: &[u8], scfg: ShardConfig) -> Result<Self, EngineError> {
        let d = snapshot::decode_parts(bytes)?;
        Self::from_parts(d.model, d.cfg, scfg, d.ids, d.trajs, d.embeddings, d.codes, d.next_id)
    }

    /// Writes a snapshot atomically and durably (fsync'd tmp → rename →
    /// parent fsync), like the facade.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        self.save_snapshot_retry(path, &traj2hash::RetryPolicy::none()).map(|_| ())
    }

    /// [`save_snapshot`](ShardedEngine::save_snapshot) under a bounded
    /// retry/backoff policy, returning the write receipt.
    pub fn save_snapshot_retry(
        &self,
        path: impl AsRef<Path>,
        policy: &traj2hash::RetryPolicy,
    ) -> Result<traj2hash::WriteReceipt, EngineError> {
        let path = path.as_ref();
        let t0 = Instant::now();
        let bytes = self.snapshot_bytes()?;
        let len = bytes.len();
        let receipt = traj2hash::durable_write_retry(path, &bytes, policy)
            .map_err(traj2hash::CheckpointError::Io)?;
        {
            let mut t = tlock(&self.set.telemetry);
            t.snapshot_saves += 1;
            t.snapshot_bytes += len as u64;
        }
        if traj_obs::enabled() {
            traj_obs::counter("engine.snapshot.saves", 1);
            traj_obs::counter("engine.snapshot.bytes_written", len as u64);
            traj_obs::observe_secs("engine.snapshot.save_secs", t0.elapsed().as_secs_f64());
        }
        Ok(receipt)
    }

    /// Reads and validates a snapshot from disk, cleaning stale staging
    /// leftovers along the way.
    pub fn load_snapshot(path: impl AsRef<Path>, scfg: ShardConfig) -> Result<Self, EngineError> {
        let t0 = Instant::now();
        traj2hash::clean_stale_tmps(path.as_ref());
        let bytes = std::fs::read(path).map_err(traj2hash::CheckpointError::Io)?;
        let engine = Self::from_snapshot_bytes(&bytes, scfg);
        if traj_obs::enabled() {
            traj_obs::counter("engine.snapshot.loads", 1);
            traj_obs::counter("engine.snapshot.bytes_read", bytes.len() as u64);
            traj_obs::observe_secs("engine.snapshot.load_secs", t0.elapsed().as_secs_f64());
            if engine.is_err() {
                traj_obs::counter("engine.snapshot.load_failures", 1);
            }
        }
        engine
    }

    /// Materializes a single-shard [`Traj2HashEngine`] with the same
    /// live corpus, model, and ids (primarily for parity testing).
    pub fn to_unsharded(&self) -> Result<Traj2HashEngine, EngineError> {
        let states = self.set.pin_all();
        let (ids, trajs, embeddings, codes) = Self::flattened(&states);
        Traj2HashEngine::from_loaded(
            Traj2Hash::from_spec(&self.model.spec(), &self.model.params.clone_values()),
            self.cfg.clone(),
            ids,
            trajs,
            embeddings,
            codes,
            self.next_id,
        )
    }
}

/// Shared query path: encode with the given model, pin-free (states
/// already pinned), fan out, merge, record.
fn query_pinned(
    set: &ShardSet,
    states: &[Arc<ShardState>],
    model: &Traj2Hash,
    q: &Trajectory,
    k: usize,
    strategy: Strategy,
    threads: usize,
) -> Result<(Vec<Hit>, QueryInfo, QueryTrace), EngineError> {
    let mut trace = TraceCtx::new();
    let degraded = states.iter().any(|s| s.degraded());
    let live: usize = states.iter().map(|s| s.live()).sum();
    if k == 0 || live == 0 {
        trace.step("empty");
        let qt = trace.finish(strategy, 0.0);
        qt.offer_to_flight("sharded", set.trace_instance);
        return Ok((Vec::new(), empty_query_info(strategy, degraded, states.len()), qt));
    }
    let t0 = Instant::now();
    trace.step("embed");
    let embedding = model.embed(q).data().to_vec();
    let code = BinaryCode::from_floats(&embedding);
    let (hits, info) = fan_out(states, strategy, &embedding, &code, k, threads, &mut trace);
    let (q_info, qt) =
        record_query(set, strategy, states.len(), &info, t0.elapsed().as_secs_f64(), trace);
    Ok((hits, q_info, qt))
}

/// A `Send` recipe for building a [`ShardReader`] on another thread.
/// The model itself is not `Send` (its parameters are `Rc`-backed), so
/// the spec + values blueprint travels instead and the replica is built
/// on the destination thread.
pub struct ReaderSpec {
    set: Arc<ShardSet>,
}

impl ReaderSpec {
    /// Builds the reader (instantiating a local model replica from the
    /// current blueprint). Call this *on the reader thread*. The
    /// blueprint `Arc` is pinned out of the cell first, so the replica
    /// build never holds the publish lock (a guard held across
    /// `instantiate` would stall every hot swap behind a full model
    /// rebuild — the exact hazard `no-guard-across-compute` flags).
    pub fn into_reader(self) -> ShardReader {
        let bp = self.set.model.pin();
        let model = bp.instantiate();
        ShardReader { set: self.set, model, model_version: bp.version }
    }
}

/// A per-thread query handle over the shared shard set. Queries are
/// lock-free after the per-shard generation pin and bit-identical to
/// the writer's: same shared search core, same merge order, and a model
/// replica rebuilt from the blueprint whenever a hot swap bumps its
/// version.
pub struct ShardReader {
    set: Arc<ShardSet>,
    model: Traj2Hash,
    model_version: u64,
}

impl ShardReader {
    /// Refreshes the local model replica if a hot swap published a new
    /// blueprint since this reader last looked.
    fn refresh_model(&mut self) {
        if self.set.model.seq() != self.model_version {
            let bp = self.set.model.pin();
            self.model = bp.instantiate();
            self.model_version = bp.version;
        }
    }

    /// Pins a consistent view of every shard.
    pub fn pin(&self) -> PinnedView {
        PinnedView { states: self.set.pin_all() }
    }

    /// Top-k search; bit-identical to the owning engine's
    /// [`ShardedEngine::query`]. `&mut self` only because the model
    /// replica may need refreshing after a hot swap — the shared state
    /// is never written.
    pub fn query(
        &mut self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<Vec<Hit>, EngineError> {
        self.query_with_info(q, k, strategy).map(|(hits, _)| hits)
    }

    /// [`query`](ShardReader::query) plus diagnostics.
    pub fn query_with_info(
        &mut self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<(Vec<Hit>, QueryInfo), EngineError> {
        self.query_traced(q, k, strategy).map(|(hits, info, _)| (hits, info))
    }

    /// [`query_with_info`](ShardReader::query_with_info) plus the sealed
    /// per-query [`QueryTrace`] (inert unless a trace consumer is
    /// installed).
    pub fn query_traced(
        &mut self,
        q: &Trajectory,
        k: usize,
        strategy: Strategy,
    ) -> Result<(Vec<Hit>, QueryInfo, QueryTrace), EngineError> {
        self.refresh_model();
        let states = self.set.pin_all();
        // Readers fan out sequentially: reader-side parallelism comes
        // from running many readers, not from splitting one query.
        query_pinned(&self.set, &states, &self.model, q, k, strategy, 1)
    }
}
