//! The per-shard search core: one implementation of the five Section
//! V-E strategies over a generic two-region corpus view, plus the
//! immutable per-generation shard state the concurrent engine publishes
//! behind `Arc` swaps.
//!
//! ## One search core, two engines
//!
//! [`Traj2HashEngine`](crate::Traj2HashEngine) (single-threaded facade)
//! and [`ShardedEngine`](crate::ShardedEngine) (concurrent, N shards)
//! both answer queries through [`search`] over a [`SearchCtx`]: an
//! *indexed region* (covered by the generation's [`GenIndexes`],
//! Hamming-scanned through the flat [`PackedCodes`] layout) followed by
//! one or more *delta segments* that are linearly scanned. Slots number
//! the indexed region first, then each delta segment in order; a `dead`
//! slice over the whole range carries the tombstones. Because the logic
//! is shared, the sharded engine is bit-identical to the facade by
//! construction — the parity suites then prove it end to end.
//!
//! ## Immutable shard states
//!
//! [`ShardState`] is the unit the concurrent engine publishes: a frozen
//! [`ShardBase`] (the indexed region, shared by `Arc` across
//! generations so publishing an insert never copies the corpus) plus a
//! small owned delta block and tombstone vector. Every mutation builds
//! a *new* `ShardState` — readers holding an `Arc` to the old one keep
//! a fully consistent view for as long as they please.

use crate::ann::{AnnIndex, QueryRep};
use crate::engine::{EngineConfig, EuclideanBackend, Strategy};
use std::sync::Arc;
use traj_data::Trajectory;
use traj_index::search::Hit as SlotHit;
use traj_index::topk::top_k_hits;
use traj_index::{BinaryCode, HammingTable, MultiIndexHashing, PackedCodes, VpTree};

/// The per-generation index set over one indexed region.
pub(crate) struct GenIndexes {
    /// Radius-2 bucket table (serves `Table` and `Hybrid`).
    pub table: HammingTable,
    /// Exact Hamming k-NN (serves `Mih`).
    pub mih: Box<dyn AnnIndex>,
    /// Optional Euclidean structure (serves `EuclideanBf` when
    /// configured); `None` means brute-force scan.
    pub euclid: Option<Box<dyn AnnIndex>>,
    /// Flat packed-code mirror of the indexed region, the fast layout
    /// for brute-force Hamming scans (4-wide popcount accumulation).
    pub packed: PackedCodes,
    /// Number of slots these structures cover.
    pub covers: usize,
}

impl GenIndexes {
    /// Builds the full index set over `codes`/`embeddings`, or `None`
    /// when any structure fails to build (the caller degrades to linear
    /// scans).
    pub fn try_build(
        codes: &[BinaryCode],
        embeddings: &[Vec<f32>],
        cfg: &EngineConfig,
    ) -> Option<GenIndexes> {
        let table = HammingTable::try_build(codes.to_vec()).ok()?;
        let mih = MultiIndexHashing::try_build(codes.to_vec(), cfg.mih_tables).ok()?;
        let packed = PackedCodes::build(codes).ok()?;
        let euclid: Option<Box<dyn AnnIndex>> = match cfg.euclidean_backend {
            EuclideanBackend::BruteForce => None,
            EuclideanBackend::VpTree => Some(Box::new(VpTree::build(embeddings.to_vec()))),
        };
        Some(GenIndexes { table, mih: Box::new(mih), euclid, packed, covers: codes.len() })
    }
}

/// How a strategy produced its answer, for telemetry.
pub(crate) struct PathInfo {
    /// Candidates considered before top-k selection.
    pub candidates: usize,
    /// The index could not serve the query and a full scan answered it.
    pub fallback: bool,
    /// A `Hybrid` radius-2 ball came up short and spilled into a scan.
    pub spill: bool,
}

impl PathInfo {
    pub fn scan(candidates: usize, fallback: bool) -> PathInfo {
        PathInfo { candidates, fallback, spill: false }
    }
}

/// A linearly scanned corpus segment past the indexed region.
pub(crate) struct DeltaSeg<'a> {
    pub embeddings: &'a [Vec<f32>],
    pub codes: &'a [BinaryCode],
}

/// Borrowed view of one searchable corpus: an indexed region (empty
/// when degraded) followed by delta segments, with tombstones over the
/// combined slot range.
pub(crate) struct SearchCtx<'a> {
    /// Embeddings of the indexed region (`indexes.covers` slots).
    pub indexed_embeddings: &'a [Vec<f32>],
    /// The generation's indexes; `None` = degraded, everything scans.
    pub indexes: Option<&'a GenIndexes>,
    /// Delta segments, scanned linearly after the indexed region.
    pub delta: Vec<DeltaSeg<'a>>,
    /// Tombstones over all slots (indexed + delta, in order).
    pub dead: &'a [bool],
    /// Tombstones inside the indexed region — the index over-fetch
    /// margin.
    pub dead_in_indexed: usize,
    /// Which structure is *supposed* to serve `EuclideanBf` (decides
    /// whether a degraded scan counts as a fallback).
    pub euclidean_backend: EuclideanBackend,
}

fn euclid_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x as f64 - y as f64).powi(2)).sum::<f64>().sqrt()
}

impl SearchCtx<'_> {
    fn total_slots(&self) -> usize {
        self.dead.len()
    }

    /// Euclidean candidates from a linear scan of the delta segments.
    fn scan_euclid_delta(&self, q: &[f32]) -> Vec<SlotHit> {
        let mut hits = Vec::new();
        let mut slot = self.indexed_embeddings.len();
        for seg in &self.delta {
            for e in seg.embeddings {
                if !self.dead[slot] {
                    hits.push(SlotHit { index: slot, distance: euclid_dist(e, q) });
                }
                slot += 1;
            }
        }
        hits
    }

    /// Hamming candidates from a linear scan of the delta segments.
    fn scan_hamming_delta(&self, q: &BinaryCode) -> Vec<SlotHit> {
        let mut hits = Vec::new();
        let mut slot = self.indexed_embeddings.len();
        for seg in &self.delta {
            for c in seg.codes {
                if !self.dead[slot] {
                    hits.push(SlotHit { index: slot, distance: c.hamming(q) as f64 });
                }
                slot += 1;
            }
        }
        hits
    }

    /// Full-corpus Euclidean scan candidates.
    fn scan_euclid_all(&self, q: &[f32]) -> Vec<SlotHit> {
        let mut hits: Vec<SlotHit> = self
            .indexed_embeddings
            .iter()
            .enumerate()
            .filter(|&(s, _)| !self.dead[s])
            .map(|(s, e)| SlotHit { index: s, distance: euclid_dist(e, q) })
            .collect();
        hits.extend(self.scan_euclid_delta(q));
        hits
    }

    /// Full-corpus Hamming scan candidates; the indexed region goes
    /// through the packed flat layout (4-wide popcount accumulators).
    fn scan_hamming_all(&self, q: &BinaryCode) -> Vec<SlotHit> {
        let mut hits = Vec::new();
        if let Some(ix) = self.indexes {
            ix.packed.scan_into(q, |s, d| {
                if !self.dead[s] {
                    hits.push(SlotHit { index: s, distance: d as f64 });
                }
            });
        }
        hits.extend(self.scan_hamming_delta(q));
        hits
    }

    fn euclidean_hits(&self, q: &[f32], k: usize) -> (Vec<SlotHit>, PathInfo) {
        let Some(ix) = self.indexes else {
            // Only a fallback when a VP-tree would have served this
            // query; with the brute-force backend the degraded path is
            // the configured path.
            let lost_index = matches!(self.euclidean_backend, EuclideanBackend::VpTree);
            let cand = self.scan_euclid_all(q);
            let n = cand.len();
            return (top_k_hits(cand, k), PathInfo::scan(n, lost_index));
        };
        let Some(index) = &ix.euclid else {
            // Configured brute force: a scan by design, not a fallback.
            let cand = self.scan_euclid_all(q);
            let n = cand.len();
            return (top_k_hits(cand, k), PathInfo::scan(n, false));
        };
        // Over-fetch by the tombstone count so filtering cannot eat into
        // the true top-k: the index is exact, so the first
        // k + dead_in_indexed hits contain at least k live ones.
        match index.search(QueryRep::Dense(q), k + self.dead_in_indexed) {
            Ok(hits) => {
                let mut hits: Vec<SlotHit> =
                    hits.into_iter().filter(|h| !self.dead[h.index]).collect();
                hits.extend(self.scan_euclid_delta(q));
                let n = hits.len();
                (top_k_hits(hits, k), PathInfo::scan(n, false))
            }
            Err(_) => {
                let cand = self.scan_euclid_all(q);
                let n = cand.len();
                (top_k_hits(cand, k), PathInfo::scan(n, true))
            }
        }
    }

    fn mih_hits(&self, q: &BinaryCode, k: usize) -> (Vec<SlotHit>, PathInfo) {
        let Some(ix) = self.indexes else {
            let cand = self.scan_hamming_all(q);
            let n = cand.len();
            return (top_k_hits(cand, k), PathInfo::scan(n, true));
        };
        match ix.mih.search(QueryRep::Code(q), k + self.dead_in_indexed) {
            Ok(hits) => {
                let mut hits: Vec<SlotHit> =
                    hits.into_iter().filter(|h| !self.dead[h.index]).collect();
                hits.extend(self.scan_hamming_delta(q));
                let n = hits.len();
                (top_k_hits(hits, k), PathInfo::scan(n, false))
            }
            Err(_) => {
                let cand = self.scan_hamming_all(q);
                let n = cand.len();
                (top_k_hits(cand, k), PathInfo::scan(n, true))
            }
        }
    }

    /// Live candidates within Hamming radius 2: table lookup over the
    /// indexed region plus a filtered scan of the delta. `None` when
    /// degraded or the table rejects the query.
    fn radius2_candidates(&self, q: &BinaryCode) -> Option<Vec<SlotHit>> {
        let ix = self.indexes?;
        let grouped = ix.table.lookup_within(q, 2).ok()?;
        let mut hits: Vec<SlotHit> = grouped
            .into_iter()
            .flat_map(|(d, slots)| {
                slots.into_iter().map(move |s| SlotHit { index: s, distance: d as f64 })
            })
            .filter(|h| !self.dead[h.index])
            .collect();
        for h in self.scan_hamming_delta(q) {
            if h.distance <= 2.0 {
                hits.push(h);
            }
        }
        Some(hits)
    }

    fn table_hits(&self, q: &BinaryCode, k: usize, hybrid_fallback: bool) -> (Vec<SlotHit>, PathInfo) {
        match self.radius2_candidates(q) {
            Some(ball) => {
                if hybrid_fallback && ball.len() < k {
                    // The designed Hybrid spill — a scan, but not a
                    // degradation.
                    let cand = self.scan_hamming_all(q);
                    let n = cand.len();
                    (top_k_hits(cand, k), PathInfo { candidates: n, fallback: false, spill: true })
                } else {
                    let n = ball.len();
                    (top_k_hits(ball, k), PathInfo::scan(n, false))
                }
            }
            None if hybrid_fallback => {
                let cand = self.scan_hamming_all(q);
                let n = cand.len();
                (top_k_hits(cand, k), PathInfo::scan(n, true))
            }
            None => {
                // Degraded Table strategy: emulate the radius-2 ball by
                // scanning, keeping the may-return-fewer semantics.
                let ball: Vec<SlotHit> = self
                    .scan_hamming_all(q)
                    .into_iter()
                    .filter(|h| h.distance <= 2.0)
                    .collect();
                let n = ball.len();
                (top_k_hits(ball, k), PathInfo::scan(n, true))
            }
        }
    }
}

/// The taxonomy label a finished search stamps on its shard trace: one
/// word naming *why* the path looked the way it did, so tail exemplars
/// in the flight recorder read without cross-referencing `PathInfo`
/// bit-by-bit.
fn path_taxonomy(ctx: &SearchCtx<'_>, strategy: Strategy, path: &PathInfo) -> &'static str {
    if path.fallback {
        // The configured index could not answer; a full scan did.
        return "fallback_scan";
    }
    if path.spill {
        return "hybrid_spill";
    }
    if ctx.indexes.is_none() {
        // Degraded view: scans are the only option, by construction.
        return "degraded_scan";
    }
    match strategy {
        Strategy::HammingBf => "designed_scan",
        Strategy::EuclideanBf if matches!(ctx.euclidean_backend, EuclideanBackend::BruteForce) => {
            "designed_scan"
        }
        _ => "indexed",
    }
}

/// Answers one strategy over the view: the shared search core behind
/// both the single-threaded facade and every shard of the concurrent
/// engine. Hits carry *slot* indices into the view; callers map them to
/// stable ids. The shard trace receives one taxonomy step describing
/// how the answer was produced (a no-op when tracing is disabled).
pub(crate) fn search(
    ctx: &SearchCtx<'_>,
    strategy: Strategy,
    q_emb: &[f32],
    q_code: &BinaryCode,
    k: usize,
    trace: &mut crate::trace::ShardTrace,
) -> (Vec<SlotHit>, PathInfo) {
    if k == 0 || ctx.total_slots() == 0 {
        trace.step("empty");
        return (Vec::new(), PathInfo::scan(0, false));
    }
    let (hits, path) = match strategy {
        Strategy::EuclideanBf => ctx.euclidean_hits(q_emb, k),
        Strategy::HammingBf => {
            let cand = ctx.scan_hamming_all(q_code);
            let n = cand.len();
            // A scan by definition: degraded mode changes nothing.
            (top_k_hits(cand, k), PathInfo::scan(n, false))
        }
        Strategy::Table => ctx.table_hits(q_code, k, false),
        Strategy::Mih => ctx.mih_hits(q_code, k),
        Strategy::Hybrid => ctx.table_hits(q_code, k, true),
    };
    trace.step(path_taxonomy(ctx, strategy, &path));
    (hits, path)
}

// ---------------------------------------------------------------------
// Immutable shard state for the concurrent engine.
// ---------------------------------------------------------------------

/// The frozen indexed region of one shard. Shared by `Arc` across
/// generations: publishing an insert or a tombstone re-uses the base
/// untouched, so the copy cost of a mutation is the delta block, never
/// the corpus.
pub struct ShardBase {
    /// Stable ids, ascending.
    pub ids: Vec<u64>,
    /// Trajectories, parallel to `ids`.
    pub trajs: Vec<Trajectory>,
    /// Dense embeddings, parallel to `ids`.
    pub embeddings: Vec<Vec<f32>>,
    /// Binary codes, parallel to `ids`.
    pub codes: Vec<BinaryCode>,
    /// `None` = the index build failed; the shard serves by scans.
    pub(crate) indexes: Option<GenIndexes>,
}

impl ShardBase {
    /// Entries in the indexed region.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the indexed region is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Builds a base over the given entries (ascending-id order),
    /// attempting the full index set.
    pub fn build(
        ids: Vec<u64>,
        trajs: Vec<Trajectory>,
        embeddings: Vec<Vec<f32>>,
        codes: Vec<BinaryCode>,
        cfg: &EngineConfig,
    ) -> ShardBase {
        let indexes = GenIndexes::try_build(&codes, &embeddings, cfg);
        ShardBase { ids, trajs, embeddings, codes, indexes }
    }
}

/// The owned, small tail of a shard: entries inserted after the base
/// was built. Cloned wholesale on every publish — bounded by the
/// rebuild thresholds, so the copy is O(rebuild_slack), not O(corpus).
#[derive(Clone, Default)]
pub struct DeltaBlock {
    /// Stable ids, ascending (all exceed every base id).
    pub ids: Vec<u64>,
    /// Trajectories, parallel to `ids`.
    pub trajs: Vec<Trajectory>,
    /// Dense embeddings, parallel to `ids`.
    pub embeddings: Vec<Vec<f32>>,
    /// Binary codes, parallel to `ids`.
    pub codes: Vec<BinaryCode>,
}

impl DeltaBlock {
    /// Entries in the delta tail.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entry has been inserted since the last rebuild.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One published generation of one shard: everything a reader needs to
/// answer queries, immutable once published. `Arc<ShardState>` is the
/// unit readers pin. Cloning is shallow on the corpus side (the base is
/// behind an `Arc`), so republishing a state (e.g. during a hot swap)
/// costs O(delta), not O(corpus).
#[derive(Clone)]
pub struct ShardState {
    /// The frozen indexed region, shared across generations.
    pub base: Arc<ShardBase>,
    /// Entries inserted after the base was built (linearly scanned).
    pub delta: DeltaBlock,
    /// Tombstones over base then delta slots.
    pub dead: Vec<bool>,
    /// Number of tombstones set in `dead`.
    pub dead_count: usize,
    /// Tombstones inside the indexed region (over-fetch margin); zero
    /// when degraded.
    pub dead_in_indexed: usize,
    /// `true` after `force_degrade`: indexes are ignored until rebuild.
    pub forced_degraded: bool,
    /// Rebuild counter of this shard; bumps when a new base is built.
    pub generation: u64,
    /// Publish counter: bumps on *every* published state, strictly
    /// monotone per shard. Readers assert this never moves backwards.
    pub publish_seq: u64,
    /// Which structure serves `EuclideanBf` (frozen from the engine
    /// config so pinned readers need nothing else).
    pub euclidean_backend: EuclideanBackend,
}

impl ShardState {
    /// A fresh shard over entries in ascending-id order.
    pub fn build(
        ids: Vec<u64>,
        trajs: Vec<Trajectory>,
        embeddings: Vec<Vec<f32>>,
        codes: Vec<BinaryCode>,
        cfg: &EngineConfig,
    ) -> ShardState {
        let n = ids.len();
        let base = ShardBase::build(ids, trajs, embeddings, codes, cfg);
        ShardState {
            base: Arc::new(base),
            delta: DeltaBlock::default(),
            dead: vec![false; n],
            dead_count: 0,
            dead_in_indexed: 0,
            forced_degraded: false,
            generation: 1,
            publish_seq: 0,
            euclidean_backend: cfg.euclidean_backend,
        }
    }

    /// Total slots (live + tombstoned).
    pub fn slots(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// Live entries.
    pub fn live(&self) -> usize {
        self.slots() - self.dead_count
    }

    /// True when the shard serves by scans only.
    pub fn degraded(&self) -> bool {
        self.forced_degraded || self.base.indexes.is_none()
    }

    /// Slots covered by a *served* index (0 when degraded).
    pub fn indexed(&self) -> usize {
        if self.degraded() {
            0
        } else {
            self.base.indexes.as_ref().map(|ix| ix.covers).unwrap_or(0)
        }
    }

    /// The stable id at `slot`.
    pub fn id_at(&self, slot: usize) -> u64 {
        if slot < self.base.len() {
            self.base.ids[slot]
        } else {
            self.delta.ids[slot - self.base.len()]
        }
    }

    /// The trajectory at `slot`.
    pub fn traj_at(&self, slot: usize) -> &Trajectory {
        if slot < self.base.len() {
            &self.base.trajs[slot]
        } else {
            &self.delta.trajs[slot - self.base.len()]
        }
    }

    /// The embedding at `slot`.
    pub fn embedding_at(&self, slot: usize) -> &[f32] {
        if slot < self.base.len() {
            &self.base.embeddings[slot]
        } else {
            &self.delta.embeddings[slot - self.base.len()]
        }
    }

    /// The code at `slot`.
    pub fn code_at(&self, slot: usize) -> &BinaryCode {
        if slot < self.base.len() {
            &self.base.codes[slot]
        } else {
            &self.delta.codes[slot - self.base.len()]
        }
    }

    /// The live slot holding stable id `id`. Slot order is ascending-id
    /// within base and delta, and every delta id exceeds every base id.
    pub fn slot_of(&self, id: u64) -> Option<usize> {
        if let Ok(s) = self.base.ids.binary_search(&id) {
            return (!self.dead[s]).then_some(s);
        }
        if let Ok(s) = self.delta.ids.binary_search(&id) {
            let slot = self.base.len() + s;
            return (!self.dead[slot]).then_some(slot);
        }
        None
    }

    /// Live `(slot, id)` pairs in ascending-id order.
    pub fn live_slots(&self) -> Vec<(usize, u64)> {
        (0..self.slots())
            .filter(|&s| !self.dead[s])
            .map(|s| (s, self.id_at(s)))
            .collect()
    }

    /// The borrowed search view over this state. When degraded the
    /// whole corpus becomes delta segments (pure scans).
    pub(crate) fn ctx(&self) -> SearchCtx<'_> {
        if self.degraded() {
            SearchCtx {
                indexed_embeddings: &[],
                indexes: None,
                delta: vec![
                    DeltaSeg { embeddings: &self.base.embeddings, codes: &self.base.codes },
                    DeltaSeg { embeddings: &self.delta.embeddings, codes: &self.delta.codes },
                ],
                dead: &self.dead,
                dead_in_indexed: self.dead_in_indexed,
                euclidean_backend: self.euclidean_backend,
            }
        } else {
            SearchCtx {
                indexed_embeddings: &self.base.embeddings,
                indexes: self.base.indexes.as_ref(),
                delta: vec![DeltaSeg {
                    embeddings: &self.delta.embeddings,
                    codes: &self.delta.codes,
                }],
                dead: &self.dead,
                dead_in_indexed: self.dead_in_indexed,
                euclidean_backend: self.euclidean_backend,
            }
        }
    }

    /// Next state with one entry appended to the delta. `id` must
    /// exceed every id in the shard (monotone id assignment guarantees
    /// it).
    pub fn with_insert(
        &self,
        id: u64,
        traj: Trajectory,
        embedding: Vec<f32>,
        code: BinaryCode,
    ) -> ShardState {
        debug_assert!(
            self.delta.ids.last().copied().unwrap_or(0).max(
                self.base.ids.last().copied().unwrap_or(0)
            ) < id || self.slots() == 0,
            "insert id must be monotone"
        );
        let mut delta = self.delta.clone();
        delta.ids.push(id);
        delta.trajs.push(traj);
        delta.embeddings.push(embedding);
        delta.codes.push(code);
        let mut dead = self.dead.clone();
        dead.push(false);
        ShardState {
            base: Arc::clone(&self.base),
            delta,
            dead,
            dead_count: self.dead_count,
            dead_in_indexed: self.dead_in_indexed,
            forced_degraded: self.forced_degraded,
            generation: self.generation,
            publish_seq: self.publish_seq,
            euclidean_backend: self.euclidean_backend,
        }
    }

    /// Next state with `slot` tombstoned.
    pub fn with_remove(&self, slot: usize) -> ShardState {
        debug_assert!(!self.dead[slot], "slot already tombstoned");
        let mut dead = self.dead.clone();
        dead[slot] = true;
        let in_indexed = slot < self.indexed();
        ShardState {
            base: Arc::clone(&self.base),
            delta: self.delta.clone(),
            dead,
            dead_count: self.dead_count + 1,
            dead_in_indexed: self.dead_in_indexed + usize::from(in_indexed),
            forced_degraded: self.forced_degraded,
            generation: self.generation,
            publish_seq: self.publish_seq,
            euclidean_backend: self.euclidean_backend,
        }
    }

    /// Next state with the indexes dropped: every strategy linear-scans
    /// until a rebuild. Mirrors a failed rebuild — with no indexed
    /// region there is no over-fetch margin.
    pub fn with_degraded(&self) -> ShardState {
        ShardState {
            base: Arc::clone(&self.base),
            delta: self.delta.clone(),
            dead: self.dead.clone(),
            dead_count: self.dead_count,
            dead_in_indexed: 0,
            forced_degraded: true,
            generation: self.generation,
            publish_seq: self.publish_seq,
            euclidean_backend: self.euclidean_backend,
        }
    }

    /// Compacts live entries (order-preserving, so ascending-id) and
    /// builds the next generation's base + indexes. This runs *off* the
    /// publish lock: readers keep the old generation until the new one
    /// is swapped in.
    pub fn rebuilt(&self, cfg: &EngineConfig) -> ShardState {
        let mut ids = Vec::with_capacity(self.live());
        let mut trajs = Vec::with_capacity(self.live());
        let mut embeddings = Vec::with_capacity(self.live());
        let mut codes = Vec::with_capacity(self.live());
        for (slot, id) in self.live_slots() {
            ids.push(id);
            trajs.push(self.traj_at(slot).clone());
            embeddings.push(self.embedding_at(slot).to_vec());
            codes.push(self.code_at(slot).clone());
        }
        let n = ids.len();
        let base = ShardBase::build(ids, trajs, embeddings, codes, cfg);
        ShardState {
            base: Arc::new(base),
            delta: DeltaBlock::default(),
            dead: vec![false; n],
            dead_count: 0,
            dead_in_indexed: 0,
            forced_degraded: false,
            generation: self.generation + 1,
            publish_seq: self.publish_seq,
            euclidean_backend: cfg.euclidean_backend,
        }
    }

    /// True when the delta or tombstone count crosses the configured
    /// rebuild thresholds (applied per shard).
    pub fn needs_rebuild(&self, cfg: &EngineConfig) -> bool {
        let indexed = self.base.len();
        let delta = self.delta.len();
        let slack = cfg.rebuild_slack;
        // lint: allow(lossy-cast) — nonnegative fraction of a shard size that fits usize
        let delta_cap = slack.max((indexed as f64 * cfg.max_delta_fraction) as usize);
        // lint: allow(lossy-cast) — nonnegative fraction of a shard size that fits usize
        let dead_cap = slack.max((self.slots() as f64 * cfg.max_dead_fraction) as usize);
        delta > delta_cap || self.dead_count > dead_cap
    }

    /// Structural self-check: every invariant a torn publish would
    /// break. The concurrency suite runs this on pinned states while a
    /// writer churns.
    pub fn check_consistent(&self) -> Result<(), String> {
        let b = self.base.len();
        let d = self.delta.len();
        if self.base.trajs.len() != b
            || self.base.embeddings.len() != b
            || self.base.codes.len() != b
        {
            return Err(format!("base arrays disagree on length {b}"));
        }
        if self.delta.trajs.len() != d
            || self.delta.embeddings.len() != d
            || self.delta.codes.len() != d
        {
            return Err(format!("delta arrays disagree on length {d}"));
        }
        if self.dead.len() != b + d {
            return Err(format!("dead covers {} slots of {}", self.dead.len(), b + d));
        }
        let dead_count = self.dead.iter().filter(|&&x| x).count();
        if dead_count != self.dead_count {
            return Err(format!("dead_count {} but {} flags set", self.dead_count, dead_count));
        }
        let in_indexed = self.dead[..self.indexed()].iter().filter(|&&x| x).count();
        if in_indexed != self.dead_in_indexed {
            return Err(format!(
                "dead_in_indexed {} but {} tombstones in the indexed region",
                self.dead_in_indexed, in_indexed
            ));
        }
        let mut prev: Option<u64> = None;
        for s in 0..b + d {
            let id = self.id_at(s);
            if let Some(p) = prev {
                if id <= p {
                    return Err(format!("slot order broken: id {id} after {p}"));
                }
            }
            prev = Some(id);
        }
        if let Some(ix) = &self.base.indexes {
            if ix.covers != b {
                return Err(format!("indexes cover {} of {b} base slots", ix.covers));
            }
            if ix.packed.len() != b {
                return Err(format!("packed mirror holds {} of {b} codes", ix.packed.len()));
            }
        }
        Ok(())
    }
}

impl crate::cell::Sequenced for ShardState {
    fn seq(&self) -> u64 {
        self.publish_seq
    }
    fn set_seq(&mut self, seq: u64) {
        self.publish_seq = seq;
    }
}
