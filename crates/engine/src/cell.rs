//! The publish cell: the one synchronization point of the concurrent
//! serving stack.
//!
//! A [`PublishCell`] holds `RwLock<Arc<T>>` — readers [`pin`] the
//! current value by cloning the `Arc` under a brief read lock, the
//! writer [`publish`]es a replacement under the write lock. The cell
//! stamps a strictly monotone sequence number (via [`Sequenced`]) into
//! every published value, which is the invariant the loomlet
//! interleaving tests and the shard concurrency suite assert: a reader
//! can never observe the sequence move backwards, and every pinned
//! value is exactly one that a writer published.
//!
//! Both publish points of [`crate::ShardedEngine`] are instances:
//! per-shard [`crate::shard::ShardState`] cells, and the
//! model-blueprint cell readers refresh their replica from after a hot
//! swap.
//!
//! ## Poison policy
//!
//! The poison-proof helpers [`rread`] / [`rwrite`] are this crate's two
//! sanctioned `RwLock` acquisition points (registered in traj-lint's
//! `LOCK_HELPERS`, which bans bare `.read()`/`.write()` everywhere
//! else). Recovery is sound *here* because of what the lock protects:
//! the `Arc<T>` inside is only ever replaced wholesale, so even if a
//! writer panics mid-[`publish`] the slot still holds the previous,
//! fully published value — there is no partially-mutated state a
//! poisoned guard could expose.
//!
//! [`pin`]: PublishCell::pin
//! [`publish`]: PublishCell::publish

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A value type carrying the publish sequence number the cell stamps.
pub trait Sequenced {
    /// The value's publish sequence.
    fn seq(&self) -> u64;
    /// Stamps the publish sequence (called by the cell under the write
    /// lock, never by user code).
    fn set_seq(&mut self, seq: u64);
}

/// Poison-proof read of an `RwLock`: a panicked writer must not wedge
/// readers. See the module docs for why recovery is sound for publish
/// cells.
pub fn rread<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-proof write of an `RwLock`: the next writer may replace a
/// value a panicked predecessor left behind (always the previous fully
/// published one).
pub fn rwrite<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One atomic publish point: readers pin the current value, the writer
/// swaps in the next generation. See the module docs.
pub struct PublishCell<T> {
    slot: RwLock<Arc<T>>,
}

impl<T: Sequenced> PublishCell<T> {
    /// A cell initially holding `value` (its sequence is kept as-is;
    /// the first [`publish`](PublishCell::publish) stamps `seq + 1`).
    pub fn new(value: T) -> PublishCell<T> {
        PublishCell { slot: RwLock::new(Arc::new(value)) }
    }

    /// Pins the current value: a brief read lock to clone the `Arc`,
    /// after which the holder's view is immutable for as long as it
    /// pleases and entirely off the lock.
    pub fn pin(&self) -> Arc<T> {
        Arc::clone(&rread(&self.slot))
    }

    /// The sequence of the currently published value, without cloning.
    pub fn seq(&self) -> u64 {
        rread(&self.slot).seq()
    }

    /// Publishes `next`, stamping it with the successor of the current
    /// value's sequence. Returns the stamped sequence. Readers pinned
    /// to the previous value are unaffected; new pins observe `next`.
    pub fn publish(&self, mut next: T) -> u64 {
        let mut guard = rwrite(&self.slot);
        let seq = guard.seq() + 1;
        next.set_seq(seq);
        *guard = Arc::new(next);
        seq
    }

    /// Derives and publishes the next value from the current one, in
    /// one critical section (`f` runs under the write lock — keep it
    /// cheap; heavy rebuilds belong off-lock via [`pin`] + [`publish`]).
    /// Returns the stamped sequence.
    ///
    /// [`pin`]: PublishCell::pin
    /// [`publish`]: PublishCell::publish
    pub fn update(&self, f: impl FnOnce(&T) -> T) -> u64 {
        let mut guard = rwrite(&self.slot);
        let mut next = f(&guard);
        let seq = guard.seq() + 1;
        next.set_seq(seq);
        *guard = Arc::new(next);
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct V {
        payload: u64,
        seq: u64,
    }

    impl Sequenced for V {
        fn seq(&self) -> u64 {
            self.seq
        }
        fn set_seq(&mut self, seq: u64) {
            self.seq = seq;
        }
    }

    fn cell(payload: u64) -> PublishCell<V> {
        PublishCell::new(V { payload, seq: 0 })
    }

    #[test]
    fn publish_stamps_monotone_sequences() {
        let c = cell(10);
        assert_eq!(c.seq(), 0);
        assert_eq!(c.publish(V { payload: 11, seq: 999 }), 1, "stamp overrides caller seq");
        assert_eq!(c.publish(V { payload: 12, seq: 0 }), 2);
        let pinned = c.pin();
        assert_eq!((pinned.payload, pinned.seq), (12, 2));
    }

    #[test]
    fn pinned_readers_keep_their_generation_across_publishes() {
        let c = cell(1);
        let old = c.pin();
        c.publish(V { payload: 2, seq: 0 });
        assert_eq!(old.payload, 1, "pin must be immune to later publishes");
        assert_eq!(c.pin().payload, 2);
    }

    #[test]
    fn update_derives_under_the_lock() {
        let c = cell(5);
        let seq = c.update(|v| V { payload: v.payload * 2, seq: 0 });
        assert_eq!(seq, 1);
        assert_eq!(c.pin().payload, 10);
    }

    /// Satellite: a writer that panics while holding the cell's write
    /// lock must not wedge subsequent `rread`/`rwrite` callers — the
    /// poison-proof helpers recover, readers still pin and serve, and
    /// the next publish proceeds with a monotone sequence.
    #[test]
    fn poisoned_cell_still_pins_and_publishes() {
        let c = std::sync::Arc::new(cell(7));
        c.publish(V { payload: 8, seq: 0 });

        let c2 = std::sync::Arc::clone(&c);
        let result = std::thread::spawn(move || {
            c2.update(|_| panic!("writer dies while holding the write lock"))
        })
        .join();
        assert!(result.is_err(), "the writer thread must have panicked");

        // Readers recover the last published value through the poison.
        let pinned = c.pin();
        assert_eq!((pinned.payload, pinned.seq), (8, 1), "last published value survives");
        assert_eq!(c.seq(), 1);

        // The next writer recovers too, and the sequence stays monotone.
        assert_eq!(c.publish(V { payload: 9, seq: 0 }), 2);
        assert_eq!(c.pin().payload, 9);

        // And a derived update still works on the poisoned lock.
        assert_eq!(c.update(|v| V { payload: v.payload + 1, seq: 0 }), 3);
        assert_eq!(c.pin().payload, 10);
    }
}
