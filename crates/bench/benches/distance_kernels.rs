//! Micro-benchmarks of the exact distance kernels — the quadratic costs
//! that motivate the whole paper (Section I: "the quadratic computation
//! complexity of distance functions").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_data::{CityGenerator, CityParams, Trajectory};
use traj_dist::{cdtw, dtw, edr, erp, frechet, hausdorff};

fn pair_of_length(n: usize) -> (Trajectory, Trajectory) {
    let mut params = CityParams::porto_like();
    params.min_points = n;
    params.max_points = n;
    let mut generator = CityGenerator::new(params, 99);
    (generator.generate_one(), generator.generate_one())
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [32usize, 64, 128] {
        let (a, b) = pair_of_length(n);
        group.bench_with_input(BenchmarkId::new("dtw", n), &n, |bench, _| {
            bench.iter(|| dtw(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("frechet", n), &n, |bench, _| {
            bench.iter(|| frechet(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("hausdorff", n), &n, |bench, _| {
            bench.iter(|| hausdorff(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cdtw_band8", n), &n, |bench, _| {
            bench.iter(|| cdtw(black_box(&a), black_box(&b), 8))
        });
        group.bench_with_input(BenchmarkId::new("erp", n), &n, |bench, _| {
            bench.iter(|| erp(black_box(&a), black_box(&b), traj_data::Point::new(0.0, 0.0)))
        });
        group.bench_with_input(BenchmarkId::new("edr_50m", n), &n, |bench, _| {
            bench.iter(|| edr(black_box(&a), black_box(&b), 50.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
