//! Micro-benchmarks of the three search strategies (the timing substrate
//! behind Fig. 5 and Fig. 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_bench::clustered_workload;
use traj_index::{euclidean_top_k, hamming_top_k, HammingTable, MultiIndexHashing, VpTree};

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_strategies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n_db in [20_000usize, 100_000] {
        let w = clustered_workload(n_db, 8, 32, n_db / 400, 2, 7);
        let q_emb = &w.query_embeddings[0];
        let q_code = &w.query_codes[0];

        group.bench_with_input(BenchmarkId::new("euclidean_bf", n_db), &n_db, |b, _| {
            b.iter(|| euclidean_top_k(black_box(&w.db_embeddings), black_box(q_emb), 50))
        });
        group.bench_with_input(BenchmarkId::new("hamming_bf", n_db), &n_db, |b, _| {
            b.iter(|| hamming_top_k(black_box(&w.db_codes), black_box(q_code), 50))
        });
        let table = HammingTable::build(w.db_codes.clone());
        group.bench_with_input(BenchmarkId::new("hamming_hybrid", n_db), &n_db, |b, _| {
            b.iter(|| table.hybrid_top_k(black_box(q_code), 50))
        });
        let mih = MultiIndexHashing::build(w.db_codes.clone(), 4);
        group.bench_with_input(BenchmarkId::new("multi_index_hashing", n_db), &n_db, |b, _| {
            b.iter(|| mih.top_k(black_box(q_code), 50))
        });
        let vp = VpTree::build(w.db_embeddings.clone());
        group.bench_with_input(BenchmarkId::new("vp_tree", n_db), &n_db, |b, _| {
            b.iter(|| vp.top_k(black_box(q_emb), 50))
        });
    }
    group.finish();
}

fn bench_code_ops(c: &mut Criterion) {
    let w = clustered_workload(2, 1, 64, 1, 2, 3);
    let (a, b) = (&w.db_codes[0], &w.db_codes[1]);
    c.bench_function("hamming_distance_64bit", |bench| {
        bench.iter(|| black_box(a).hamming(black_box(b)))
    });
}

criterion_group!(benches, bench_search, bench_code_ops);
criterion_main!(benches);
