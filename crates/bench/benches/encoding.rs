//! Micro-benchmarks of encoder forward passes: the O(d) amortized
//! similarity computation the neural methods buy with one O(encoder)
//! pass per trajectory, versus the exact O(n^2) kernel per pair.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_baselines::{GruMetricEncoder, TrajEncoder};
use traj_data::{CityGenerator, CityParams, NormStats};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

fn bench_encoding(c: &mut Criterion) {
    let trajs = CityGenerator::new(CityParams::porto_like(), 5).generate(32);
    let norm = NormStats::fit(&trajs);
    let ctx = ModelContext::prepare(&trajs, &ModelConfig::small(), 5);
    let model = Traj2Hash::new(ModelConfig::small(), &ctx, 5);
    let gru = GruMetricEncoder::plain(32, norm, 5);
    let t = &trajs[0];

    c.bench_function("traj2hash_embed", |b| b.iter(|| model.embed(black_box(t))));
    c.bench_function("traj2hash_hash_signs", |b| b.iter(|| model.hash_signs(black_box(t))));
    c.bench_function("gru_embed", |b| b.iter(|| gru.embed(black_box(t))));

    // the O(d) similarity the embeddings enable
    let e1 = model.embed(&trajs[0]);
    let e2 = model.embed(&trajs[1]);
    c.bench_function("embedding_euclidean_distance", |b| {
        b.iter(|| black_box(&e1).distance(black_box(&e2)))
    });
    // versus one exact DTW on the same pair
    c.bench_function("exact_dtw_same_pair", |b| {
        b.iter(|| traj_dist::dtw(black_box(&trajs[0]), black_box(&trajs[1])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_encoding
}
criterion_main!(benches);
