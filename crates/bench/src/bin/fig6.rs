//! Fig. 6: mean per-query time of the three search strategies as the
//! requested `k` varies from 10 to 50 with a fixed 100K database.
//!
//! ```text
//! cargo run -p traj-bench --release --bin fig6
//! ```

use traj_bench::{clustered_workload, time_search_strategies, CommonArgs};
use traj_eval::{fmt_ms, TextTable};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let bits = args.scale.model.dim.max(32);
    let n_db = 100_000;
    let n_query = 200;
    println!(
        "# Fig. 6 reproduction — query time vs k (db={n_db}, bits={bits}, {n_query} queries)\n"
    );
    let w = clustered_workload(n_db, n_query, bits, n_db / 400, 2, args.seed);
    let mut table = TextTable::new(vec![
        "k",
        "Euclidean-BF (ms)",
        "Hamming-BF (ms)",
        "Hamming-Hybrid (ms)",
    ]);
    for k in [10usize, 20, 30, 40, 50] {
        let t = time_search_strategies(
            &w.db_embeddings,
            &w.db_codes,
            &w.query_embeddings,
            &w.query_codes,
            k,
        );
        table.add_row(vec![
            k.to_string(),
            fmt_ms(t.euclidean_bf),
            fmt_ms(t.hamming_bf),
            fmt_ms(t.hamming_hybrid),
        ]);
        eprintln!(
            "[fig6] k={k}: euclid {:.3}ms hamming {:.3}ms hybrid {:.3}ms",
            t.euclidean_bf * 1e3,
            t.hamming_bf * 1e3,
            t.hamming_hybrid * 1e3
        );
    }
    println!("{}", table.render());
}
