//! Diagnostic: does the GRU baseline family underfit at the harness's
//! default epoch budget? The paper trains 100 epochs; our small scale
//! trains 10. This probe sweeps the budget for NT-No-SAM on one
//! city/measure so EXPERIMENTS.md can quantify the gap.
//!
//! ```text
//! cargo run -p traj-bench --release --bin probe_gru_epochs -- --city porto --measure frechet
//! ```

use traj_baselines::{train_wmse, GruMetricEncoder, TrajEncoder, WmseConfig};
use traj_bench::{build_dataset, eval_euclidean, test_ground_truth, CommonArgs};
use traj_eval::{fmt4, TextTable};
use traj2hash::{ModelContext, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    let city = args.cities()[0];
    let measure = args.measures()[0];
    println!(
        "# GRU epoch-budget probe ({}, {}, scale={})\n",
        city.name(),
        measure.name(),
        scale.name
    );
    let dataset = build_dataset(city, scale, args.seed);
    let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
    let data = TrainData::prepare(&dataset, measure, &scale.train).expect("failed to prepare training supervision");
    let dense_sim = data.sim.to_dense();
    let truth = test_ground_truth(&dataset.query, &dataset.database, measure);

    let mut table = TextTable::new(vec!["Epochs", "HR@10", "HR@50", "R10@50", "final loss"]);
    for epochs in [scale.baseline_epochs, scale.baseline_epochs * 3, scale.baseline_epochs * 6] {
        let enc = GruMetricEncoder::plain(scale.model.dim, ctx.norm, args.seed);
        let losses = train_wmse(
            &enc,
            &dataset.seeds,
            &dense_sim,
            &WmseConfig { epochs, lr: scale.train.lr, seed: args.seed, ..WmseConfig::default() },
        );
        let m = eval_euclidean(
            &enc.embed_all(&dataset.database),
            &enc.embed_all(&dataset.query),
            &truth,
        );
        table.add_row(vec![
            epochs.to_string(),
            fmt4(m.hr10),
            fmt4(m.hr50),
            fmt4(m.r10_50),
            format!("{:.5}", losses.last().unwrap()),
        ]);
        eprintln!("[probe_gru] epochs={epochs}: {m}");
    }
    println!("{}", table.render());
}
