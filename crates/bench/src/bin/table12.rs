//! Tables I and II in one pass: trains each method once per
//! (city, measure) and evaluates it in both Euclidean space (Table I)
//! and Hamming space (Table II). Produces exactly the same rows as the
//! `table1` and `table2` binaries at half the compute.
//!
//! ```text
//! cargo run -p traj-bench --release --bin table12 -- --scale small
//! ```

use traj_baselines::{Fresh, FreshConfig, HashHead, HashHeadConfig};
use traj_bench::{
    build_dataset, eval_euclidean, eval_hamming, test_ground_truth, train_dense, train_traj2hash,
    CommonArgs, DenseMethod,
};
use traj_eval::{fmt4, Metrics, TextTable};
use traj2hash::{ModelContext, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    println!(
        "# Tables I & II reproduction (scale={}, seed={})\n",
        scale.name, args.seed
    );
    let bits = scale.model.dim;
    let headers = vec!["Dataset", "Method", "Measure", "HR@10", "HR@50", "R10@50"];
    let mut euclid_table = TextTable::new(headers.clone());
    let mut hamming_table = TextTable::new(headers);
    let push = |table: &mut TextTable, city: &str, method: &str, measure: &str, m: &Metrics| {
        table.add_row(vec![
            city.to_string(),
            method.to_string(),
            measure.to_string(),
            fmt4(m.hr10),
            fmt4(m.hr50),
            fmt4(m.r10_50),
        ]);
    };

    for city in args.cities() {
        let dataset = build_dataset(city, scale, args.seed);
        let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
        for measure in args.measures() {
            let truth = test_ground_truth(&dataset.query, &dataset.database, measure);
            let data = TrainData::prepare(&dataset, measure, &scale.train).expect("failed to prepare training supervision");
            let dense_sim = data.sim.to_dense();
            let head_cfg = HashHeadConfig {
                bits,
                alpha: scale.train.alpha,
                epochs: scale.baseline_epochs.max(10),
                seed: args.seed,
                ..HashHeadConfig::default()
            };
            for method in DenseMethod::all() {
                let enc = train_dense(method, &dataset, &ctx, &data, scale, args.seed);
                let db_emb = enc.embed_all(&dataset.database);
                let q_emb = enc.embed_all(&dataset.query);
                let me = eval_euclidean(&db_emb, &q_emb, &truth);
                push(&mut euclid_table, city.name(), method.name(), measure.name(), &me);

                let seed_embs = enc.embed_all(&dataset.seeds);
                let (head, _) = HashHead::train(&seed_embs, &dense_sim, &head_cfg);
                let mh = eval_hamming(&head.hash_all(&db_emb), &head.hash_all(&q_emb), &truth);
                push(&mut hamming_table, city.name(), method.name(), measure.name(), &mh);
                eprintln!(
                    "[table12] {} {} {}: euclid {me} | hamming {mh}",
                    city.name(),
                    method.name(),
                    measure.name()
                );
            }
            // Fresh appears only in Table II.
            // Resolution tuned per dataset like the paper tuned its 1 km
            // for real taxi data; see `fresh_eval` for the sweep. The
            // synthetic trips need coarser cells for partial collisions,
            // consistent with the coarse-triplet-cell scaling (DESIGN.md).
            let fresh = Fresh::new(FreshConfig {
                resolution: 4000.0,
                bits_per_rep: bits / 4,
                seed: args.seed,
                ..FreshConfig::default()
            });
            let mf = eval_hamming(
                &fresh.hash_all(&dataset.database),
                &fresh.hash_all(&dataset.query),
                &truth,
            );
            push(&mut hamming_table, city.name(), "Fresh", measure.name(), &mf);
            eprintln!("[table12] {} Fresh {}: hamming {mf}", city.name(), measure.name());

            let (model, _) = train_traj2hash(&dataset, &ctx, &data, scale, args.seed);
            let me = eval_euclidean(
                &model.embed_all(&dataset.database),
                &model.embed_all(&dataset.query),
                &truth,
            );
            let mh = eval_hamming(
                &model.hash_all(&dataset.database),
                &model.hash_all(&dataset.query),
                &truth,
            );
            push(&mut euclid_table, city.name(), "Traj2Hash", measure.name(), &me);
            push(&mut hamming_table, city.name(), "Traj2Hash", measure.name(), &mh);
            eprintln!(
                "[table12] {} Traj2Hash {}: euclid {me} | hamming {mh}",
                city.name(),
                measure.name()
            );
        }
    }
    println!("## Table I — Euclidean space\n\n{}", euclid_table.render());
    println!("## Table II — Hamming space\n\n{}", hamming_table.render());
}
