//! Fig. 5: mean per-query time of the three search strategies
//! (Euclidean-BF, Hamming-BF, Hamming-Hybrid) as the database grows from
//! 20K to 100K, top-50 queries.
//!
//! Codes/embeddings come from the clustered synthetic workload (see
//! `traj_bench::clustered_workload`): the strategies' latency depends on
//! database size and code clustering, not on which encoder produced the
//! codes; EXPERIMENTS.md documents this next to the figure.
//!
//! ```text
//! cargo run -p traj-bench --release --bin fig5
//! ```

use traj_bench::{clustered_workload, time_search_strategies, CommonArgs};
use traj_eval::{fmt_ms, TextTable};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let bits = args.scale.model.dim.max(32);
    let n_query = 200;
    let k = 50;
    println!(
        "# Fig. 5 reproduction — query time vs database size (bits={bits}, k={k}, {n_query} queries)\n"
    );
    let mut table = TextTable::new(vec![
        "DB size",
        "Euclidean-BF (ms)",
        "Hamming-BF (ms)",
        "Hamming-Hybrid (ms)",
    ]);
    for n_db in [20_000usize, 40_000, 60_000, 80_000, 100_000] {
        // cluster count scales with the database so bucket occupancy
        // stays realistic (most queries find >= 50 neighbours in radius 2)
        let clusters = (n_db / 400).max(1);
        let w = clustered_workload(n_db, n_query, bits, clusters, 2, args.seed);
        let t = time_search_strategies(
            &w.db_embeddings,
            &w.db_codes,
            &w.query_embeddings,
            &w.query_codes,
            k,
        );
        table.add_row(vec![
            format!("{}K", n_db / 1000),
            fmt_ms(t.euclidean_bf),
            fmt_ms(t.hamming_bf),
            fmt_ms(t.hamming_hybrid),
        ]);
        eprintln!(
            "[fig5] db={n_db}: euclid {:.3}ms hamming {:.3}ms hybrid {:.3}ms",
            t.euclidean_bf * 1e3,
            t.hamming_bf * 1e3,
            t.hamming_hybrid * 1e3
        );
    }
    println!("{}", table.render());
}
