//! Table I: top-k search accuracy in **Euclidean space** for six dense
//! baselines and Traj2Hash, under Fréchet / Hausdorff / DTW, on both
//! synthetic cities.
//!
//! ```text
//! cargo run -p traj-bench --release --bin table1 -- --scale small
//! ```

use traj_bench::{
    build_dataset, eval_euclidean, test_ground_truth, train_dense, train_traj2hash, CommonArgs,
    DenseMethod,
};
use traj_eval::{fmt4, TextTable};
use traj2hash::{ModelContext, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    println!(
        "# Table I reproduction — Euclidean space (scale={}, seed={})\n",
        scale.name, args.seed
    );
    for city in args.cities() {
        let dataset = build_dataset(city, scale, args.seed);
        let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
        let truth_cache: Vec<_> = args
            .measures()
            .iter()
            .map(|&m| (m, test_ground_truth(&dataset.query, &dataset.database, m)))
            .collect();

        let mut table = TextTable::new(vec![
            "Dataset", "Method", "Measure", "HR@10", "HR@50", "R10@50",
        ]);
        for (measure, truth) in &truth_cache {
            let data = TrainData::prepare(&dataset, *measure, &scale.train).expect("failed to prepare training supervision");
            for method in DenseMethod::all() {
                let enc = train_dense(method, &dataset, &ctx, &data, scale, args.seed);
                let db = enc.embed_all(&dataset.database);
                let q = enc.embed_all(&dataset.query);
                let m = eval_euclidean(&db, &q, truth);
                table.add_row(vec![
                    city.name().to_string(),
                    method.name().to_string(),
                    measure.name().to_string(),
                    fmt4(m.hr10),
                    fmt4(m.hr50),
                    fmt4(m.r10_50),
                ]);
                eprintln!("[table1] {} {} {}: {}", city.name(), method.name(), measure.name(), m);
            }
            let (model, report) = train_traj2hash(&dataset, &ctx, &data, scale, args.seed);
            let db = model.embed_all(&dataset.database);
            let q = model.embed_all(&dataset.query);
            let m = eval_euclidean(&db, &q, truth);
            table.add_row(vec![
                city.name().to_string(),
                "Traj2Hash".to_string(),
                measure.name().to_string(),
                fmt4(m.hr10),
                fmt4(m.hr50),
                fmt4(m.r10_50),
            ]);
            eprintln!(
                "[table1] {} Traj2Hash {}: {} (best epoch {}, {:.1}s)",
                city.name(),
                measure.name(),
                m,
                report.best_epoch,
                report.seconds
            );
        }
        println!("{}", table.render());
    }
}
