//! Fig. 7: the effect of the grid representation — the decomposed
//! representation with NCE pre-training vs a Node2vec full table vs no
//! grid channel at all (-Grids) — plus the pre-training time gap the
//! paper reports (~80 s vs >2 h at 1100x1100; proportionally reproduced
//! at our grid size).
//!
//! ```text
//! cargo run -p traj-bench --release --bin fig7 -- --city porto --measure frechet
//! ```

use std::sync::Arc;
use traj_bench::{build_dataset, eval_euclidean, eval_hamming, test_ground_truth, CommonArgs};
use traj_eval::{fmt4, TextTable};
use traj_grid::{GridEmbedding, Node2vecConfig, Node2vecEmbedding};
use traj2hash::{train, ModelContext, Traj2Hash, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    // The paper reports Fig. 7 on Porto; default to that but honour filters.
    let city = args.cities()[0];
    let measure = args.measures()[0];
    println!(
        "# Fig. 7 reproduction — grid representation comparison ({}, {}, scale={})\n",
        city.name(),
        measure.name(),
        scale.name
    );
    let dataset = build_dataset(city, scale, args.seed);
    let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
    let data = TrainData::prepare(&dataset, measure, &scale.train).expect("failed to prepare training supervision");
    let truth = test_ground_truth(&dataset.query, &dataset.database, measure);

    // Node2vec on the same fine grid; walk budget scaled to grid size.
    let n2v_cfg = Node2vecConfig {
        dim: scale.model.grid_dim,
        walk_length: 40,
        walks_per_node: 4,
        window: 5,
        seed: args.seed,
        ..Node2vecConfig::default()
    };
    let (n2v, n2v_secs) = Node2vecEmbedding::train(&ctx.fine_spec, &n2v_cfg);
    eprintln!(
        "[fig7] grid {}x{}: decomposed NCE pretrain {:.2}s ({} params) vs Node2vec {:.2}s ({} params)",
        ctx.fine_spec.nx(),
        ctx.fine_spec.ny(),
        ctx.pretrain_secs,
        ctx.grid_emb.num_parameters(),
        n2v_secs,
        GridEmbedding::num_parameters(&n2v),
    );

    let mut table = TextTable::new(vec![
        "Variant", "Space", "HR@10", "R10@50", "Pretrain (s)", "Params",
    ]);
    type Variant<'a> = (&'a str, Option<Arc<dyn GridEmbedding + Send + Sync>>, f64, usize);
    let variants: Vec<Variant> = vec![
        (
            "Decomposed+NCE",
            Some(Arc::new(ctx.grid_emb.clone())),
            ctx.pretrain_secs,
            ctx.grid_emb.num_parameters(),
        ),
        (
            "Node2vec",
            Some(Arc::new(n2v.clone())),
            n2v_secs,
            GridEmbedding::num_parameters(&n2v),
        ),
        ("-Grids", None, 0.0, 0),
    ];
    for (name, emb, secs, params) in variants {
        let mcfg = match &emb {
            Some(_) => scale.model.clone(),
            None => scale.model.clone().without_grids(),
        };
        let mut model = match emb {
            Some(e) => Traj2Hash::with_grid_embedding(mcfg, &ctx, e, args.seed),
            None => Traj2Hash::new(mcfg, &ctx, args.seed),
        };
        train(&mut model, &data, &scale.train).expect("training failed");
        let db_e = model.embed_all(&dataset.database);
        let q_e = model.embed_all(&dataset.query);
        let me = eval_euclidean(&db_e, &q_e, &truth);
        let db_h = model.hash_all(&dataset.database);
        let q_h = model.hash_all(&dataset.query);
        let mh = eval_hamming(&db_h, &q_h, &truth);
        table.add_row(vec![
            name.to_string(),
            "Euclidean".to_string(),
            fmt4(me.hr10),
            fmt4(me.r10_50),
            format!("{secs:.2}"),
            params.to_string(),
        ]);
        table.add_row(vec![
            name.to_string(),
            "Hamming".to_string(),
            fmt4(mh.hr10),
            fmt4(mh.r10_50),
            String::new(),
            String::new(),
        ]);
        eprintln!("[fig7] {name}: euclid {me} | hamming {mh}");
    }
    println!("{}", table.render());
}
