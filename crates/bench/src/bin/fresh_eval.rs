//! Fresh resolution sweep: Fresh is data-independent, so its one tunable
//! — the grid resolution — deserves the same per-dataset tuning the
//! paper gave it (they chose 1 km for real taxi data). This harness
//! evaluates Fresh at several resolutions for every city/measure so
//! Table II can quote the best-tuned Fresh.
//!
//! ```text
//! cargo run -p traj-bench --release --bin fresh_eval -- --scale small
//! ```

use traj_baselines::{Fresh, FreshConfig};
use traj_bench::{build_dataset, eval_hamming, test_ground_truth, CommonArgs};
use traj_eval::{fmt4, TextTable};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    let bits = scale.model.dim;
    println!("# Fresh resolution sweep (scale={}, {} bits)\n", scale.name, bits);
    for city in args.cities() {
        let dataset = build_dataset(city, scale, args.seed);
        let mut table = TextTable::new(vec![
            "Dataset", "Measure", "Resolution (m)", "HR@10", "HR@50", "R10@50",
        ]);
        for measure in args.measures() {
            let truth = test_ground_truth(&dataset.query, &dataset.database, measure);
            for resolution in [500.0f64, 1000.0, 2000.0, 4000.0] {
                let fresh = Fresh::new(FreshConfig {
                    resolution,
                    bits_per_rep: bits / 4,
                    seed: args.seed,
                    ..FreshConfig::default()
                });
                let m = eval_hamming(
                    &fresh.hash_all(&dataset.database),
                    &fresh.hash_all(&dataset.query),
                    &truth,
                );
                table.add_row(vec![
                    city.name().to_string(),
                    measure.name().to_string(),
                    format!("{resolution}"),
                    fmt4(m.hr10),
                    fmt4(m.hr50),
                    fmt4(m.r10_50),
                ]);
            }
        }
        println!("{}", table.render());
    }
}
