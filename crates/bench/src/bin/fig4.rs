//! Fig. 4: the effect of the read-out layer (Mean / CLS / LowerBound) on
//! a bare Transformer backbone, searching in Euclidean space, for every
//! measure. All other Traj2Hash techniques (grid channel, reverse
//! augmentation, generated triplets) are disabled, as in the paper.
//!
//! ```text
//! cargo run -p traj-bench --release --bin fig4 -- --scale small
//! ```

use traj_bench::{build_dataset, eval_euclidean, test_ground_truth, CommonArgs};
use traj_eval::{fmt4, TextTable};
use traj2hash::{train, ModelContext, Readout, Traj2Hash, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    println!(
        "# Fig. 4 reproduction — read-out layer comparison (scale={}, seed={})\n",
        scale.name, args.seed
    );
    for city in args.cities() {
        let dataset = build_dataset(city, scale, args.seed);
        let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
        let mut table =
            TextTable::new(vec!["Dataset", "Measure", "Readout", "HR@10", "HR@50", "R10@50"]);
        for measure in args.measures() {
            let truth = test_ground_truth(&dataset.query, &dataset.database, measure);
            let mut tcfg = scale.train.clone().without_triplets();
            tcfg.gamma = 0.0; // pure WMSE: only the read-out varies
            let data = TrainData::prepare(&dataset, measure, &tcfg).expect("failed to prepare training supervision");
            for readout in [Readout::Mean, Readout::Cls, Readout::LowerBound] {
                let mcfg = traj2hash::ModelConfig {
                    readout,
                    ..scale.model.clone().without_rev_aug()
                };
                let mut model = Traj2Hash::new(mcfg, &ctx, args.seed);
                train(&mut model, &data, &tcfg).expect("training failed");
                let db = model.embed_all(&dataset.database);
                let q = model.embed_all(&dataset.query);
                let m = eval_euclidean(&db, &q, &truth);
                table.add_row(vec![
                    city.name().to_string(),
                    measure.name().to_string(),
                    readout.name().to_string(),
                    fmt4(m.hr10),
                    fmt4(m.hr50),
                    fmt4(m.r10_50),
                ]);
                eprintln!(
                    "[fig4] {} {} {}: {}",
                    city.name(),
                    measure.name(),
                    readout.name(),
                    m
                );
            }
        }
        println!("{}", table.render());
    }
}
