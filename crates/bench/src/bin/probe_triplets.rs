//! Diagnostic: triplet generation statistics per city/scale/coarse cell.
use traj_bench::{build_dataset, CommonArgs, City};
use traj_grid::{cluster_by_grid, GridSpec};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    for city in [City::Porto, City::Chengdu] {
        let dataset = build_dataset(city, &args.scale, args.seed);
        let bbox = traj_data::BoundingBox::of_dataset(&dataset.corpus).unwrap();
        for cell in [500.0, 1000.0, 2000.0] {
            let spec = GridSpec::new(bbox, cell);
            let c = cluster_by_grid(&dataset.corpus, &spec);
            let usable: usize = c.clusters.iter().map(|cl| cl.len()).sum();
            println!(
                "{} corpus={} cell={}m: clusters={} usable_members={} singletons={} max={}",
                city.name(), dataset.corpus.len(), cell, c.clusters.len(), usable,
                c.singletons, c.max_cluster
            );
        }
    }
}
