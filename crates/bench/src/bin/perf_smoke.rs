//! Perf-regression smoke benchmark: times the three hot paths the
//! training pipeline lives in — the matmul kernel, one optimizer epoch,
//! and corpus encoding — and writes the wall-clock numbers to
//! `BENCH_pr2.json` so successive PRs accumulate a perf trajectory.
//!
//! Since PR 5 it also gates the observability layer: it measures the
//! disabled-recorder cost per emission site, projects that over the
//! records one instrumented epoch emits, enforces the `< 1%` overhead
//! budget, and then runs a fully instrumented train/serve workload so
//! the obs summary (and, with `OBS_JSONL=path`, the JSONL export)
//! covers epoch spans, all five query-strategy histograms, and a
//! degradation drill. The obs numbers land in `BENCH_pr5.json`.
//!
//! Since PR 7 it also measures the sharded serving layer: the u64-block
//! popcount scan against the per-code naive loop, reader-thread
//! queries/sec at 1, 4, and max-core readers through [`ShardedEngine`],
//! and the `query_many` batched-encode amortization. Those rows land in
//! `BENCH_pr7.json`.
//!
//! Run via `./check.sh bench` (or `cargo run --release -p traj-bench
//! --bin perf_smoke`). Each measurement repeats and takes the best run,
//! so numbers are stable enough to compare across commits on the same
//! machine.

use std::sync::Arc;
use std::time::Instant;
use tinynn::Tensor;
use traj2hash::{validation_hr10, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};
use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_engine::{
    EngineConfig, ShardConfig, ShardedEngine, Strategy, Traj2HashEngine,
};
use traj_index::{BinaryCode, PackedCodes};

/// Best-of-`reps` wall-clock seconds of `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn fill(rows: usize, cols: usize, salt: f32) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| ((i as f32 * 0.37 + salt).sin()) * 0.5)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// ns per matmul of an `n x m` by `m x p` product, best of several runs.
fn bench_matmul(n: usize, m: usize, p: usize) -> f64 {
    let a = fill(n, m, 1.0);
    let b = fill(m, p, 2.0);
    let iters = (50_000_000 / (n * m * p)).clamp(10, 20_000);
    let mut sink = 0.0f32;
    let secs = best_of(5, || {
        for _ in 0..iters {
            sink += a.matmul(&b).get(0, 0);
        }
    });
    assert!(sink.is_finite());
    secs * 1e9 / iters as f64
}

/// Blocking HTTP GET against the ops server; returns (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).expect("connect to ops server");
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let status: u16 = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("parse status line");
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// ns per emission-site call with **no recorder installed** — the price
/// every instrumented hot-path line pays in production by default (one
/// relaxed atomic load and an early return).
fn bench_disabled_record() -> f64 {
    assert!(!traj_obs::enabled(), "disabled-path bench needs no recorder installed");
    let iters = 10_000_000u64;
    let secs = best_of(3, || {
        for i in 0..iters {
            traj_obs::counter(std::hint::black_box("bench.noop"), 1);
            traj_obs::observe_secs(std::hint::black_box("bench.noop"), i as f64);
        }
    });
    secs * 1e9 / (iters * 2) as f64
}

fn main() {
    let sizes = SplitSizes { seeds: 40, validation: 48, corpus: 600, query: 12, database: 200 };
    let dataset = Dataset::generate(CityParams::porto_like(), sizes, 42);
    let mcfg = ModelConfig::small();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 42);

    // ---- matmul kernel ------------------------------------------------
    let mm_64 = bench_matmul(64, 64, 64);
    let mm_seq = bench_matmul(128, 32, 32); // sequence-shaped (n_points x d)
    eprintln!("matmul 64x64x64     : {mm_64:10.0} ns/op");
    eprintln!("matmul 128x32x32    : {mm_seq:10.0} ns/op");

    // ---- one training epoch ------------------------------------------
    let tcfg = TrainConfig {
        epochs: 1,
        validate: false,
        triplets_per_epoch: 128,
        triplet_batch: 32,
        ..TrainConfig::default()
    };
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let epoch = |n_threads: usize| -> f64 {
        let cfg = TrainConfig { num_threads: n_threads, ..tcfg.clone() };
        best_of(2, || {
            let mut model = Traj2Hash::new(mcfg.clone(), &ctx, 7);
            let report = traj2hash::train(&mut model, &data, &cfg).unwrap();
            assert_eq!(report.epoch_losses.len(), 1);
        })
    };
    let epoch_1t = epoch(1);
    eprintln!("epoch, 1 thread     : {epoch_1t:10.3} s");
    let epoch_nt = if threads > 1 { epoch(threads) } else { epoch_1t };
    eprintln!("epoch, {threads} thread(s)  : {epoch_nt:10.3} s");
    // Always measure the 4-worker configuration as well: the acceptance
    // target is stated for a 4-core machine, so the number is recorded
    // even when this host has fewer cores (where it only shows the
    // worker-pool overhead, not a speedup).
    let epoch_4t = if threads == 4 { epoch_nt } else { epoch(4) };
    eprintln!("epoch, 4 workers    : {epoch_4t:10.3} s (on {threads} core(s))");

    // ---- corpus encoding ----------------------------------------------
    let model = Traj2Hash::new(mcfg.clone(), &ctx, 7);
    let corpus_1t = best_of(3, || {
        let e = model.embed_all_with_threads(&dataset.corpus, 1);
        assert_eq!(e.len(), dataset.corpus.len());
    });
    let corpus_nt = if threads > 1 {
        best_of(3, || {
            let e = model.embed_all_with_threads(&dataset.corpus, threads);
            assert_eq!(e.len(), dataset.corpus.len());
        })
    } else {
        corpus_1t
    };
    let enc_rate = dataset.corpus.len() as f64 / corpus_nt;
    eprintln!("corpus encode       : {corpus_1t:10.3} s serial, {enc_rate:8.0} traj/s best");

    // ---- validation HR\@10 (exercises embed_all + exact rank) ---------
    let val = best_of(2, || {
        let _ = validation_hr10(&model, &data);
    });
    eprintln!("validation HR@10    : {val:10.3} s");

    // ---- sharded serving: popcount scan, reader scaling, query_many ---
    // All measured with no recorder installed (the production default),
    // before the instrumented section below swaps a recorder in.
    let serve_corpus = dataset.corpus.clone();
    let codes: Vec<BinaryCode> = model
        .embed_all_with_threads(&serve_corpus, threads)
        .iter()
        .map(|e| BinaryCode::from_floats(e))
        .collect();
    let packed = PackedCodes::build(&codes).expect("pack corpus codes");
    let probe = BinaryCode::from_floats(model.embed(&dataset.query[0]).data());
    let scan_reps = 200usize;
    let naive_secs = best_of(5, || {
        let mut sink = 0u64;
        for _ in 0..scan_reps {
            for c in &codes {
                sink += probe.hamming(c) as u64;
            }
        }
        assert!(std::hint::black_box(sink) > 0);
    });
    let packed_secs = best_of(5, || {
        let mut sink = 0u64;
        for _ in 0..scan_reps {
            packed.scan_into(&probe, |_, d| sink += d as u64);
        }
        assert!(std::hint::black_box(sink) > 0);
    });
    let naive_ns = naive_secs * 1e9 / (scan_reps * codes.len()) as f64;
    let packed_ns = packed_secs * 1e9 / (scan_reps * codes.len()) as f64;
    eprintln!(
        "hamming scan        : {naive_ns:10.2} ns/code naive, {packed_ns:.2} ns/code packed \
         ({:.2}x)",
        naive_ns / packed_ns
    );

    let sharded = ShardedEngine::build_from(
        &model,
        serve_corpus,
        EngineConfig::default(),
        ShardConfig { shards: 4, fan_out_threads: 0 },
    )
    .expect("build sharded engine");
    let queries = &dataset.query;
    // Throughput comes from independent reader threads, each with its
    // own model replica, hammering the shared shard set.
    let reader_qps = |readers: usize| -> f64 {
        const PER_THREAD: usize = 200;
        let mut best = 0.0f64;
        for _ in 0..3 {
            let specs: Vec<_> = (0..readers).map(|_| sharded.reader()).collect();
            let t = Instant::now();
            std::thread::scope(|scope| {
                for spec in specs {
                    scope.spawn(move || {
                        let mut reader = spec.into_reader();
                        for i in 0..PER_THREAD {
                            let q = &queries[i % queries.len()];
                            let hits = reader.query(q, 10, Strategy::HammingBf).unwrap();
                            std::hint::black_box(hits);
                        }
                    });
                }
            });
            best = best.max((readers * PER_THREAD) as f64 / t.elapsed().as_secs_f64());
        }
        best
    };
    let qps_1 = reader_qps(1);
    let qps_4 = reader_qps(4);
    let qps_max = if threads == 4 { qps_4 } else { reader_qps(threads.max(1)) };
    eprintln!(
        "sharded qps         : {qps_1:10.0} @1 reader, {qps_4:.0} @4, {qps_max:.0} @{} \
         (HammingBf, k=10, 4 shards, {threads}-core host)",
        threads.max(1)
    );

    let single_secs = best_of(3, || {
        for q in queries {
            let hits = sharded.query(q, 10, Strategy::HammingBf).unwrap();
            std::hint::black_box(hits);
        }
    });
    let batched_secs = best_of(3, || {
        let all = sharded.query_many(queries, 10, Strategy::HammingBf).unwrap();
        std::hint::black_box(all);
    });
    let single_us = single_secs * 1e6 / queries.len() as f64;
    let batched_us = batched_secs * 1e6 / queries.len() as f64;
    eprintln!(
        "query_many          : {single_us:10.1} us/query one-by-one, {batched_us:.1} us/query \
         batched ({:.2}x)",
        single_us / batched_us
    );

    // ---- trace: disabled-tracing overhead gate ------------------------
    // The sharded query timings above already ran with tracing compiled
    // in but inert (no recorder, no flight recorder). Measure the inert
    // trace machinery on its own — context creation, the step clock a
    // query stamps, sealing — and bound it against the measured
    // per-query latency.
    assert!(
        !traj_obs::enabled() && !traj_obs::flight::installed(),
        "disabled-trace bench needs no trace consumer installed"
    );
    let trace_iters = 5_000_000u64;
    let trace_secs = best_of(3, || {
        for _ in 0..trace_iters {
            let mut t = traj_engine::TraceCtx::new();
            t.step(std::hint::black_box("embed"));
            t.step(std::hint::black_box("fanout"));
            let mut st = t.shard_trace();
            st.step(std::hint::black_box("indexed"));
            t.step(std::hint::black_box("merge"));
            t.step(std::hint::black_box("record"));
            let qt = t.finish(Strategy::HammingBf, 0.0);
            assert_eq!(std::hint::black_box(qt.shard_count()), 0);
        }
    });
    let trace_ns = trace_secs * 1e9 / trace_iters as f64;
    let trace_overhead_pct = trace_ns / (single_us * 1e3) * 100.0;
    eprintln!(
        "trace disabled      : {trace_ns:10.2} ns/query inert, {trace_overhead_pct:.4}% of the \
         {single_us:.1} us sharded query"
    );
    assert!(
        trace_overhead_pct < 1.0,
        "disabled-tracing overhead gate failed: {trace_overhead_pct:.4}% >= 1% of the query path"
    );

    let shard_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_smoke_shard\",\n",
            "  \"workload\": \"porto_like corpus=600 served sharded, ModelConfig::small, HammingBf k=10, 4 shards\",\n",
            "  \"host_cores\": {},\n",
            "  \"hamming_scan\": {{\n",
            "    \"naive_ns_per_code\": {:.2},\n",
            "    \"packed_ns_per_code\": {:.2},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"sharded_queries_per_sec\": {{\n",
            "    \"readers_1\": {:.0},\n",
            "    \"readers_4\": {:.0},\n",
            "    \"readers_max\": {:.0},\n",
            "    \"max_readers\": {}\n",
            "  }},\n",
            "  \"query_many\": {{\n",
            "    \"batch\": {},\n",
            "    \"per_query_us_single\": {:.1},\n",
            "    \"per_query_us_batched\": {:.1},\n",
            "    \"amortization\": {:.2}\n",
            "  }},\n",
            "  \"note\": \"reader scaling measured on a {}-core host; with fewer than 4 cores the 4-reader row measures scheduling overhead, not speedup — the >=2x acceptance target applies to >=4-core hosts. query_many batches the fused dense layers (verified bit-identical); on this model the per-trajectory attention channels dominate query encoding, so end-to-end amortization stays near 1x\"\n",
            "}}\n"
        ),
        threads,
        naive_ns,
        packed_ns,
        naive_ns / packed_ns,
        qps_1,
        qps_4,
        qps_max,
        threads.max(1),
        queries.len(),
        single_us,
        batched_us,
        single_us / batched_us,
        threads,
    );
    std::fs::write("BENCH_pr7.json", &shard_json).expect("write BENCH_pr7.json");
    println!("{shard_json}");

    // ---- ground truth at 100K: pruned driver vs dense scan ------------
    // The PR 8 headline: exact top-k ground truth over a 100K-trajectory
    // database through the bucket-pruned driver, with the dense all-pairs
    // scan timed on a query prefix as the honest "before" number (each
    // dense query costs exactly |database| distance computations, so the
    // linear projection to the full query set is sound). run_gt_bench
    // verifies recall == 1.0 against the dense rows before returning.
    let gt_cfg = traj_bench::GtBenchConfig::full();
    eprintln!(
        "ground truth 100K   : generating {} trajectories...",
        gt_cfg.database + gt_cfg.queries
    );
    let gt = traj_bench::run_gt_bench(&gt_cfg);
    eprintln!("ground truth 100K   : {}", gt.summary());
    assert!(
        gt.pruning_rate >= 0.90,
        "pruning-rate gate failed: {:.1}% < 90% at 100K",
        gt.pruning_rate * 100.0
    );
    let gt_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_smoke_ground_truth\",\n",
            "  \"workload\": \"porto_like database=100000 queries=200 k=50, exact top-k ground truth\",\n",
            "  \"before_dense\": {{\n",
            "    \"queries_measured\": {},\n",
            "    \"secs_measured\": {:.3},\n",
            "    \"secs_projected_all_queries\": {:.3},\n",
            "    \"note\": \"dense scan timed on a query prefix and projected linearly; each dense query costs exactly |database| distance computations\"\n",
            "  }},\n",
            "  \"after_pruned\": {gt_report},\n",
            "  \"gate_pruning_rate_at_least_90pct\": true,\n",
            "  \"gate_recall_exactly_1\": true\n",
            "}}\n"
        ),
        gt.cfg.dense_queries,
        gt.dense_secs_measured,
        gt.dense_secs_projected,
        gt_report = gt.to_json().trim_start(),
    );
    std::fs::write("BENCH_pr8.json", &gt_json).expect("write BENCH_pr8.json");
    println!("{gt_json}");

    // ---- obs: disabled-recorder overhead gate -------------------------
    // Everything above ran with no recorder installed, i.e. on exactly
    // the instrumented-but-disabled path shipped by default. Measure
    // that path's per-call cost, count how many emissions one epoch
    // actually makes, and bound the total against the epoch itself.
    let disabled_ns = bench_disabled_record();
    eprintln!("obs disabled call   : {disabled_ns:10.2} ns/record");

    let counting = Arc::new(traj_obs::InMemoryRecorder::default());
    traj_obs::install(counting.clone());
    let epoch_enabled = {
        let cfg = TrainConfig { num_threads: 1, ..tcfg.clone() };
        let t = Instant::now();
        let mut m = Traj2Hash::new(mcfg.clone(), &ctx, 7);
        let report = traj2hash::train(&mut m, &data, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 1);
        t.elapsed().as_secs_f64()
    };
    traj_obs::uninstall();
    let records_per_epoch = counting.record_count();
    let overhead_pct = disabled_ns * records_per_epoch as f64 / (epoch_1t * 1e9) * 100.0;
    eprintln!(
        "obs overhead        : {records_per_epoch} records/epoch, disabled {overhead_pct:.5}% \
         of the 1-thread epoch ({epoch_enabled:.3} s with in-memory recorder)"
    );
    assert!(
        overhead_pct < 1.0,
        "disabled-recorder overhead gate failed: {overhead_pct:.4}% >= 1% of the epoch"
    );

    // ---- obs: instrumented train/serve workload -----------------------
    // With a real recorder installed (JSONL when OBS_JSONL=path is set,
    // in-memory otherwise): two validated training epochs, all five
    // query strategies, live churn, a snapshot round-trip, and a forced
    // degradation drill, so every span/metric family in DESIGN.md §11
    // shows up in the export.
    let handle = traj_obs::init_from_env().expect("install obs recorder");
    let tele_cfg =
        TrainConfig { epochs: 2, validate: true, num_threads: 1, ..tcfg.clone() };
    let mut trained = Traj2Hash::new(mcfg.clone(), &ctx, 7);
    let report = traj2hash::train(&mut trained, &data, &tele_cfg).unwrap();
    eprintln!(
        "instrumented train  : {:10.3} s over {} epoch(s), {:.3} s validation",
        report.timings.epoch_seconds.iter().sum::<f64>(),
        report.timings.epoch_seconds.len(),
        report.timings.validation_seconds,
    );

    let mut engine =
        Traj2HashEngine::build_from(&trained, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    for strategy in Strategy::ALL {
        for q in &dataset.query {
            let _ = engine.query(q, 10, strategy).unwrap();
        }
    }
    let inserted: Vec<u64> =
        dataset.corpus.iter().take(8).map(|t| engine.insert(t.clone())).collect();
    for id in &inserted[..4] {
        engine.remove(*id).unwrap();
    }
    engine.compact();
    let snap = std::env::temp_dir().join(format!("perf_smoke_{}.t2hsnap", std::process::id()));
    engine.save_snapshot(&snap).unwrap();
    let reloaded = Traj2HashEngine::load_snapshot(&snap).unwrap();
    assert_eq!(reloaded.len(), engine.len());
    let _ = std::fs::remove_file(&snap);
    engine.force_degrade();
    for strategy in Strategy::ALL {
        let (_, info) = engine.query_with_info(&dataset.query[0], 10, strategy).unwrap();
        assert!(info.degraded, "{strategy:?} must report degraded mode after force_degrade");
    }

    // ---- ops: scrape-under-load self-test -----------------------------
    // With the recorder still installed: stand up the flight recorder
    // and the ops HTTP server, run query load so traces land in the
    // ring, then scrape /metrics, /healthz, and /traces over real TCP
    // and validate each payload with the offline validators.
    traj_obs::flight::install(traj_obs::FlightConfig {
        capacity: 32,
        tail_threshold_seconds: 0.0,
        dump_path: None,
    });
    let health = traj_obs::OpsHealth::new();
    let mut ops = traj_obs::OpsServer::start(0, Arc::clone(&health)).expect("start ops server");
    for strategy in Strategy::ALL {
        for q in &dataset.query {
            let hits = sharded.query(q, 10, strategy).unwrap();
            std::hint::black_box(hits);
        }
    }
    let (status, metrics) = http_get(ops.addr(), "/metrics");
    assert_eq!(status, 200, "/metrics must answer 200");
    let samples = traj_obs::validate_exposition(&metrics)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition: {e}"));
    assert!(
        metrics.contains("# TYPE engine_query_candidates histogram"),
        "scrape must carry the query-path histograms:\n{metrics}"
    );
    let (status, body) = http_get(ops.addr(), "/healthz");
    assert_eq!(status, 200, "/healthz must answer 200 while healthy");
    assert!(body.starts_with("ok"), "healthz body: {body}");
    health.set(false, "bench drill");
    let (status, body) = http_get(ops.addr(), "/healthz");
    assert_eq!(status, 503, "/healthz must answer 503 once degraded");
    assert!(body.starts_with("degraded"), "healthz body: {body}");
    health.set(true, "bench");
    let (status, traces) = http_get(ops.addr(), "/traces");
    assert_eq!(status, 200, "/traces must answer 200");
    let mut n_traces = 0usize;
    for line in traces.lines().filter(|l| !l.trim().is_empty()) {
        traj_obs::validate_record(line)
            .unwrap_or_else(|e| panic!("invalid trace line: {e}\n  {line}"));
        n_traces += 1;
    }
    assert!(n_traces > 0, "flight recorder captured no traces under load");
    eprintln!(
        "ops scrape          : {samples} metric samples, {n_traces} flight traces via \
         127.0.0.1:{}",
        ops.port()
    );
    ops.shutdown();
    traj_obs::flight::uninstall();

    let tele = engine.telemetry();
    traj_obs::flush();
    eprint!("{}", tele.summary());
    eprint!("{}", handle.summary());

    // Self-validate the JSONL export: every line must round-trip through
    // the hand-rolled parser and the per-kind schema check.
    if let Some(path) = std::env::var_os("OBS_JSONL") {
        let text = std::fs::read_to_string(&path).expect("read OBS_JSONL back");
        let mut kinds = std::collections::BTreeMap::<String, usize>::new();
        for line in text.lines() {
            let rec = traj_obs::validate_record(line)
                .unwrap_or_else(|e| panic!("invalid JSONL record: {e}\n  {line}"));
            *kinds.entry(rec.kind).or_insert(0) += 1;
        }
        eprintln!("OBS_JSONL validated : {} records {:?}", text.lines().count(), kinds);
    }

    // Pre-PR baseline, measured on this machine at commit 3c995e9 with
    // the identical workload (sequential trainer, naive tape): kept as
    // literals so the speedup is visible in every regenerated file.
    let baseline = format!(
        concat!(
            "  \"baseline_pr1\": {{\n",
            "    \"commit\": \"3c995e9\",\n",
            "    \"matmul_64x64x64_ns\": {},\n",
            "    \"matmul_128x32x32_ns\": {},\n",
            "    \"epoch_seconds\": {},\n",
            "    \"corpus_encode_seconds\": {},\n",
            "    \"validation_hr10_seconds\": {}\n",
            "  }}"
        ),
        BASELINE.0, BASELINE.1, BASELINE.2, BASELINE.3, BASELINE.4
    );
    let current = format!(
        concat!(
            "  \"pr2\": {{\n",
            "    \"machine_cores\": {},\n",
            "    \"matmul_64x64x64_ns\": {:.0},\n",
            "    \"matmul_128x32x32_ns\": {:.0},\n",
            "    \"epoch_seconds_1_thread\": {:.3},\n",
            "    \"epoch_seconds_best\": {:.3},\n",
            "    \"epoch_seconds_4_workers\": {:.3},\n",
            "    \"corpus_encode_seconds_1_thread\": {:.3},\n",
            "    \"corpus_encode_seconds_best\": {:.3},\n",
            "    \"validation_hr10_seconds\": {:.3},\n",
            "    \"note\": \"4-worker epoch on a {}-core machine; with fewer than 4 cores it measures pool overhead, not speedup\"\n",
            "  }}"
        ),
        threads, mm_64, mm_seq, epoch_1t, epoch_nt, epoch_4t, corpus_1t, corpus_nt, val, threads
    );
    let json = format!(
        "{{\n  \"bench\": \"perf_smoke\",\n  \"workload\": \"porto_like seeds=40 corpus=600, ModelConfig::small, 1 epoch\",\n{baseline},\n{current}\n}}\n"
    );
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    println!("{json}");

    let strategy_p50s = Strategy::ALL
        .iter()
        .map(|s| {
            format!(
                "    \"{}\": {:.1}",
                s.metric_name(),
                tele.strategy(*s).latency.p50() * 1e6
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let obs_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_smoke_obs\",\n",
            "  \"workload\": \"porto_like seeds=40 corpus=600, ModelConfig::small; instrumented 2-epoch train + 5-strategy serve + degradation drill\",\n",
            "  \"disabled_ns_per_record\": {:.2},\n",
            "  \"records_per_epoch\": {},\n",
            "  \"epoch_seconds_disabled\": {:.3},\n",
            "  \"epoch_seconds_inmemory_recorder\": {:.3},\n",
            "  \"disabled_overhead_pct_of_epoch\": {:.5},\n",
            "  \"gate_disabled_overhead_under_1pct\": true,\n",
            "  \"enabled_query_p50_us\": {{\n{}\n  }},\n",
            "  \"total_queries\": {},\n",
            "  \"linear_fallbacks\": {},\n",
            "  \"degraded_rebuilds\": {}\n",
            "}}\n"
        ),
        disabled_ns,
        records_per_epoch,
        epoch_1t,
        epoch_enabled,
        overhead_pct,
        strategy_p50s,
        tele.total_queries(),
        tele.total_linear_fallbacks(),
        tele.degraded_rebuilds,
    );
    std::fs::write("BENCH_pr5.json", &obs_json).expect("write BENCH_pr5.json");
    println!("{obs_json}");

    let trace_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_smoke_trace\",\n",
            "  \"workload\": \"porto_like corpus=600 sharded HammingBf k=10; inert TraceCtx per query vs measured query latency; scrape-under-load via the ops HTTP server\",\n",
            "  \"disabled_trace_ns_per_query\": {:.2},\n",
            "  \"sharded_query_us\": {:.1},\n",
            "  \"disabled_trace_overhead_pct_of_query\": {:.4},\n",
            "  \"gate_disabled_trace_under_1pct\": true,\n",
            "  \"ops_scrape\": {{\n",
            "    \"metric_samples\": {},\n",
            "    \"flight_traces_drained\": {},\n",
            "    \"endpoints\": [\"/metrics\", \"/healthz\", \"/traces\"]\n",
            "  }}\n",
            "}}\n"
        ),
        trace_ns,
        single_us,
        trace_overhead_pct,
        samples,
        n_traces,
    );
    std::fs::write("BENCH_pr10.json", &trace_json).expect("write BENCH_pr10.json");
    println!("{trace_json}");
}

/// Pre-PR numbers (matmul 64/seq ns, epoch s, corpus-encode s, HR@10 s).
const BASELINE: (f64, f64, f64, f64, f64) = (30877.0, 21729.0, 0.276, 0.789, 0.065);
