//! Extension experiment (beyond the paper): the paper's Hamming-Hybrid
//! strategy falls back to a full scan whenever the radius-2 ball holds
//! fewer than k results (footnote 5's empty-bucket problem). This
//! harness compares it against two exact pruning indexes this library
//! adds — multi-index hashing for Hamming space and a VP-tree for
//! Euclidean space — over both a clustered and a uniform (adversarial)
//! code distribution.
//!
//! ```text
//! cargo run -p traj-bench --release --bin ext_indexes
//! ```

use std::time::Instant;
use traj_bench::{clustered_workload, CommonArgs};
use traj_eval::{fmt_ms, TextTable};
use traj_index::{euclidean_top_k, hamming_top_k, HammingTable, MultiIndexHashing, VpTree};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let bits = 32;
    let k = 10;
    let n_query = 100;
    println!(
        "# Extension — exact index structures vs the paper's strategies (bits={bits}, k={k})\n"
    );
    for (label, max_flips, clusters_per) in [("clustered", 2usize, 400usize), ("uniform", bits, 1)]
    {
        let mut table = TextTable::new(vec![
            "Distribution",
            "DB size",
            "Euclid-BF (ms)",
            "VP-tree (ms)",
            "Hamming-BF (ms)",
            "Hybrid (ms)",
            "MIH (ms)",
        ]);
        for n_db in [20_000usize, 100_000] {
            let clusters = if clusters_per == 1 { n_db } else { n_db / clusters_per };
            let w = clustered_workload(n_db, n_query, bits, clusters, max_flips, args.seed);

            let t0 = Instant::now();
            for q in &w.query_embeddings {
                std::hint::black_box(euclidean_top_k(&w.db_embeddings, q, k));
            }
            let bf_e = t0.elapsed().as_secs_f64() / n_query as f64;

            let vp = VpTree::build(w.db_embeddings.clone());
            let t1 = Instant::now();
            for q in &w.query_embeddings {
                std::hint::black_box(vp.top_k(q, k));
            }
            let vp_t = t1.elapsed().as_secs_f64() / n_query as f64;

            let t2 = Instant::now();
            for q in &w.query_codes {
                std::hint::black_box(hamming_top_k(&w.db_codes, q, k));
            }
            let bf_h = t2.elapsed().as_secs_f64() / n_query as f64;

            let hybrid = HammingTable::build(w.db_codes.clone());
            let t3 = Instant::now();
            for q in &w.query_codes {
                std::hint::black_box(hybrid.hybrid_top_k(q, k).expect("matching widths"));
            }
            let hy = t3.elapsed().as_secs_f64() / n_query as f64;

            let mih = MultiIndexHashing::build(w.db_codes.clone(), 4);
            let t4 = Instant::now();
            for q in &w.query_codes {
                std::hint::black_box(mih.top_k(q, k).expect("matching widths"));
            }
            let mi = t4.elapsed().as_secs_f64() / n_query as f64;

            // sanity: MIH must agree with brute force
            let a = mih.top_k(&w.query_codes[0], k).expect("matching widths");
            let b = hamming_top_k(&w.db_codes, &w.query_codes[0], k);
            assert_eq!(
                a.iter().map(|h| h.distance).collect::<Vec<_>>(),
                b.iter().map(|h| h.distance).collect::<Vec<_>>()
            );

            table.add_row(vec![
                label.to_string(),
                format!("{}K", n_db / 1000),
                fmt_ms(bf_e),
                fmt_ms(vp_t),
                fmt_ms(bf_h),
                fmt_ms(hy),
                fmt_ms(mi),
            ]);
            eprintln!(
                "[ext_indexes] {label} db={n_db}: euclid-bf {:.3} vp {:.3} | hamming-bf {:.3} hybrid {:.3} mih {:.3} (ms)",
                bf_e * 1e3, vp_t * 1e3, bf_h * 1e3, hy * 1e3, mi * 1e3
            );
        }
        println!("{}", table.render());
    }
    println!(
        "On the uniform distribution the radius-2 ball is empty, so Hybrid pays\n\
         the probe cost AND the fallback scan, while MIH stays exact and sub-scan."
    );
}
