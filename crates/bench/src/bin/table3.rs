//! Table III: cumulative ablation of Traj2Hash (full / -Grids / -RevAug /
//! -Triplets) evaluated in both Euclidean and Hamming space under the
//! Fréchet distance and DTW.
//!
//! ```text
//! cargo run -p traj-bench --release --bin table3 -- --scale small
//! ```

use traj_bench::{build_dataset, eval_euclidean, eval_hamming, test_ground_truth, CommonArgs};
use traj_dist::Measure;
use traj_eval::{fmt4, TextTable};
use traj2hash::{train, ModelContext, Traj2Hash, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    println!(
        "# Table III reproduction — ablation study (scale={}, seed={})\n",
        scale.name, args.seed
    );
    // The paper's Table III covers Frechet and DTW.
    let measures: Vec<Measure> = args
        .measures()
        .into_iter()
        .filter(|m| matches!(m, Measure::Frechet | Measure::Dtw))
        .collect();
    for city in args.cities() {
        let dataset = build_dataset(city, scale, args.seed);
        let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
        let mut table = TextTable::new(vec![
            "Dataset", "Measure", "Space", "Metric", "Traj2Hash", "-Grids", "-RevAug",
            "-Triplets",
        ]);
        for &measure in &measures {
            let truth = test_ground_truth(&dataset.query, &dataset.database, measure);
            let data = TrainData::prepare(&dataset, measure, &scale.train).expect("failed to prepare training supervision");

            // (model config, train config) per cumulative ablation
            let variants = [
                ("Traj2Hash", scale.model.clone(), scale.train.clone()),
                ("-Grids", scale.model.clone().without_grids(), scale.train.clone()),
                ("-RevAug", scale.model.clone().without_rev_aug(), scale.train.clone()),
                (
                    "-Triplets",
                    scale.model.clone().without_rev_aug(),
                    scale.train.clone().without_triplets(),
                ),
            ];
            let mut euclid = Vec::new();
            let mut hamming = Vec::new();
            for (name, mcfg, tcfg) in &variants {
                let mut model = Traj2Hash::new(mcfg.clone(), &ctx, args.seed);
                let report = train(&mut model, &data, tcfg).expect("training failed");
                let db_e = model.embed_all(&dataset.database);
                let q_e = model.embed_all(&dataset.query);
                euclid.push(eval_euclidean(&db_e, &q_e, &truth));
                let db_h = model.hash_all(&dataset.database);
                let q_h = model.hash_all(&dataset.query);
                hamming.push(eval_hamming(&db_h, &q_h, &truth));
                eprintln!(
                    "[table3] {} {} {}: euclid {} | hamming {} ({:.1}s)",
                    city.name(),
                    measure.name(),
                    name,
                    euclid.last().unwrap(),
                    hamming.last().unwrap(),
                    report.seconds
                );
            }
            for (space, ms) in [("Euclidean", &euclid), ("Hamming", &hamming)] {
                for (metric, get) in [
                    ("HR@10", 0usize),
                    ("HR@50", 1),
                    ("R10@50", 2),
                ] {
                    let pick = |m: &traj_eval::Metrics| match get {
                        0 => m.hr10,
                        1 => m.hr50,
                        _ => m.r10_50,
                    };
                    table.add_row(vec![
                        city.name().to_string(),
                        measure.name().to_string(),
                        space.to_string(),
                        metric.to_string(),
                        fmt4(pick(&ms[0])),
                        fmt4(pick(&ms[1])),
                        fmt4(pick(&ms[2])),
                        fmt4(pick(&ms[3])),
                    ]);
                }
            }
        }
        println!("{}", table.render());
    }
}
