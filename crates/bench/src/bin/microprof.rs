//! Microprofile of the embed forward/backward path: attributes
//! per-stage cost (positional encoding, matmul shapes, softmax,
//! attention kernels, a full encoder block) so perf work can target the
//! actual hot spots. Diagnostic only — `perf_smoke` is the gate.

use std::time::Instant;
use tinynn::layers::positional_encoding;
use tinynn::{Tape, Tensor};
use traj_bench::build_dataset;
use traj_data::{CityParams, SplitSizes};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

fn time<F: FnMut()>(label: &str, iters: usize, mut f: F) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{label:26} {:>10.2} us/op", per * 1e6);
}

fn main() {
    let mut scale = traj_bench::Scale::tiny();
    scale.sizes = SplitSizes { seeds: 40, validation: 48, corpus: 600, query: 12, database: 200 };
    scale.model = ModelConfig::small();
    let _ = CityParams::porto_like();
    let dataset = build_dataset(traj_bench::City::Porto, &scale, 42);
    let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, 42);
    let model = Traj2Hash::new(scale.model.clone(), &ctx, 7);
    let t = &dataset.corpus[0];
    let n = t.len();
    let d = scale.model.dim;
    println!("trajectory len = {n}, dim = {d}");

    time("embed (full, fwd only)", 200, || {
        let tape = Tape::new();
        let _ = model.embed_var(&tape, t).value();
    });
    time("embed fwd+bwd", 200, || {
        let tape = Tape::new();
        let v = model.embed_var(&tape, t);
        v.square().mean_all().backward();
    });
    time("positional_encoding", 1000, || {
        let _ = positional_encoding(n, d);
    });
    let a = Tensor::from_vec(n, d, (0..n * d).map(|i| i as f32 * 0.001).collect());
    let w = Tensor::from_vec(d, d, (0..d * d).map(|i| i as f32 * 0.001).collect());
    time("matmul n*d x d*d", 1000, || {
        let _ = a.matmul(&w);
    });
    let q = a.clone();
    time("matmul_transposed nxn", 1000, || {
        let _ = q.matmul_transposed(&a);
    });
    let tape = Tape::new();
    let av = tape.constant(a.clone());
    time("softmax_rows fwd", 1000, || {
        let _ = av.slice_cols(0, d).softmax_rows().value();
    });
    time("tape constant+slice", 1000, || {
        let _ = av.slice_cols(0, d).value();
    });

    // attention-shaped kernels: n x n scores with dh = d / heads
    let dh = d / 2;
    let qh = Tensor::from_vec(n, dh, (0..n * dh).map(|i| (i as f32 * 0.1).sin()).collect());
    let scores = qh.matmul_transposed(&qh);
    time("scores n*dh nt", 1000, || {
        let _ = qh.matmul_transposed(&qh);
    });
    time("softmax n*n", 1000, || {
        let _ = scores.softmax_rows();
    });
    time("attn*v n*n x n*dh", 1000, || {
        let _ = scores.matmul(&qh);
    });
    // one full encoder-block forward on tape
    {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let mut ps = tinynn::ParamSet::new();
        let block = tinynn::EncoderBlock::new(&mut rng, &mut ps, d, 2 * d, 2);
        let x = Tensor::from_vec(n, d, (0..n * d).map(|i| (i as f32 * 0.01).sin()).collect());
        time("encoder block fwd", 500, || {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let _ = block.forward(&tape, &xv).value();
        });
        time("encoder block fwd+bwd", 500, || {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            block.forward(&tape, &xv).square().mean_all().backward();
        });
    }
}
