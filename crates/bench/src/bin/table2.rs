//! Table II: top-k search accuracy in **Hamming space**. Every dense
//! baseline gets the paper's trainable linear hash head (ranking
//! objective, Section V-A3); Fresh hashes directly; Traj2Hash uses
//! `sign(h_f)`.
//!
//! ```text
//! cargo run -p traj-bench --release --bin table2 -- --scale small
//! ```

use traj_baselines::{Fresh, FreshConfig, HashHead, HashHeadConfig};
use traj_bench::{
    build_dataset, eval_hamming, test_ground_truth, train_dense, train_traj2hash, CommonArgs,
    DenseMethod,
};
use traj_eval::{fmt4, TextTable};
use traj2hash::{ModelContext, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    println!(
        "# Table II reproduction — Hamming space (scale={}, seed={})\n",
        scale.name, args.seed
    );
    let bits = scale.model.dim; // d_h = d, as in the paper
    for city in args.cities() {
        let dataset = build_dataset(city, scale, args.seed);
        let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
        let mut table = TextTable::new(vec![
            "Dataset", "Method", "Measure", "HR@10", "HR@50", "R10@50",
        ]);
        for measure in args.measures() {
            let truth = test_ground_truth(&dataset.query, &dataset.database, measure);
            let data = TrainData::prepare(&dataset, measure, &scale.train).expect("failed to prepare training supervision");
            let dense_sim = data.sim.to_dense();
            let head_cfg = HashHeadConfig {
                bits,
                alpha: scale.train.alpha,
                epochs: scale.baseline_epochs.max(10),
                seed: args.seed,
                ..HashHeadConfig::default()
            };
            for method in DenseMethod::all() {
                let enc = train_dense(method, &dataset, &ctx, &data, scale, args.seed);
                let seed_embs = enc.embed_all(&dataset.seeds);
                let (head, _) = HashHead::train(&seed_embs, &dense_sim, &head_cfg);
                let db = head.hash_all(&enc.embed_all(&dataset.database));
                let q = head.hash_all(&enc.embed_all(&dataset.query));
                let m = eval_hamming(&db, &q, &truth);
                table.add_row(vec![
                    city.name().to_string(),
                    method.name().to_string(),
                    measure.name().to_string(),
                    fmt4(m.hr10),
                    fmt4(m.hr50),
                    fmt4(m.r10_50),
                ]);
                eprintln!("[table2] {} {} {}: {}", city.name(), method.name(), measure.name(), m);
            }
            // Fresh: data-independent LSH; bits_per_rep chosen so the
            // total code width matches the neural methods'.
            // Resolution tuned per dataset like the paper tuned its 1 km
            // for real taxi data; see `fresh_eval` for the sweep. The
            // synthetic trips need coarser cells for partial collisions,
            // consistent with the coarse-triplet-cell scaling (DESIGN.md).
            let fresh = Fresh::new(FreshConfig {
                resolution: 4000.0,
                bits_per_rep: bits / 4,
                seed: args.seed,
                ..FreshConfig::default()
            });
            let db = fresh.hash_all(&dataset.database);
            let q = fresh.hash_all(&dataset.query);
            let m = eval_hamming(&db, &q, &truth);
            table.add_row(vec![
                city.name().to_string(),
                "Fresh".to_string(),
                measure.name().to_string(),
                fmt4(m.hr10),
                fmt4(m.hr50),
                fmt4(m.r10_50),
            ]);
            eprintln!("[table2] {} Fresh {}: {}", city.name(), measure.name(), m);

            let (model, _) = train_traj2hash(&dataset, &ctx, &data, scale, args.seed);
            let db = model.hash_all(&dataset.database);
            let q = model.hash_all(&dataset.query);
            let m = eval_hamming(&db, &q, &truth);
            table.add_row(vec![
                city.name().to_string(),
                "Traj2Hash".to_string(),
                measure.name().to_string(),
                fmt4(m.hr10),
                fmt4(m.hr50),
                fmt4(m.r10_50),
            ]);
            eprintln!("[table2] {} Traj2Hash {}: {}", city.name(), measure.name(), m);
        }
        println!("{}", table.render());
    }
}
