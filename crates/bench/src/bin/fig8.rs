//! Fig. 8: HR@10 in Euclidean and Hamming space as the ranking margin
//! `alpha` varies over [0, 25].
//!
//! ```text
//! cargo run -p traj-bench --release --bin fig8 -- --city porto --measure dtw
//! ```

use traj_bench::{build_dataset, eval_euclidean, eval_hamming, test_ground_truth, CommonArgs};
use traj_eval::{fmt4, TextTable};
use traj2hash::{train, ModelContext, Traj2Hash, TrainData};

fn main() {
    let args = CommonArgs::parse(&std::env::args().skip(1).collect::<Vec<_>>());
    let scale = &args.scale;
    let city = args.cities()[0];
    println!(
        "# Fig. 8 reproduction — effect of the margin alpha ({}, scale={})\n",
        city.name(),
        scale.name
    );
    let dataset = build_dataset(city, scale, args.seed);
    let ctx = ModelContext::prepare(&dataset.training_visible(), &scale.model, args.seed);
    for measure in args.measures() {
        let truth = test_ground_truth(&dataset.query, &dataset.database, measure);
        let data = TrainData::prepare(&dataset, measure, &scale.train).expect("failed to prepare training supervision");
        let mut table =
            TextTable::new(vec!["Measure", "alpha", "HR@10 (Euclidean)", "HR@10 (Hamming)"]);
        for alpha in [0.0f32, 1.0, 5.0, 10.0, 25.0] {
            let mut tcfg = scale.train.clone();
            tcfg.alpha = alpha;
            let mut model = Traj2Hash::new(scale.model.clone(), &ctx, args.seed);
            train(&mut model, &data, &tcfg).expect("training failed");
            let me = eval_euclidean(
                &model.embed_all(&dataset.database),
                &model.embed_all(&dataset.query),
                &truth,
            );
            let mh = eval_hamming(
                &model.hash_all(&dataset.database),
                &model.hash_all(&dataset.query),
                &truth,
            );
            table.add_row(vec![
                measure.name().to_string(),
                format!("{alpha}"),
                fmt4(me.hr10),
                fmt4(mh.hr10),
            ]);
            eprintln!(
                "[fig8] {} alpha={alpha}: euclid HR@10 {:.4} | hamming HR@10 {:.4}",
                measure.name(),
                me.hr10,
                mh.hr10
            );
        }
        println!("{}", table.render());
    }
}
