//! Ground-truth scale benchmark CLI: runs the bucket-pruned exact
//! top-k driver against the dense oracle on large synthetic corpora
//! and prints pruning rate, recall (must be 1.0 — exactness), and
//! wall-clock speedup.
//!
//! ```text
//! gt_bench --smoke                 # 10K database, seconds (check.sh gate)
//! gt_bench --full                  # 100K database (BENCH_pr8.json workload)
//! gt_bench --db 50000 --queries 100 --measure frechet
//! ```

use traj_bench::{run_gt_bench, GtBenchConfig};
use traj_dist::Measure;

fn usage(msg: &str) -> ! {
    // lint: allow(raw-print) — CLI usage text goes to stderr by design
    eprintln!(
        "{msg}\n\nusage: gt_bench [--smoke|--full] [--db N] [--queries N] \
         [--dense-queries N] [--k N] [--cell-m M] \
         [--measure dtw|frechet|hausdorff|cdtw(N)|erp(x,y)|edr(eps)] [--seed N]"
    );
    std::process::exit(2)
}

fn parse_args(args: &[String]) -> GtBenchConfig {
    let mut cfg = GtBenchConfig::smoke();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => cfg = GtBenchConfig::smoke(),
            "--full" => cfg = GtBenchConfig::full(),
            "--db" => {
                i += 1;
                cfg.database = num(args.get(i), "--db");
            }
            "--queries" => {
                i += 1;
                cfg.queries = num(args.get(i), "--queries");
            }
            "--dense-queries" => {
                i += 1;
                cfg.dense_queries = num(args.get(i), "--dense-queries");
            }
            "--k" => {
                i += 1;
                cfg.k = num(args.get(i), "--k");
            }
            "--cell-m" => {
                i += 1;
                cfg.cell_m = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--cell-m needs a number"));
            }
            "--measure" => {
                i += 1;
                cfg.measure = args
                    .get(i)
                    .and_then(|s| Measure::from_name(s))
                    .unwrap_or_else(|| usage("unknown measure"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage("gt_bench options"),
            other => usage(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    cfg
}

fn num(arg: Option<&String>, flag: &str) -> usize {
    arg.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs an integer")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args);
    // lint: allow(raw-print) — benchmark binaries report to stdout
    println!(
        "gt_bench: db={} queries={} dense_queries={} k={} cell_m={} measure={} seed={}",
        cfg.database, cfg.queries, cfg.dense_queries, cfg.k, cfg.cell_m, cfg.measure, cfg.seed
    );
    let report = run_gt_bench(&cfg);
    // lint: allow(raw-print)
    println!("generated corpus in {:.2}s", report.generate_secs);
    // lint: allow(raw-print)
    println!("{}", report.summary());
    // lint: allow(raw-print)
    println!(
        "pairs: total={} bucket_pruned={} lb_pruned={} exact={}",
        report.stats.pairs_total,
        report.stats.pairs_pruned_bucket,
        report.stats.pairs_pruned_lb,
        report.stats.pairs_exact
    );
}
