//! Ground-truth scale benchmark: the bucket-pruned exact driver against
//! the dense all-pairs scan on large synthetic corpora.
//!
//! The pruned driver is *exact* (see `traj_dist::sparse`), so "recall"
//! here is a verification output, not a quality metric — it must be
//! `1.0` on every run, and [`run_gt_bench`] asserts it. The interesting
//! numbers are the pruning rate (fraction of query–database pairs whose
//! exact distance was never computed) and the wall-clock speedup over
//! the dense scan. The dense side is measured on a query prefix and
//! extrapolated linearly — each dense query costs exactly `|database|`
//! distance computations, so the projection is sound — and the report
//! records both the measured and the projected number.

use std::time::Instant;
use traj_data::{CityGenerator, CityParams, Trajectory};
use traj_dist::{Measure, PruneStats};
use traj_eval::{dense_ground_truth_top_k, ground_truth_top_k_with, GroundTruthOptions};
use traj_eval::recall_k1_at_k2;

/// Mean recall of `predicted` against `truth`, row by row.
fn mean_recall(predicted: &[Vec<usize>], truth: &[Vec<usize>], k: usize) -> f64 {
    if predicted.is_empty() {
        return 0.0;
    }
    let total: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| recall_k1_at_k2(p, t, k, k))
        .sum();
    total / predicted.len() as f64
}

/// Workload of one ground-truth benchmark run.
#[derive(Debug, Clone)]
pub struct GtBenchConfig {
    /// Database trajectories to generate.
    pub database: usize,
    /// Queries driven through the pruned driver.
    pub queries: usize,
    /// Prefix of the queries also driven through the dense oracle (the
    /// wall-clock reference and the recall check).
    pub dense_queries: usize,
    /// Neighbours per query.
    pub k: usize,
    /// Coarse bucket cell size (meters).
    pub cell_m: f64,
    /// Distance measure.
    pub measure: Measure,
    /// Generator seed.
    pub seed: u64,
}

impl GtBenchConfig {
    /// Small configuration for the `./check.sh prune` gate: large enough
    /// that bucket pruning demonstrably fires, small enough to finish in
    /// seconds.
    pub fn smoke() -> GtBenchConfig {
        GtBenchConfig {
            database: 10_000,
            queries: 40,
            dense_queries: 8,
            k: 50,
            cell_m: 500.0,
            measure: Measure::Hausdorff,
            seed: 42,
        }
    }

    /// The 100K-corpus run recorded in `BENCH_pr8.json`.
    pub fn full() -> GtBenchConfig {
        GtBenchConfig {
            database: 100_000,
            queries: 200,
            dense_queries: 10,
            k: 50,
            cell_m: 500.0,
            measure: Measure::Hausdorff,
            seed: 42,
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct GtBenchReport {
    /// The workload.
    pub cfg: GtBenchConfig,
    /// Seconds generating the synthetic corpus.
    pub generate_secs: f64,
    /// Wall-clock of the pruned driver over all `queries`.
    pub pruned_secs: f64,
    /// Wall-clock of the dense oracle over the `dense_queries` prefix.
    pub dense_secs_measured: f64,
    /// `dense_secs_measured` extrapolated to all `queries` (linear in
    /// query count: every dense query scans the whole database).
    pub dense_secs_projected: f64,
    /// Recall of the pruned result against the dense oracle on the
    /// prefix. Exactness makes this `1.0` by construction; it is
    /// computed (not assumed) and asserted.
    pub recall: f64,
    /// Fraction of pairs never computed exactly.
    pub pruning_rate: f64,
    /// The raw pruning counters.
    pub stats: PruneStats,
}

impl GtBenchReport {
    /// Projected dense wall-clock over the pruned wall-clock.
    pub fn speedup(&self) -> f64 {
        self.dense_secs_projected / self.pruned_secs
    }

    /// One aligned summary line for logs.
    pub fn summary(&self) -> String {
        format!(
            "gt {} n={} q={} k={}: pruned {:.2}s vs dense {:.2}s projected \
             ({:.1}x), {:.1}% pruned, recall {:.3}",
            self.cfg.measure,
            self.cfg.database,
            self.cfg.queries,
            self.cfg.k,
            self.pruned_secs,
            self.dense_secs_projected,
            self.speedup(),
            self.pruning_rate * 100.0,
            self.recall,
        )
    }

    /// The report as a JSON object (hand-rolled like the other bench
    /// files; no serde in the workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "  {{\n",
                "    \"measure\": \"{}\",\n",
                "    \"database\": {},\n",
                "    \"queries\": {},\n",
                "    \"dense_queries_measured\": {},\n",
                "    \"k\": {},\n",
                "    \"cell_m\": {},\n",
                "    \"generate_secs\": {:.3},\n",
                "    \"pruned_secs\": {:.3},\n",
                "    \"dense_secs_measured\": {:.3},\n",
                "    \"dense_secs_projected\": {:.3},\n",
                "    \"speedup_vs_dense\": {:.2},\n",
                "    \"pairs_total\": {},\n",
                "    \"pairs_pruned_bucket\": {},\n",
                "    \"pairs_pruned_lb\": {},\n",
                "    \"pairs_exact\": {},\n",
                "    \"pruning_rate\": {:.4},\n",
                "    \"recall_vs_dense\": {:.4}\n",
                "  }}"
            ),
            self.cfg.measure,
            self.cfg.database,
            self.cfg.queries,
            self.cfg.dense_queries,
            self.cfg.k,
            self.cfg.cell_m,
            self.generate_secs,
            self.pruned_secs,
            self.dense_secs_measured,
            self.dense_secs_projected,
            self.speedup(),
            self.stats.pairs_total,
            self.stats.pairs_pruned_bucket,
            self.stats.pairs_pruned_lb,
            self.stats.pairs_exact,
            self.pruning_rate,
            self.recall,
        )
    }
}

/// Runs one ground-truth benchmark: generate, sweep pruned, sweep the
/// dense prefix, verify recall `1.0`.
pub fn run_gt_bench(cfg: &GtBenchConfig) -> GtBenchReport {
    let t = Instant::now();
    let mut generator = CityGenerator::new(CityParams::porto_like(), cfg.seed);
    let all: Vec<Trajectory> = generator.generate(cfg.database + cfg.queries);
    let generate_secs = t.elapsed().as_secs_f64();
    let (queries, database) = all.split_at(cfg.queries);

    let opts = GroundTruthOptions { cell_m: cfg.cell_m, dense_oracle: false, threads: None };
    let t = Instant::now();
    let (pruned, stats) =
        ground_truth_top_k_with(queries, database, cfg.measure, cfg.k, &opts)
            .expect("pruned ground truth failed");
    let pruned_secs = t.elapsed().as_secs_f64();

    let dense_queries = cfg.dense_queries.min(cfg.queries).max(1);
    let t = Instant::now();
    let dense = dense_ground_truth_top_k(
        &queries[..dense_queries],
        database,
        cfg.measure,
        cfg.k,
        None,
    )
    .expect("dense ground truth failed");
    let dense_secs_measured = t.elapsed().as_secs_f64();
    let dense_secs_projected =
        dense_secs_measured * cfg.queries as f64 / dense_queries as f64;

    let recall = mean_recall(&pruned[..dense_queries], &dense, cfg.k);
    assert!(
        (recall - 1.0).abs() < 1e-12,
        "pruned driver lost exactness: recall {recall} < 1 on {} ({} queries checked)",
        cfg.measure,
        dense_queries
    );

    GtBenchReport {
        cfg: cfg.clone(),
        generate_secs,
        pruned_secs,
        dense_secs_measured,
        dense_secs_projected,
        recall,
        pruning_rate: stats.pruned_fraction(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt_bench_runs_and_verifies_exactness() {
        let cfg = GtBenchConfig {
            database: 300,
            queries: 6,
            dense_queries: 6,
            k: 10,
            cell_m: 500.0,
            measure: Measure::Hausdorff,
            seed: 5,
        };
        let report = run_gt_bench(&cfg);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.stats.pairs_total, 6 * 300);
        assert!(report.pruned_secs > 0.0 && report.dense_secs_projected > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"pairs_total\": 1800"));
    }
}
