//! Method registry: construct and train each comparison method under the
//! shared protocol (same seeds, same supervision, same latent width).

use crate::scale::Scale;
use traj_baselines::{
    train_wmse, ClTsimConfig, ClTsimEncoder, GruMetricEncoder, T2vecConfig, T2vecEncoder,
    TrajEncoder, TrajGatEncoder, TransformerEncoder, WmseConfig,
};
use traj_data::Dataset;
use traj2hash::{ModelContext, Traj2Hash, TrainData, TrainReport};

/// The dense baselines of Table I (in the paper's row order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseMethod {
    /// t2vec sequential autoencoder.
    T2vec,
    /// CL-TSim contrastive encoder.
    ClTsim,
    /// NeuTraj without the spatial module.
    NtNoSam,
    /// NeuTraj with the spatial module.
    NeuTraj,
    /// Plain Transformer with CLS read-out.
    Transformer,
    /// TrajGAT-lite (quadtree-tagged transformer, mean read-out).
    TrajGat,
}

impl DenseMethod {
    /// All six, in Table I order.
    pub fn all() -> [DenseMethod; 6] {
        [
            DenseMethod::T2vec,
            DenseMethod::ClTsim,
            DenseMethod::NtNoSam,
            DenseMethod::NeuTraj,
            DenseMethod::Transformer,
            DenseMethod::TrajGat,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DenseMethod::T2vec => "t2vec",
            DenseMethod::ClTsim => "CL-TSim",
            DenseMethod::NtNoSam => "NT-No-SAM",
            DenseMethod::NeuTraj => "NeuTraj",
            DenseMethod::Transformer => "Transformer",
            DenseMethod::TrajGat => "TrajGAT",
        }
    }
}

/// Trains one dense baseline under the shared protocol and returns the
/// ready-to-embed encoder.
///
/// * metric-learning methods (NT-No-SAM, NeuTraj, Transformer, TrajGAT)
///   train with WMSE on the seed similarity matrix;
/// * self-supervised methods (t2vec, CL-TSim) train on a corpus sample —
///   they never see the distance supervision, matching their
///   distance-agnostic design.
pub fn train_dense(
    method: DenseMethod,
    dataset: &Dataset,
    ctx: &ModelContext,
    data: &TrainData,
    scale: &Scale,
    seed: u64,
) -> Box<dyn TrajEncoder> {
    let dim = scale.model.dim;
    let norm = ctx.norm;
    let wmse = WmseConfig {
        epochs: scale.baseline_epochs,
        lr: scale.train.lr,
        batch_size: scale.train.batch_size,
        samples_per_anchor: scale.train.samples_per_anchor,
        seed,
        ..WmseConfig::default()
    };
    // self-supervised corpora are capped so CPU baselines stay tractable
    let corpus_cap = (dataset.corpus.len()).min(64 * scale.baseline_epochs.max(1));
    let corpus_sample = &dataset.corpus[..corpus_cap];
    // the baseline trainers take a dense similarity matrix; materialize
    // the sparse supervision once for whichever arm needs it
    let dense_sim = data.sim.to_dense();
    match method {
        DenseMethod::T2vec => {
            let enc = T2vecEncoder::new(dim, norm, seed);
            enc.train(
                corpus_sample,
                &T2vecConfig { epochs: scale.baseline_epochs, ..T2vecConfig::default() },
            );
            Box::new(enc)
        }
        DenseMethod::ClTsim => {
            let enc = ClTsimEncoder::new(dim, norm, seed);
            enc.train(
                corpus_sample,
                &ClTsimConfig { epochs: scale.baseline_epochs, ..ClTsimConfig::default() },
            );
            Box::new(enc)
        }
        DenseMethod::NtNoSam => {
            let enc = GruMetricEncoder::plain(dim, norm, seed);
            train_wmse(&enc, &dataset.seeds, &dense_sim, &wmse);
            Box::new(enc)
        }
        DenseMethod::NeuTraj => {
            let enc = GruMetricEncoder::spatial(
                dim,
                norm,
                ctx.fine_spec.clone(),
                ctx.grid_emb.clone(),
                seed,
            );
            train_wmse(&enc, &dataset.seeds, &dense_sim, &wmse);
            Box::new(enc)
        }
        DenseMethod::Transformer => {
            let enc =
                TransformerEncoder::new(dim, scale.model.blocks, scale.model.heads, norm, seed);
            train_wmse(&enc, &dataset.seeds, &dense_sim, &wmse);
            Box::new(enc)
        }
        DenseMethod::TrajGat => {
            let enc = TrajGatEncoder::new(
                dim,
                scale.model.blocks,
                scale.model.heads,
                norm,
                &dataset.seeds,
                seed,
            );
            train_wmse(&enc, &dataset.seeds, &dense_sim, &wmse);
            Box::new(enc)
        }
    }
}

/// Trains a Traj2Hash model (optionally with ablated configurations).
pub fn train_traj2hash(
    dataset: &Dataset,
    ctx: &ModelContext,
    data: &TrainData,
    scale: &Scale,
    seed: u64,
) -> (Traj2Hash, TrainReport) {
    let _ = dataset;
    let mut model = Traj2Hash::new(scale.model.clone(), ctx, seed);
    let report = traj2hash::train(&mut model, data, &scale.train)
        .unwrap_or_else(|e| panic!("traj2hash training failed: {e}"));
    if !report.recoveries.is_empty() {
        traj_obs::event(
            "bench.train.divergence_guard",
            &[
                ("recoveries", (report.recoveries.len() as u64).into()),
                ("final_lr", report.final_lr.into()),
            ],
        );
    }
    (model, report)
}
