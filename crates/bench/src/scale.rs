//! Experiment scales and command-line argument handling.

use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj2hash::{ModelConfig, TrainConfig};

/// The two evaluation cities (synthetic stand-ins for the paper's
/// datasets; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum City {
    /// Porto-like synthetic city.
    Porto,
    /// ChengDu-like synthetic city.
    Chengdu,
}

impl City {
    /// City generator parameters.
    pub fn params(&self) -> CityParams {
        match self {
            City::Porto => CityParams::porto_like(),
            City::Chengdu => CityParams::chengdu_like(),
        }
    }

    /// Name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            City::Porto => "Porto",
            City::Chengdu => "ChengDu",
        }
    }

    /// Both cities.
    pub fn both() -> [City; 2] {
        [City::Porto, City::Chengdu]
    }
}

/// A named experiment scale bundling dataset sizes and training budgets.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Scale name ("tiny", "small", "medium").
    pub name: &'static str,
    /// Dataset split sizes.
    pub sizes: SplitSizes,
    /// Model configuration.
    pub model: ModelConfig,
    /// Traj2Hash training configuration.
    pub train: TrainConfig,
    /// Epoch budget for baseline training loops.
    pub baseline_epochs: usize,
}

impl Scale {
    /// Fast smoke-test scale (used by integration tests).
    pub fn tiny() -> Scale {
        Scale {
            name: "tiny",
            sizes: SplitSizes { seeds: 24, validation: 32, corpus: 300, query: 12, database: 150 },
            model: ModelConfig::tiny(),
            train: TrainConfig {
                epochs: 3,
                triplets_per_epoch: 64,
                triplet_batch: 32,
                validate: false,
                // The paper's 500 m coarse cells assume a 200K corpus of
                // road-following taxi trips; at our corpus sizes the
                // collision rate only becomes useful at ~2 km (see
                // EXPERIMENTS.md). The in-cluster distance bound scales
                // with the cell size and remains valid.
                coarse_cell_m: 2000.0,
                ..TrainConfig::default()
            },
            baseline_epochs: 3,
        }
    }

    /// The default experiment scale: preserves the paper's ratios at
    /// laptop size (see DESIGN.md).
    pub fn small() -> Scale {
        Scale {
            name: "small",
            sizes: SplitSizes::small(),
            model: ModelConfig::small(),
            train: TrainConfig {
                epochs: 10,
                triplets_per_epoch: 512,
                triplet_batch: 64,
                coarse_cell_m: 2000.0,
                ..TrainConfig::default()
            },
            baseline_epochs: 10,
        }
    }

    /// A larger run for overnight-style experiments.
    pub fn medium() -> Scale {
        Scale {
            name: "medium",
            sizes: SplitSizes {
                seeds: 300,
                validation: 500,
                corpus: 6_000,
                query: 150,
                database: 5_000,
            },
            model: ModelConfig::small(),
            train: TrainConfig {
                epochs: 20,
                triplets_per_epoch: 1024,
                triplet_batch: 64,
                coarse_cell_m: 2000.0,
                ..TrainConfig::default()
            },
            baseline_epochs: 20,
        }
    }

    /// Parses a scale by name.
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::tiny()),
            "small" => Some(Scale::small()),
            "medium" => Some(Scale::medium()),
            _ => None,
        }
    }
}

/// Parsed common CLI arguments.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// City filter (None = both).
    pub city: Option<City>,
    /// Measure filter (None = all three of the paper).
    pub measure: Option<Measure>,
}

impl CommonArgs {
    /// Parses `--scale`, `--seed`, `--city`, `--measure` from an argument
    /// list; exits with a usage message on errors.
    pub fn parse(args: &[String]) -> CommonArgs {
        let mut out = CommonArgs {
            scale: Scale::small(),
            seed: 42,
            city: None,
            measure: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = Scale::by_name(args.get(i).map(String::as_str).unwrap_or(""))
                        .unwrap_or_else(|| usage("unknown scale (tiny|small|medium)"));
                }
                "--seed" => {
                    i += 1;
                    out.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--city" => {
                    i += 1;
                    out.city = match args.get(i).map(String::as_str) {
                        Some("porto") => Some(City::Porto),
                        Some("chengdu") => Some(City::Chengdu),
                        Some("both") => None,
                        _ => usage("--city porto|chengdu|both"),
                    };
                }
                "--measure" => {
                    i += 1;
                    // anything Measure::from_name accepts works here,
                    // including parameterized forms like cdtw(16)
                    out.measure = match args.get(i).map(String::as_str) {
                        Some("all") => None,
                        Some(name) => match Measure::from_name(name) {
                            Some(m) => Some(m),
                            None => usage(
                                "--measure dtw|frechet|hausdorff|cdtw(N)|erp(x,y)|edr(eps)|all",
                            ),
                        },
                        None => usage(
                            "--measure dtw|frechet|hausdorff|cdtw(N)|erp(x,y)|edr(eps)|all",
                        ),
                    };
                }
                "--help" | "-h" => usage("harness options"),
                other => usage(&format!("unknown argument: {other}")),
            }
            i += 1;
        }
        out
    }

    /// Cities selected by the filter.
    pub fn cities(&self) -> Vec<City> {
        match self.city {
            Some(c) => vec![c],
            None => City::both().to_vec(),
        }
    }

    /// Measures selected by the filter.
    pub fn measures(&self) -> Vec<Measure> {
        match self.measure {
            Some(m) => vec![m],
            None => Measure::paper_suite().to_vec(),
        }
    }
}

fn usage(msg: &str) -> ! {
    // lint: allow(raw-print) — CLI usage text goes to stderr by design
    eprintln!(
        "{msg}\n\nusage: <bin> [--scale tiny|small|medium] [--seed N] \
         [--city porto|chengdu|both] [--measure dtw|frechet|hausdorff|cdtw(N)|erp(x,y)|edr(eps)|all]"
    );
    std::process::exit(2)
}

/// Generates the dataset for a city at a scale.
pub fn build_dataset(city: City, scale: &Scale, seed: u64) -> Dataset {
    Dataset::generate(city.params(), scale.sizes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve_by_name() {
        assert_eq!(Scale::by_name("tiny").unwrap().name, "tiny");
        assert_eq!(Scale::by_name("small").unwrap().name, "small");
        assert_eq!(Scale::by_name("medium").unwrap().name, "medium");
        assert!(Scale::by_name("gigantic").is_none());
    }

    #[test]
    fn args_parse_filters() {
        let args: Vec<String> = ["--scale", "tiny", "--seed", "7", "--city", "porto",
            "--measure", "dtw"].iter().map(|s| s.to_string()).collect();
        let parsed = CommonArgs::parse(&args);
        assert_eq!(parsed.scale.name, "tiny");
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.cities(), vec![City::Porto]);
        assert_eq!(parsed.measures(), vec![Measure::Dtw]);
    }

    #[test]
    fn measure_filter_accepts_parameterized_names() {
        let args: Vec<String> =
            ["--measure", "cdtw(16)"].iter().map(|s| s.to_string()).collect();
        let parsed = CommonArgs::parse(&args);
        assert_eq!(parsed.measures(), vec![Measure::CDtw(16)]);
        let args: Vec<String> =
            ["--measure", "Hausdorff"].iter().map(|s| s.to_string()).collect();
        assert_eq!(CommonArgs::parse(&args).measures(), vec![Measure::Hausdorff]);
    }

    #[test]
    fn default_args_cover_paper_protocol() {
        let parsed = CommonArgs::parse(&[]);
        assert_eq!(parsed.cities().len(), 2);
        assert_eq!(parsed.measures().len(), 3);
    }

    #[test]
    fn dataset_generation_is_scale_sized() {
        let scale = Scale::tiny();
        let d = build_dataset(City::Chengdu, &scale, 1);
        assert_eq!(d.database.len(), scale.sizes.database);
        assert_eq!(d.query.len(), scale.sizes.query);
    }
}
