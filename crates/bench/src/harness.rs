//! Evaluation glue shared by the table/figure binaries.

use std::time::Instant;
use traj_data::Trajectory;
use traj_dist::Measure;
use traj_engine::{AnnIndex, BruteForceEuclidean, BruteForceHamming, QueryRep};
use traj_eval::{ground_truth_top_k, pack_codes, rank_euclidean, rank_hamming, Metrics};
use traj_index::{BinaryCode, HammingTable};

/// Exact ground truth for the test protocol: each query's true top-50 in
/// the database, via the bucket-pruned exact driver.
pub fn test_ground_truth(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
) -> Vec<Vec<usize>> {
    ground_truth_top_k(queries, database, measure, 50)
        .expect("ground truth computation failed")
}

/// Euclidean-space metrics of a method given its embeddings.
pub fn eval_euclidean(
    db_embeddings: &[Vec<f32>],
    query_embeddings: &[Vec<f32>],
    truth: &[Vec<usize>],
) -> Metrics {
    let predicted = rank_euclidean(db_embeddings, query_embeddings, 50);
    Metrics::evaluate(&predicted, truth)
}

/// Hamming-space metrics of a method given its `+-1` sign codes.
pub fn eval_hamming(
    db_signs: &[Vec<i8>],
    query_signs: &[Vec<i8>],
    truth: &[Vec<usize>],
) -> Metrics {
    let db = pack_codes(db_signs);
    let q = pack_codes(query_signs);
    let predicted = rank_hamming(&db, &q, 50);
    Metrics::evaluate(&predicted, truth)
}

/// Mean seconds per query of the three searching strategies of
/// Section V-E over the given database/queries.
#[derive(Debug, Clone, Copy)]
pub struct SearchTimings {
    /// Euclidean brute force.
    pub euclidean_bf: f64,
    /// Hamming brute force.
    pub hamming_bf: f64,
    /// Hamming table-lookup hybrid.
    pub hamming_hybrid: f64,
}

/// Mean seconds per query of one [`AnnIndex`] backend.
fn mean_query_secs(index: &dyn AnnIndex, queries: &[QueryRep<'_>], k: usize) -> f64 {
    let t = Instant::now();
    for q in queries {
        std::hint::black_box(
            index.search(*q, k).expect("query and database representations match"),
        );
    }
    t.elapsed().as_secs_f64() / queries.len() as f64
}

/// Times the three strategies (Fig. 5 / Fig. 6 measurement core).
/// `k` is the number of results requested.
///
/// Every strategy is measured through the same [`AnnIndex`] interface
/// the engine serves from, so these numbers time the real dispatch
/// path, not a bench-only re-implementation.
pub fn time_search_strategies(
    db_embeddings: &[Vec<f32>],
    db_codes: &[BinaryCode],
    query_embeddings: &[Vec<f32>],
    query_codes: &[BinaryCode],
    k: usize,
) -> SearchTimings {
    assert_eq!(db_embeddings.len(), db_codes.len());
    assert_eq!(query_embeddings.len(), query_codes.len());

    let dense: Vec<QueryRep<'_>> = query_embeddings.iter().map(|q| QueryRep::Dense(q)).collect();
    let codes: Vec<QueryRep<'_>> = query_codes.iter().map(QueryRep::Code).collect();

    let euclid = BruteForceEuclidean::new(db_embeddings.to_vec())
        .expect("database embeddings share a width");
    let hamming =
        BruteForceHamming::new(db_codes.to_vec()).expect("database codes share a width");
    let hybrid = HammingTable::build(db_codes.to_vec());

    SearchTimings {
        euclidean_bf: mean_query_secs(&euclid, &dense, k),
        hamming_bf: mean_query_secs(&hamming, &codes, k),
        hamming_hybrid: mean_query_secs(&hybrid, &codes, k),
    }
}

/// Synthetic clustered embeddings/codes for the timing experiments
/// (Fig. 5 and Fig. 6).
///
/// Search latency depends only on the database size, code width, and how
/// clustered the codes are (clustering controls how often the hybrid
/// strategy resolves a query by table lookup) — not on which encoder
/// produced them. To time 20K–100K databases without encoding 100K
/// trajectories through the neural model, we draw codes around cluster
/// centers with a small number of bit flips, mimicking the bucket
/// structure a trained Traj2Hash produces (similar trajectories share
/// most bits). EXPERIMENTS.md documents this substitution next to the
/// figure.
pub struct ClusteredWorkload {
    /// Dense embeddings of the database.
    pub db_embeddings: Vec<Vec<f32>>,
    /// Binary codes of the database.
    pub db_codes: Vec<BinaryCode>,
    /// Dense embeddings of the queries.
    pub query_embeddings: Vec<Vec<f32>>,
    /// Binary codes of the queries.
    pub query_codes: Vec<BinaryCode>,
}

/// Generates a clustered workload.
pub fn clustered_workload(
    n_db: usize,
    n_query: usize,
    bits: usize,
    clusters: usize,
    max_flips: usize,
    seed: u64,
) -> ClusteredWorkload {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(Vec<i8>, Vec<f32>)> = (0..clusters.max(1))
        .map(|_| {
            let signs: Vec<i8> =
                (0..bits).map(|_| if rng.random::<bool>() { 1 } else { -1 }).collect();
            let emb: Vec<f32> = signs.iter().map(|&s| s as f32 * (0.5 + rng.random::<f32>())).collect();
            (signs, emb)
        })
        .collect();
    let draw = |rng: &mut StdRng| -> (Vec<f32>, BinaryCode) {
        let (signs, emb) = &centers[rng.random_range(0..centers.len())];
        let mut s = signs.clone();
        let flips = rng.random_range(0..=max_flips);
        for _ in 0..flips {
            let i = rng.random_range(0..bits);
            s[i] = -s[i];
        }
        let e: Vec<f32> = emb
            .iter()
            .zip(&s)
            .map(|(&c, &sg)| {
                let base = if (c > 0.0) == (sg > 0) { c } else { -c };
                base + 0.1 * (rng.random::<f32>() - 0.5)
            })
            .collect();
        (e, BinaryCode::from_signs(&s))
    };
    let mut db_embeddings = Vec::with_capacity(n_db);
    let mut db_codes = Vec::with_capacity(n_db);
    for _ in 0..n_db {
        let (e, c) = draw(&mut rng);
        db_embeddings.push(e);
        db_codes.push(c);
    }
    let mut query_embeddings = Vec::with_capacity(n_query);
    let mut query_codes = Vec::with_capacity(n_query);
    for _ in 0..n_query {
        let (e, c) = draw(&mut rng);
        query_embeddings.push(e);
        query_codes.push(c);
    }
    ClusteredWorkload { db_embeddings, db_codes, query_embeddings, query_codes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_workload_shapes_and_determinism() {
        let a = clustered_workload(200, 10, 32, 5, 2, 9);
        assert_eq!(a.db_codes.len(), 200);
        assert_eq!(a.query_codes.len(), 10);
        assert_eq!(a.db_embeddings[0].len(), 32);
        assert_eq!(a.db_codes[0].len(), 32);
        let b = clustered_workload(200, 10, 32, 5, 2, 9);
        assert_eq!(a.db_codes, b.db_codes);
    }

    #[test]
    fn clustered_workload_is_actually_clustered() {
        // With few centers and <=2 flips, many codes collide or nearly
        // collide — the property that makes the hybrid strategy resolve
        // queries by table lookup.
        let w = clustered_workload(500, 1, 32, 5, 1, 4);
        let within_2 = w
            .db_codes
            .iter()
            .filter(|c| c.hamming(&w.query_codes[0]) <= 2)
            .count();
        assert!(within_2 >= 20, "only {within_2} codes near the query");
    }

    #[test]
    fn timing_helper_returns_positive_times() {
        let w = clustered_workload(500, 4, 16, 3, 2, 5);
        let t = time_search_strategies(
            &w.db_embeddings,
            &w.db_codes,
            &w.query_embeddings,
            &w.query_codes,
            5,
        );
        assert!(t.euclidean_bf > 0.0 && t.hamming_bf > 0.0 && t.hamming_hybrid > 0.0);
    }

    #[test]
    fn eval_helpers_score_perfect_self_retrieval() {
        let w = clustered_workload(60, 0, 16, 60, 0, 6);
        // use db as its own query set: truth is identity at rank 0
        let truth: Vec<Vec<usize>> = (0..10).map(|i| vec![i]).collect();
        let signs: Vec<Vec<i8>> = w.db_codes[..10].iter().map(|c| c.to_signs()).collect();
        let db_signs: Vec<Vec<i8>> = w.db_codes.iter().map(|c| c.to_signs()).collect();
        let m = eval_hamming(&db_signs, &signs, &truth);
        // each query's nearest code is itself (distance 0), so recall of
        // the single-truth item within top-50 must be perfect
        assert!(m.r10_50 > 0.99, "{m}");
    }
}
