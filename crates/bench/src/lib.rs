//! # traj-bench — experiment harnesses
//!
//! Shared infrastructure for the binaries that regenerate every table and
//! figure of the paper (see DESIGN.md section 4 for the index). Each
//! binary accepts `--scale tiny|small|medium`, `--seed N`, and where
//! applicable `--city` / `--measure` filters; results print as aligned
//! text tables in the same layout as the paper's.

pub mod gtbench;
pub mod harness;
pub mod methods;
pub mod scale;

pub use gtbench::*;
pub use harness::*;
pub use methods::*;
pub use scale::*;
