//! Property-based tests of trajectory types, normalization, and
//! augmentations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_data::{augment, normalize::NormStats, BoundingBox, Point, Trajectory};

fn trajectory_strategy() -> impl Strategy<Value = Trajectory> {
    proptest::collection::vec((-5000.0f64..5000.0, -5000.0f64..5000.0), 2..40)
        .prop_map(|xy| Trajectory::from_xy(&xy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reversal_preserves_length_and_path(t in trajectory_strategy()) {
        let r = t.reversed();
        prop_assert_eq!(r.len(), t.len());
        prop_assert!((r.path_length() - t.path_length()).abs() < 1e-6);
        prop_assert_eq!(r.reversed(), t);
    }

    #[test]
    fn bbox_is_tight(t in trajectory_strategy()) {
        let bb = t.bbox().unwrap();
        for &p in &t.points {
            prop_assert!(bb.contains(p));
        }
        // at least one point touches each side
        let eps = 1e-9;
        prop_assert!(t.points.iter().any(|p| (p.x - bb.min_x).abs() < eps));
        prop_assert!(t.points.iter().any(|p| (p.x - bb.max_x).abs() < eps));
        prop_assert!(t.points.iter().any(|p| (p.y - bb.min_y).abs() < eps));
        prop_assert!(t.points.iter().any(|p| (p.y - bb.max_y).abs() < eps));
    }

    #[test]
    fn normalization_roundtrips(t in trajectory_strategy()) {
        let stats = NormStats::fit(std::slice::from_ref(&t));
        let feats = stats.apply(&t);
        prop_assert_eq!(feats.len(), t.len() * 2);
        for (i, pair) in feats.chunks_exact(2).enumerate() {
            let back = stats.invert(pair[0], pair[1]);
            // f32 round-trip on +-5 km coordinates: sub-meter accuracy
            prop_assert!((back.x - t.points[i].x).abs() < 1.0);
            prop_assert!((back.y - t.points[i].y).abs() < 1.0);
        }
    }

    #[test]
    fn downsample_preserves_endpooints_and_order(
        t in trajectory_strategy(),
        rate in 0.0f64..0.95,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = augment::downsample(&t, &mut rng, rate);
        prop_assert!(d.len() >= 2);
        prop_assert_eq!(d.first(), t.first());
        prop_assert_eq!(d.last(), t.last());
        // order preserved: every kept point appears in the original order
        let mut cursor = 0usize;
        for p in &d.points {
            let found = t.points[cursor..].iter().position(|q| q == p);
            prop_assert!(found.is_some(), "downsampled point not in source order");
            cursor += found.unwrap() + 1;
        }
    }

    #[test]
    fn distort_moves_no_point_without_rate(
        t in trajectory_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(augment::distort(&t, &mut rng, 0.0, 100.0), t);
    }

    #[test]
    fn clamp_always_lands_inside(
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        w in 1.0f64..10_000.0,
        h in 1.0f64..10_000.0,
    ) {
        let bb = BoundingBox::from_extent(w, h);
        let p = bb.clamp(Point::new(x, y));
        prop_assert!(bb.contains(p));
    }
}
