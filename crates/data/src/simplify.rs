//! Douglas–Peucker trajectory simplification.
//!
//! A standard preprocessing tool in trajectory databases: reduce the
//! point count while guaranteeing that no original point deviates from
//! the simplified polyline by more than `epsilon` meters. Useful before
//! the quadratic exact measures (their cost drops with the square of the
//! simplification ratio) and as a principled alternative to random
//! down-sampling.

use crate::types::{Point, Trajectory};

/// Perpendicular distance from `p` to the segment `a`–`b`.
fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    if len2 == 0.0 {
        return p.distance(&a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0);
    p.distance(&Point::new(a.x + t * dx, a.y + t * dy))
}

/// Simplifies a trajectory with the Douglas–Peucker algorithm: keeps the
/// endpoints and recursively keeps the farthest point of any span whose
/// deviation exceeds `epsilon`.
///
/// Guarantees: endpoints survive, kept points appear in original order,
/// and every dropped point lies within `epsilon` of the simplified
/// polyline.
pub fn douglas_peucker(t: &Trajectory, epsilon: f64) -> Trajectory {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    if t.len() <= 2 {
        return t.clone();
    }
    let mut keep = vec![false; t.len()];
    keep[0] = true;
    keep[t.len() - 1] = true;
    // iterative stack of (start, end) spans to avoid recursion depth
    let mut stack = vec![(0usize, t.len() - 1)];
    while let Some((start, end)) = stack.pop() {
        if end <= start + 1 {
            continue;
        }
        let (a, b) = (t.points[start], t.points[end]);
        let mut worst = (0.0f64, start);
        for i in (start + 1)..end {
            let d = point_segment_distance(t.points[i], a, b);
            if d > worst.0 {
                worst = (d, i);
            }
        }
        if worst.0 > epsilon {
            keep[worst.1] = true;
            stack.push((start, worst.1));
            stack.push((worst.1, end));
        }
    }
    Trajectory::new(
        t.points
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&p, _)| p)
            .collect(),
    )
}

/// Maximum deviation of any original point from the simplified polyline
/// (used to verify the epsilon guarantee).
pub fn max_deviation(original: &Trajectory, simplified: &Trajectory) -> f64 {
    let mut worst = 0.0f64;
    for &p in &original.points {
        let mut best = f64::INFINITY;
        if simplified.len() == 1 {
            best = p.distance(&simplified.points[0]);
        }
        for w in simplified.points.windows(2) {
            best = best.min(point_segment_distance(p, w[0], w[1]));
        }
        worst = worst.max(best);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{CityGenerator, CityParams};

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t = Trajectory::from_xy(&(0..50).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let s = douglas_peucker(&t, 0.01);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), t.first());
        assert_eq!(s.last(), t.last());
    }

    #[test]
    fn corner_is_preserved() {
        let mut xy: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        xy.extend((1..10).map(|i| (9.0, i as f64)));
        let t = Trajectory::from_xy(&xy);
        let s = douglas_peucker(&t, 0.5);
        assert_eq!(s.len(), 3, "start, corner, end");
        assert!(s.points.contains(&crate::types::Point::new(9.0, 0.0)));
    }

    #[test]
    fn epsilon_zero_keeps_every_informative_point() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0)]);
        let s = douglas_peucker(&t, 0.0);
        assert_eq!(s, t);
    }

    #[test]
    fn deviation_guarantee_on_realistic_trips() {
        let trips = CityGenerator::new(CityParams::test_city(), 44).generate(25);
        for t in &trips {
            for eps in [5.0, 20.0, 100.0] {
                let s = douglas_peucker(t, eps);
                assert!(s.len() >= 2);
                let dev = max_deviation(t, &s);
                assert!(
                    dev <= eps + 1e-9,
                    "deviation {dev} exceeds epsilon {eps} (kept {}/{})",
                    s.len(),
                    t.len()
                );
            }
        }
    }

    #[test]
    fn larger_epsilon_keeps_fewer_points() {
        let trips = CityGenerator::new(CityParams::test_city(), 45).generate(5);
        for t in &trips {
            let fine = douglas_peucker(t, 2.0).len();
            let coarse = douglas_peucker(t, 50.0).len();
            assert!(coarse <= fine);
        }
    }

    #[test]
    fn tiny_trajectories_pass_through() {
        let one = Trajectory::from_xy(&[(1.0, 2.0)]);
        assert_eq!(douglas_peucker(&one, 10.0), one);
        let two = Trajectory::from_xy(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(douglas_peucker(&two, 10.0), two);
    }
}
