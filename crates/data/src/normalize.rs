//! Gaussian (z-score) normalization of GPS coordinates (Eq. 10's
//! `Normalize`): each coordinate axis is centered by the dataset mean and
//! scaled by the dataset standard deviation before entering the neural
//! encoders.

use crate::types::{Point, Trajectory};

/// Per-axis mean and standard deviation of a trajectory dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormStats {
    /// Mean x.
    pub mean_x: f64,
    /// Mean y.
    pub mean_y: f64,
    /// Standard deviation of x (floored at a small epsilon).
    pub std_x: f64,
    /// Standard deviation of y (floored at a small epsilon).
    pub std_y: f64,
}

impl NormStats {
    /// Computes statistics over every point of every trajectory.
    ///
    /// Returns identity stats (`mean 0, std 1`) when there are no points,
    /// so normalization is always well defined.
    pub fn fit(trajectories: &[Trajectory]) -> NormStats {
        let mut n = 0usize;
        let (mut sx, mut sy) = (0.0f64, 0.0f64);
        for t in trajectories {
            for p in &t.points {
                sx += p.x;
                sy += p.y;
                n += 1;
            }
        }
        if n == 0 {
            return NormStats { mean_x: 0.0, mean_y: 0.0, std_x: 1.0, std_y: 1.0 };
        }
        let mean_x = sx / n as f64;
        let mean_y = sy / n as f64;
        let (mut vx, mut vy) = (0.0f64, 0.0f64);
        for t in trajectories {
            for p in &t.points {
                vx += (p.x - mean_x).powi(2);
                vy += (p.y - mean_y).powi(2);
            }
        }
        NormStats {
            mean_x,
            mean_y,
            std_x: (vx / n as f64).sqrt().max(1e-9),
            std_y: (vy / n as f64).sqrt().max(1e-9),
        }
    }

    /// Normalizes one point.
    pub fn apply_point(&self, p: Point) -> (f32, f32) {
        (
            ((p.x - self.mean_x) / self.std_x) as f32,
            ((p.y - self.mean_y) / self.std_y) as f32,
        )
    }

    /// Normalizes a whole trajectory into an `n x 2` feature buffer
    /// (row-major `[x0, y0, x1, y1, ...]`), ready to become a tensor.
    pub fn apply(&self, t: &Trajectory) -> Vec<f32> {
        let mut out = Vec::with_capacity(t.len() * 2);
        for &p in &t.points {
            let (x, y) = self.apply_point(p);
            out.push(x);
            out.push(y);
        }
        out
    }

    /// Inverse transform of one normalized point.
    pub fn invert(&self, x: f32, y: f32) -> Point {
        Point::new(
            x as f64 * self.std_x + self.mean_x,
            y as f64 * self.std_y + self.mean_y,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_zero_mean_unit_std_after_apply() {
        let ts = vec![
            Trajectory::from_xy(&[(0.0, 10.0), (2.0, 14.0)]),
            Trajectory::from_xy(&[(4.0, 18.0), (6.0, 22.0)]),
        ];
        let stats = NormStats::fit(&ts);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in &ts {
            let f = stats.apply(t);
            for pair in f.chunks_exact(2) {
                xs.push(pair[0]);
                ys.push(pair[1]);
            }
        }
        let mx: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let my: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
        assert!(mx.abs() < 1e-6 && my.abs() < 1e-6);
        let vx: f32 = xs.iter().map(|x| x * x).sum::<f32>() / xs.len() as f32;
        assert!((vx - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_dataset_gets_identity_stats() {
        let stats = NormStats::fit(&[]);
        assert_eq!(stats.apply_point(Point::new(3.0, -2.0)), (3.0, -2.0));
    }

    #[test]
    fn invert_roundtrips() {
        let ts = vec![Trajectory::from_xy(&[(100.0, 200.0), (300.0, 500.0)])];
        let stats = NormStats::fit(&ts);
        let p = Point::new(123.0, 456.0);
        let (x, y) = stats.apply_point(p);
        let q = stats.invert(x, y);
        assert!((p.x - q.x).abs() < 1e-3 && (p.y - q.y).abs() < 1e-3);
    }

    #[test]
    fn degenerate_axis_does_not_divide_by_zero() {
        // all points share the same y
        let ts = vec![Trajectory::from_xy(&[(0.0, 5.0), (10.0, 5.0)])];
        let stats = NormStats::fit(&ts);
        let f = stats.apply(&ts[0]);
        assert!(f.iter().all(|x| x.is_finite()));
    }
}
