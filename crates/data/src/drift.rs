//! Streaming trajectory generation with controllable distribution
//! drift.
//!
//! An always-on serving deployment does not see one static city: the
//! underlying trip distribution shifts (new neighbourhoods, seasonal
//! patterns, a different city entirely). This module models that as a
//! deterministic tick stream whose [`CityParams`] interpolate from a
//! source city toward a target city over a configured ramp — the
//! porto → chengdu shift named by the ROADMAP's always-on scenario.
//!
//! Everything is a pure function of `(schedule, seeds, tick)`:
//!
//! * the schedule maps a tick to an interpolation position `t ∈ [0, 1]`
//!   (flat before `start_tick`, linear over `ramp_ticks`, flat after);
//! * the hub layout is derived from a fixed `hub_seed`, so hubs move
//!   *continuously* as the city extent drifts instead of reshuffling
//!   every tick (see [`CityGenerator::with_trip_seed`]);
//! * trip randomness comes from a per-tick seed, so batches differ
//!   tick to tick but any tick's batch can be regenerated exactly —
//!   a crashed soak run replays its stream bit-for-bit.

use crate::synthetic::{CityGenerator, CityParams};
use crate::types::Trajectory;

/// When and how fast the city drifts from `from` to `to`.
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    /// The city before the drift begins.
    pub from: CityParams,
    /// The city after the drift completes.
    pub to: CityParams,
    /// First tick at which the parameters start moving.
    pub start_tick: u64,
    /// Number of ticks the transition is spread over; `0` means a step
    /// change at `start_tick`.
    pub ramp_ticks: u64,
}

impl DriftSchedule {
    /// A porto → chengdu shift, the reference drift scenario.
    pub fn porto_to_chengdu(start_tick: u64, ramp_ticks: u64) -> Self {
        DriftSchedule {
            from: CityParams::porto_like(),
            to: CityParams::chengdu_like(),
            start_tick,
            ramp_ticks,
        }
    }

    /// Interpolation position at `tick`: `0` before `start_tick`,
    /// linear across the ramp, `1` after it.
    pub fn t_at(&self, tick: u64) -> f64 {
        if tick < self.start_tick {
            return 0.0;
        }
        if self.ramp_ticks == 0 {
            return 1.0;
        }
        (((tick - self.start_tick) as f64) / self.ramp_ticks as f64).min(1.0)
    }

    /// The (checked-lerped) city parameters in effect at `tick`.
    pub fn params_at(&self, tick: u64) -> CityParams {
        self.from.lerp(&self.to, self.t_at(tick))
    }
}

/// A deterministic drifting trajectory stream, batch per tick.
#[derive(Debug, Clone)]
pub struct DriftingGenerator {
    schedule: DriftSchedule,
    hub_seed: u64,
    trip_seed: u64,
}

impl DriftingGenerator {
    /// Creates a stream; `seed` derives both the (fixed) hub layout and
    /// the per-tick trip randomness.
    pub fn new(schedule: DriftSchedule, seed: u64) -> Self {
        DriftingGenerator {
            schedule,
            hub_seed: seed,
            // Decorrelate trip draws from hub draws without a second
            // user-facing knob.
            trip_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The drift schedule driving this stream.
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }

    /// Interpolation position at `tick` (for telemetry).
    pub fn t_at(&self, tick: u64) -> f64 {
        self.schedule.t_at(tick)
    }

    /// Generates tick `tick`'s batch of `n` trajectories. Pure in
    /// `(self, tick, n)`: calling it twice — or from a restarted
    /// process — yields the identical batch.
    pub fn batch(&self, tick: u64, n: usize) -> Vec<Trajectory> {
        let params = self.schedule.params_at(tick);
        let mut g = CityGenerator::with_trip_seed(
            params,
            self.hub_seed,
            self.trip_seed.wrapping_add(tick.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        );
        g.generate(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_flat_then_ramps_then_saturates() {
        let s = DriftSchedule::porto_to_chengdu(10, 20);
        assert_eq!(s.t_at(0), 0.0);
        assert_eq!(s.t_at(9), 0.0);
        assert_eq!(s.t_at(10), 0.0);
        assert!((s.t_at(20) - 0.5).abs() < 1e-12);
        assert_eq!(s.t_at(30), 1.0);
        assert_eq!(s.t_at(1_000), 1.0);
        let step = DriftSchedule::porto_to_chengdu(5, 0);
        assert_eq!(step.t_at(4), 0.0);
        assert_eq!(step.t_at(5), 1.0);
    }

    #[test]
    fn batches_are_deterministic_and_tick_dependent() {
        let g = DriftingGenerator::new(DriftSchedule::porto_to_chengdu(0, 8), 42);
        assert_eq!(g.batch(3, 5), g.batch(3, 5));
        assert_ne!(g.batch(3, 5), g.batch(4, 5));
        let other = DriftingGenerator::new(DriftSchedule::porto_to_chengdu(0, 8), 43);
        assert_ne!(g.batch(3, 5), other.batch(3, 5));
    }

    #[test]
    fn drifted_batches_respect_drifted_point_bounds() {
        let s = DriftSchedule::porto_to_chengdu(0, 10);
        let g = DriftingGenerator::new(s.clone(), 7);
        for tick in [0u64, 5, 10, 20] {
            let params = s.params_at(tick);
            let bbox = params.bbox();
            for t in g.batch(tick, 10) {
                assert!(t.len() >= params.min_points && t.len() <= params.max_points);
                assert!(t.points.iter().all(|&p| bbox.contains(p)));
            }
        }
    }

    #[test]
    fn fully_drifted_stream_matches_target_city_statistics() {
        // After the ramp the stream must generate chengdu-like trips:
        // the clearest observable is the tighter point-count range.
        let g = DriftingGenerator::new(DriftSchedule::porto_to_chengdu(0, 4), 11);
        let target = CityParams::chengdu_like();
        for t in g.batch(100, 50) {
            assert!(t.len() >= target.min_points && t.len() <= target.max_points);
        }
    }
}
