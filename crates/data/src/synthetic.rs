//! Deterministic synthetic city trajectory generators.
//!
//! The paper evaluates on the Porto and ChengDu taxi corpora, which we do
//! not have. What the evaluation actually depends on is that trajectories
//! (a) are locally smooth sequences of GPS samples, (b) share corridors so
//! that meaningful nearest neighbours exist under DTW/Fréchet/Hausdorff,
//! and (c) vary in length and shape. This module generates such data with
//! a hub-and-trip model: a city has a set of attraction hubs; a trip picks
//! two hubs and walks between them with heading inertia, lateral wander,
//! and GPS noise. Everything is driven by a caller-provided seed, so
//! every experiment in this repository is exactly reproducible.

use crate::types::{BoundingBox, Point, Trajectory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a synthetic city.
#[derive(Debug, Clone)]
pub struct CityParams {
    /// City extent in meters (the study-area bounding box).
    pub width: f64,
    /// City extent in meters.
    pub height: f64,
    /// Number of trip attraction hubs.
    pub n_hubs: usize,
    /// Standard deviation of trip endpoints around their hub, meters.
    pub hub_spread: f64,
    /// Mean spacing between consecutive GPS samples, meters.
    pub step_mean: f64,
    /// Standard deviation of per-sample GPS noise, meters.
    pub gps_noise: f64,
    /// Minimum number of points per trajectory.
    pub min_points: usize,
    /// Maximum number of points per trajectory.
    pub max_points: usize,
    /// Heading momentum in `[0, 1)`; higher values give smoother paths.
    pub heading_inertia: f64,
    /// Standard deviation of lateral wander added to the heading, radians.
    pub wander: f64,
}

impl CityParams {
    /// A Porto-like city: larger extent, longer trips.
    pub fn porto_like() -> Self {
        CityParams {
            width: 20_000.0,
            height: 15_000.0,
            n_hubs: 24,
            hub_spread: 400.0,
            step_mean: 110.0,
            gps_noise: 12.0,
            min_points: 20,
            max_points: 100,
            heading_inertia: 0.7,
            wander: 0.25,
        }
    }

    /// A ChengDu-like city: denser, shorter trips, more hubs.
    pub fn chengdu_like() -> Self {
        CityParams {
            width: 15_000.0,
            height: 15_000.0,
            n_hubs: 32,
            hub_spread: 300.0,
            step_mean: 90.0,
            gps_noise: 10.0,
            min_points: 15,
            max_points: 70,
            heading_inertia: 0.65,
            wander: 0.3,
        }
    }

    /// A tiny city for unit tests and doc examples.
    pub fn test_city() -> Self {
        CityParams {
            width: 2_000.0,
            height: 2_000.0,
            n_hubs: 6,
            hub_spread: 80.0,
            step_mean: 60.0,
            gps_noise: 5.0,
            min_points: 10,
            max_points: 25,
            heading_inertia: 0.6,
            wander: 0.3,
        }
    }

    /// The study-area bounding box.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_extent(self.width, self.height)
    }

    /// Linear interpolation between two cities, the primitive behind
    /// drifting workloads (city statistics shifting porto → chengdu
    /// over time).
    ///
    /// This is a *checked* lerp rather than ad-hoc field mixing:
    ///
    /// * `t` is clamped to `[0, 1]` (and a non-finite `t` is treated
    ///   as `0`, i.e. "no drift"), so a buggy schedule can never
    ///   extrapolate into negative extents;
    /// * count fields (`n_hubs`, `min_points`, `max_points`) round to
    ///   the nearest integer and are re-clamped so `n_hubs >= 2` and
    ///   `2 <= min_points <= max_points` keep holding;
    /// * `heading_inertia` stays in `[0, 1)` and the spread/noise/step
    ///   fields stay strictly positive, so the bounding box and the
    ///   walk dynamics remain valid at every intermediate point.
    ///
    /// Endpoints are exact: `a.lerp(&b, 0.0) == a` and
    /// `a.lerp(&b, 1.0) == b` for any two valid cities.
    pub fn lerp(&self, other: &CityParams, t: f64) -> CityParams {
        let t = if t.is_finite() { t.clamp(0.0, 1.0) } else { 0.0 };
        let f = |a: f64, b: f64| a + (b - a) * t;
        // lint: allow(lossy-cast) — interpolation between two small nonnegative point counts
        let c = |a: usize, b: usize| f(a as f64, b as f64).round() as usize;
        let min_points = c(self.min_points, other.min_points).max(2);
        CityParams {
            width: f(self.width, other.width).max(1.0),
            height: f(self.height, other.height).max(1.0),
            n_hubs: c(self.n_hubs, other.n_hubs).max(2),
            hub_spread: f(self.hub_spread, other.hub_spread).max(f64::MIN_POSITIVE),
            step_mean: f(self.step_mean, other.step_mean).max(f64::MIN_POSITIVE),
            gps_noise: f(self.gps_noise, other.gps_noise).max(0.0),
            min_points,
            max_points: c(self.max_points, other.max_points).max(min_points),
            heading_inertia: f(self.heading_inertia, other.heading_inertia)
                .clamp(0.0, 1.0 - f64::EPSILON),
            wander: f(self.wander, other.wander).max(0.0),
        }
    }
}

/// A seeded trajectory generator for one synthetic city.
pub struct CityGenerator {
    params: CityParams,
    hubs: Vec<Point>,
    rng: StdRng,
}

impl CityGenerator {
    fn draw_hubs(params: &CityParams, rng: &mut StdRng) -> Vec<Point> {
        assert!(params.n_hubs >= 2, "need at least two hubs");
        assert!(params.min_points >= 2 && params.min_points <= params.max_points);
        (0..params.n_hubs)
            .map(|_| {
                Point::new(
                    rng.random::<f64>() * params.width,
                    rng.random::<f64>() * params.height,
                )
            })
            .collect()
    }

    /// Creates a generator; the hub layout is derived from the seed.
    pub fn new(params: CityParams, seed: u64) -> Self {
        // Hubs and trips share one continuous stream — the historical
        // behaviour every seeded dataset in this repo depends on.
        let mut rng = StdRng::seed_from_u64(seed);
        let hubs = Self::draw_hubs(&params, &mut rng);
        CityGenerator { params, hubs, rng }
    }

    /// Creates a generator whose hub layout comes from `hub_seed` while
    /// the trip randomness comes from `trip_seed`.
    ///
    /// Streaming workloads need this split: keeping `hub_seed` fixed
    /// across ticks makes hub positions *functions of the city extent*
    /// (the same unit-square draws scaled by width/height), so a city
    /// drifting via [`CityParams::lerp`] moves its hubs continuously
    /// instead of reshuffling them every tick, while a per-tick
    /// `trip_seed` still yields fresh trips.
    pub fn with_trip_seed(params: CityParams, hub_seed: u64, trip_seed: u64) -> Self {
        let mut hub_rng = StdRng::seed_from_u64(hub_seed);
        let hubs = Self::draw_hubs(&params, &mut hub_rng);
        CityGenerator { params, hubs, rng: StdRng::seed_from_u64(trip_seed) }
    }

    /// The city's hub locations.
    pub fn hubs(&self) -> &[Point] {
        &self.hubs
    }

    /// City parameters.
    pub fn params(&self) -> &CityParams {
        &self.params
    }

    fn gauss(rng: &mut StdRng) -> f64 {
        // Box–Muller
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Generates a single trip.
    pub fn generate_one(&mut self) -> Trajectory {
        let p = self.params.clone();
        let bbox = p.bbox();
        let a = self.rng.random_range(0..p.n_hubs);
        let mut b = self.rng.random_range(0..p.n_hubs - 1);
        if b >= a {
            b += 1;
        }
        let start = bbox.clamp(Point::new(
            self.hubs[a].x + Self::gauss(&mut self.rng) * p.hub_spread,
            self.hubs[a].y + Self::gauss(&mut self.rng) * p.hub_spread,
        ));
        let end = bbox.clamp(Point::new(
            self.hubs[b].x + Self::gauss(&mut self.rng) * p.hub_spread,
            self.hubs[b].y + Self::gauss(&mut self.rng) * p.hub_spread,
        ));

        // Trip length follows the hub distance, clamped to the configured
        // range, with a +-20% jitter.
        let direct = start.distance(&end);
        let jitter = 1.0 + 0.2 * (2.0 * self.rng.random::<f64>() - 1.0);
        // lint: allow(lossy-cast) — nonnegative step count, clamped to [min_points, max_points] below
        let n = ((direct / p.step_mean * jitter) as usize)
            .clamp(p.min_points, p.max_points);

        let mut points = Vec::with_capacity(n);
        let mut cur = start;
        let mut heading = (end.y - start.y).atan2(end.x - start.x);
        for i in 0..n {
            let noisy = Point::new(
                cur.x + Self::gauss(&mut self.rng) * p.gps_noise,
                cur.y + Self::gauss(&mut self.rng) * p.gps_noise,
            );
            points.push(bbox.clamp(noisy));
            if i + 1 == n {
                break;
            }
            // Blend the current heading with the bearing to the
            // destination, plus lateral wander.
            let remaining = (n - i - 1) as f64;
            let desired = (end.y - cur.y).atan2(end.x - cur.x);
            // Steering sharpens as the trip nears its destination so trips
            // actually arrive rather than orbit.
            let urgency = (1.0 / remaining.max(1.0)).clamp(0.05, 1.0);
            let inertia = p.heading_inertia * (1.0 - urgency);
            let mut delta = desired - heading;
            while delta > std::f64::consts::PI {
                delta -= 2.0 * std::f64::consts::PI;
            }
            while delta < -std::f64::consts::PI {
                delta += 2.0 * std::f64::consts::PI;
            }
            heading += (1.0 - inertia) * delta + Self::gauss(&mut self.rng) * p.wander;
            let step =
                p.step_mean * (0.7 + 0.6 * self.rng.random::<f64>()).max(0.1);
            cur = bbox.clamp(Point::new(
                cur.x + step * heading.cos(),
                cur.y + step * heading.sin(),
            ));
        }
        Trajectory::new(points)
    }

    /// Generates `n` trips.
    pub fn generate(&mut self, n: usize) -> Vec<Trajectory> {
        (0..n).map(|_| self.generate_one()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = CityGenerator::new(CityParams::test_city(), 9).generate(5);
        let b = CityGenerator::new(CityParams::test_city(), 9).generate(5);
        assert_eq!(a, b);
        let c = CityGenerator::new(CityParams::test_city(), 10).generate(5);
        assert_ne!(a, c);
    }

    #[test]
    fn lengths_respect_bounds() {
        let p = CityParams::test_city();
        let trips = CityGenerator::new(p.clone(), 1).generate(100);
        for t in &trips {
            assert!(t.len() >= p.min_points && t.len() <= p.max_points);
        }
    }

    #[test]
    fn points_stay_in_bbox() {
        let p = CityParams::porto_like();
        let bbox = p.bbox();
        let trips = CityGenerator::new(p, 2).generate(20);
        for t in &trips {
            assert!(t.points.iter().all(|&pt| bbox.contains(pt)));
        }
    }

    #[test]
    fn trips_are_locally_smooth() {
        // Consecutive steps should be bounded by roughly the step mean
        // plus noise; wildly teleporting points would break all distance
        // measures' neighbourhood structure.
        let p = CityParams::test_city();
        let max_step = p.step_mean * 1.3 + 6.0 * p.gps_noise;
        let trips = CityGenerator::new(p, 3).generate(50);
        for t in &trips {
            for w in t.points.windows(2) {
                assert!(
                    w[0].distance(&w[1]) <= max_step,
                    "step {} exceeds {}",
                    w[0].distance(&w[1]),
                    max_step
                );
            }
        }
    }

    #[test]
    fn lerp_endpoints_are_exact() {
        let a = CityParams::porto_like();
        let b = CityParams::chengdu_like();
        let at0 = a.lerp(&b, 0.0);
        let at1 = a.lerp(&b, 1.0);
        assert_eq!(format!("{at0:?}"), format!("{a:?}"));
        assert_eq!(format!("{at1:?}"), format!("{b:?}"));
    }

    #[test]
    fn lerp_clamps_t_and_stays_valid() {
        let a = CityParams::porto_like();
        let b = CityParams::chengdu_like();
        for t in [-3.0, -0.1, 0.25, 0.5, 0.75, 1.1, 42.0, f64::NAN, f64::INFINITY] {
            let p = a.lerp(&b, t);
            assert!(p.width > 0.0 && p.height > 0.0, "bbox degenerate at t={t}");
            assert!(p.n_hubs >= 2);
            assert!(p.min_points >= 2 && p.min_points <= p.max_points);
            assert!((0.0..1.0).contains(&p.heading_inertia));
            assert!(p.hub_spread > 0.0 && p.step_mean > 0.0);
            let bb = p.bbox();
            assert!(bb.width() > 0.0 && bb.height() > 0.0);
            // Every intermediate city must be generator-constructible.
            let _ = CityGenerator::new(p, 1).generate_one();
        }
        // Non-finite t means "no drift".
        let nan = a.lerp(&b, f64::NAN);
        assert_eq!(format!("{nan:?}"), format!("{a:?}"));
    }

    #[test]
    fn lerp_midpoint_mixes_fields() {
        let a = CityParams::porto_like();
        let b = CityParams::chengdu_like();
        let m = a.lerp(&b, 0.5);
        assert!((m.width - (a.width + b.width) / 2.0).abs() < 1e-9);
        assert_eq!(m.n_hubs, 28);
        assert!(m.step_mean < a.step_mean && m.step_mean > b.step_mean);
    }

    #[test]
    fn fixed_hub_seed_moves_hubs_continuously_under_drift() {
        let a = CityParams::porto_like();
        let b = CityParams::chengdu_like();
        let g0 = CityGenerator::with_trip_seed(a.lerp(&b, 0.0), 7, 100);
        let g1 = CityGenerator::with_trip_seed(a.lerp(&b, 0.05), 7, 101);
        // Same unit draws scaled by slightly different extents: every
        // hub moves, but only slightly.
        assert_eq!(g0.hubs().len(), g1.hubs().len());
        for (h0, h1) in g0.hubs().iter().zip(g1.hubs()) {
            assert!(h0.distance(h1) < 0.06 * a.width, "hub jumped: {h0:?} -> {h1:?}");
        }
    }

    #[test]
    fn corridors_exist() {
        // With hubs in common, some pairs of trips must start near each
        // other — the property the fast triplet generator exploits.
        let p = CityParams::test_city();
        let trips = CityGenerator::new(p.clone(), 4).generate(200);
        let mut close_pairs = 0;
        for i in 0..trips.len() {
            for j in (i + 1)..trips.len() {
                if trips[i].first().distance(&trips[j].first()) < 2.0 * p.hub_spread {
                    close_pairs += 1;
                }
            }
        }
        assert!(close_pairs > 10, "only {close_pairs} close pairs");
    }
}
