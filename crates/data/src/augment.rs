//! Trajectory perturbations.
//!
//! Used by the CL-TSim baseline (whose contrastive objective needs
//! distorted/down-sampled views, Section V-A5 of the paper sets the
//! distorting and dropping rates), by the t2vec denoising objective, and
//! by the entity-linking example to simulate two independent observations
//! of the same moving object.

use crate::types::{Point, Trajectory};
use rand::rngs::StdRng;
use rand::RngExt;

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds Gaussian noise of standard deviation `sigma` to each point
/// independently with probability `rate`.
pub fn distort(t: &Trajectory, rng: &mut StdRng, rate: f64, sigma: f64) -> Trajectory {
    let points = t
        .points
        .iter()
        .map(|&p| {
            if rng.random::<f64>() < rate {
                Point::new(p.x + gauss(rng) * sigma, p.y + gauss(rng) * sigma)
            } else {
                p
            }
        })
        .collect();
    Trajectory::new(points)
}

/// Drops each interior point independently with probability `rate`,
/// always keeping the first and last point so the trip endpoints (and
/// hence the DTW/Fréchet lower bound of Lemma 1) survive.
pub fn downsample(t: &Trajectory, rng: &mut StdRng, rate: f64) -> Trajectory {
    if t.len() <= 2 {
        return t.clone();
    }
    let last = t.len() - 1;
    let points = t
        .points
        .iter()
        .enumerate()
        .filter(|&(i, _)| i == 0 || i == last || rng.random::<f64>() >= rate)
        .map(|(_, &p)| p)
        .collect();
    Trajectory::new(points)
}

/// A combined "second observation" view: down-sample then distort, as a
/// different sensor with a lower sampling rate and its own noise would
/// record the same trip.
pub fn observe(t: &Trajectory, rng: &mut StdRng, drop_rate: f64, noise_sigma: f64) -> Trajectory {
    let down = downsample(t, rng, drop_rate);
    distort(&down, rng, 1.0, noise_sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn traj() -> Trajectory {
        Trajectory::from_xy(&(0..20).map(|i| (i as f64 * 10.0, 0.0)).collect::<Vec<_>>())
    }

    #[test]
    fn distort_zero_rate_is_identity() {
        let t = traj();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(distort(&t, &mut rng, 0.0, 50.0), t);
    }

    #[test]
    fn distort_full_rate_moves_points() {
        let t = traj();
        let mut rng = StdRng::seed_from_u64(2);
        let d = distort(&t, &mut rng, 1.0, 5.0);
        assert_eq!(d.len(), t.len());
        assert_ne!(d, t);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let t = traj();
        let mut rng = StdRng::seed_from_u64(3);
        let d = downsample(&t, &mut rng, 0.8);
        assert_eq!(d.first(), t.first());
        assert_eq!(d.last(), t.last());
        assert!(d.len() < t.len());
        assert!(d.len() >= 2);
    }

    #[test]
    fn downsample_short_trajectory_untouched() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(downsample(&t, &mut rng, 0.99), t);
    }

    #[test]
    fn observe_produces_plausible_view() {
        let t = traj();
        let mut rng = StdRng::seed_from_u64(5);
        let o = observe(&t, &mut rng, 0.3, 3.0);
        assert!(o.len() <= t.len() && o.len() >= 2);
        // Views stay near the original path.
        let max_dev = o
            .points
            .iter()
            .map(|p| {
                t.points
                    .iter()
                    .map(|q| p.distance(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max);
        assert!(max_dev < 20.0, "deviation {max_dev}");
    }
}
