//! Core trajectory types.
//!
//! Coordinates are planar (meters in a local projection). The paper works
//! on GPS longitude/latitude but immediately Gaussian-normalizes the
//! coordinates (Eq. 10) and measures point distances with the Euclidean
//! metric, so a planar frame is the faithful representation.

/// A single 2-D location sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// East–west coordinate, meters.
    pub x: f64,
    /// North–south coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in inner loops).
    pub fn squared_distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A GPS trajectory: an ordered sequence of points (Definition 1; the
/// paper discards timestamps, so we store only the spatial sequence).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    /// The ordered point sequence.
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory from points.
    pub fn new(points: Vec<Point>) -> Self {
        Trajectory { points }
    }

    /// Creates a trajectory from `(x, y)` pairs.
    pub fn from_xy(xy: &[(f64, f64)]) -> Self {
        Trajectory { points: xy.iter().map(|&(x, y)| Point::new(x, y)).collect() }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trajectory has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point.
    ///
    /// # Panics
    /// Panics on an empty trajectory.
    pub fn first(&self) -> Point {
        self.points[0]
    }

    /// Last point.
    ///
    /// # Panics
    /// Panics on an empty trajectory.
    pub fn last(&self) -> Point {
        *self.points.last().expect("empty trajectory")
    }

    /// The reversed trajectory `T_r` (Definition 4).
    pub fn reversed(&self) -> Trajectory {
        let mut points = self.points.clone();
        points.reverse();
        Trajectory { points }
    }

    /// Total polyline length in meters.
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum()
    }

    /// Axis-aligned bounding box, or `None` if empty.
    pub fn bbox(&self) -> Option<BoundingBox> {
        let first = *self.points.first()?;
        let mut bb = BoundingBox {
            min_x: first.x,
            min_y: first.y,
            max_x: first.x,
            max_y: first.y,
        };
        for p in &self.points[1..] {
            bb.expand(*p);
        }
        Some(bb)
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum x.
    pub min_x: f64,
    /// Minimum y.
    pub min_y: f64,
    /// Maximum x.
    pub max_x: f64,
    /// Maximum y.
    pub max_y: f64,
}

impl BoundingBox {
    /// Creates a bounding box spanning `[0, width] x [0, height]`.
    pub fn from_extent(width: f64, height: f64) -> Self {
        BoundingBox { min_x: 0.0, min_y: 0.0, max_x: width, max_y: height }
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Union of two boxes.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// True when `p` lies inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Clamps a point into the box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min_x, self.max_x), p.y.clamp(self.min_y, self.max_y))
    }

    /// Bounding box of a whole dataset, or `None` if no points exist.
    pub fn of_dataset(trajectories: &[Trajectory]) -> Option<BoundingBox> {
        let mut acc: Option<BoundingBox> = None;
        for t in trajectories {
            if let Some(bb) = t.bbox() {
                acc = Some(match acc {
                    None => bb,
                    Some(a) => a.union(&bb),
                });
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.squared_distance(&b), 25.0);
    }

    #[test]
    fn reverse_is_involution() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(t.reversed().reversed(), t);
        assert_eq!(t.reversed().first(), t.last());
        assert_eq!(t.reversed().last(), t.first());
    }

    #[test]
    fn path_length_accumulates() {
        let t = Trajectory::from_xy(&[(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)]);
        assert!((t.path_length() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_contains_all_points() {
        let t = Trajectory::from_xy(&[(1.0, 5.0), (-2.0, 3.0), (4.0, -1.0)]);
        let bb = t.bbox().unwrap();
        assert_eq!(bb.min_x, -2.0);
        assert_eq!(bb.max_y, 5.0);
        assert!(t.points.iter().all(|&p| bb.contains(p)));
    }

    #[test]
    fn bbox_of_empty_is_none() {
        assert!(Trajectory::default().bbox().is_none());
        assert!(BoundingBox::of_dataset(&[]).is_none());
    }

    #[test]
    fn bbox_union_and_clamp() {
        let a = BoundingBox::from_extent(10.0, 10.0);
        let b = BoundingBox { min_x: -5.0, min_y: 2.0, max_x: 3.0, max_y: 20.0 };
        let u = a.union(&b);
        assert_eq!(u.min_x, -5.0);
        assert_eq!(u.max_x, 10.0);
        assert_eq!(u.max_y, 20.0);
        let p = u.clamp(Point::new(100.0, -100.0));
        assert_eq!(p, Point::new(10.0, 0.0));
    }
}
