//! # traj-data — trajectory types and synthetic datasets
//!
//! Core data model for the Traj2Hash reproduction: [`Point`] and
//! [`Trajectory`] types, Gaussian [`NormStats`] normalization, trajectory
//! perturbations for contrastive baselines, and deterministic synthetic
//! city generators that stand in for the Porto/ChengDu taxi corpora (see
//! DESIGN.md for the substitution rationale).

#![warn(missing_docs)]

pub mod augment;
pub mod drift;
pub mod normalize;
pub mod porto_csv;
pub mod simplify;
pub mod splits;
pub mod synthetic;
pub mod types;

pub use normalize::NormStats;
pub use porto_csv::{
    load_porto_csv, parse_polyline, project_lonlat, LoadError, LoadPolicy, LoadReport,
    PolylineError, PORTO_ORIGIN,
};
pub use drift::{DriftSchedule, DriftingGenerator};
pub use simplify::douglas_peucker;
pub use splits::{Dataset, SplitSizes};
pub use synthetic::{CityGenerator, CityParams};
pub use types::{BoundingBox, Point, Trajectory};
