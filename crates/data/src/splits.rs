//! Experimental dataset splits mirroring the paper's protocol
//! (Section V-A2): a labelled pool split into seeds (20%) and validation
//! (80%), a large unlabelled corpus for fast triplet generation, and a
//! disjoint query + database test set.

use crate::synthetic::{CityGenerator, CityParams};
use crate::types::Trajectory;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sizes of each split.
#[derive(Debug, Clone, Copy)]
pub struct SplitSizes {
    /// Seed trajectories with exact pairwise distances (WMSE supervision).
    pub seeds: usize,
    /// Validation trajectories (model selection on HR@10).
    pub validation: usize,
    /// Unlabelled corpus for the fast triplet generation.
    pub corpus: usize,
    /// Query trajectories of the test set.
    pub query: usize,
    /// Database trajectories of the test set.
    pub database: usize,
}

impl SplitSizes {
    /// A laptop-scale configuration preserving the paper's ratios
    /// (labelled pool : corpus : database roughly 1 : 20 : 10 and a
    /// 20/80 seed/validation split of the labelled pool).
    pub fn small() -> Self {
        SplitSizes { seeds: 120, validation: 200, corpus: 2_000, query: 60, database: 1_500 }
    }

    /// A minimal configuration for tests.
    pub fn tiny() -> Self {
        SplitSizes { seeds: 30, validation: 40, corpus: 300, query: 15, database: 200 }
    }

    /// Total number of trajectories needed.
    pub fn total(&self) -> usize {
        self.seeds + self.validation + self.corpus + self.query + self.database
    }
}

/// A fully materialized dataset split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Seed trajectories (exact distance matrix is computed over these).
    pub seeds: Vec<Trajectory>,
    /// Validation trajectories.
    pub validation: Vec<Trajectory>,
    /// Unlabelled triplet-generation corpus.
    pub corpus: Vec<Trajectory>,
    /// Test queries.
    pub query: Vec<Trajectory>,
    /// Test database.
    pub database: Vec<Trajectory>,
}

impl Dataset {
    /// Generates a dataset for the given city with disjoint splits.
    ///
    /// The generation and shuffling are both derived from `seed`, so the
    /// same `(params, sizes, seed)` triple always produces the identical
    /// dataset.
    pub fn generate(params: CityParams, sizes: SplitSizes, seed: u64) -> Dataset {
        let mut generator = CityGenerator::new(params, seed);
        let mut pool = generator.generate(sizes.total());
        // Fisher–Yates shuffle so splits are not correlated with
        // generation order.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f37_59df);
        for i in (1..pool.len()).rev() {
            let j = rng.random_range(0..=i);
            pool.swap(i, j);
        }
        let mut take = |n: usize| -> Vec<Trajectory> { pool.drain(..n).collect() };
        Dataset {
            seeds: take(sizes.seeds),
            validation: take(sizes.validation),
            corpus: take(sizes.corpus),
            query: take(sizes.query),
            database: take(sizes.database),
        }
    }

    /// All trajectories that participate in normalization statistics
    /// (training-visible data only: seeds + validation + corpus).
    pub fn training_visible(&self) -> Vec<Trajectory> {
        let mut all = self.seeds.clone();
        all.extend(self.validation.iter().cloned());
        all.extend(self.corpus.iter().cloned());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_respected() {
        let sizes = SplitSizes::tiny();
        let d = Dataset::generate(CityParams::test_city(), sizes, 7);
        assert_eq!(d.seeds.len(), sizes.seeds);
        assert_eq!(d.validation.len(), sizes.validation);
        assert_eq!(d.corpus.len(), sizes.corpus);
        assert_eq!(d.query.len(), sizes.query);
        assert_eq!(d.database.len(), sizes.database);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(CityParams::test_city(), SplitSizes::tiny(), 3);
        let b = Dataset::generate(CityParams::test_city(), SplitSizes::tiny(), 3);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.database, b.database);
    }

    #[test]
    fn splits_are_disjoint() {
        let d = Dataset::generate(CityParams::test_city(), SplitSizes::tiny(), 11);
        // Trajectories are continuous random data, so equality across
        // splits would mean the split logic reused an element.
        for s in &d.seeds {
            assert!(!d.validation.contains(s));
            assert!(!d.query.contains(s));
            assert!(!d.database.contains(s));
        }
    }
}
