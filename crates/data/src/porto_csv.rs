//! Loader for the real Porto taxi dataset (ECML/PKDD 2015 challenge
//! format), so users who have the actual corpus can run every experiment
//! on it instead of the synthetic stand-in.
//!
//! The challenge CSV stores each trip's GPS track in a `POLYLINE` column
//! as a JSON-style nested array of `[longitude, latitude]` pairs:
//!
//! ```text
//! "[[-8.618643,41.141412],[-8.618499,41.141376],...]"
//! ```
//!
//! Coordinates are projected to local meters with an equirectangular
//! projection around the dataset's reference latitude — accurate to well
//! under a meter over a city-sized extent, and consistent with the
//! planar Euclidean geometry the distance kernels use.

use crate::types::{Point, Trajectory};

/// Porto's approximate center, used as the default projection origin.
pub const PORTO_ORIGIN: (f64, f64) = (-8.62, 41.16);

/// Meters per degree of latitude (WGS-84 mean).
const METERS_PER_DEG_LAT: f64 = 111_320.0;

/// Equirectangular projection of a lon/lat pair to local meters around
/// `origin` (`(lon0, lat0)` in degrees).
pub fn project_lonlat(lon: f64, lat: f64, origin: (f64, f64)) -> Point {
    let (lon0, lat0) = origin;
    let meters_per_deg_lon = METERS_PER_DEG_LAT * lat0.to_radians().cos();
    Point::new((lon - lon0) * meters_per_deg_lon, (lat - lat0) * METERS_PER_DEG_LAT)
}

/// Errors from polyline parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum PolylineError {
    /// The string is not a bracketed array of pairs.
    Malformed(String),
    /// A coordinate failed to parse as a float.
    BadNumber(String),
}

impl std::fmt::Display for PolylineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolylineError::Malformed(s) => write!(f, "malformed polyline: {s}"),
            PolylineError::BadNumber(s) => write!(f, "bad coordinate: {s}"),
        }
    }
}

impl std::error::Error for PolylineError {}

/// Parses one `POLYLINE` cell into lon/lat pairs.
///
/// Accepts optional surrounding double quotes (as in raw CSV cells) and
/// whitespace. An empty array `[]` yields an empty vector.
pub fn parse_polyline(cell: &str) -> Result<Vec<(f64, f64)>, PolylineError> {
    let s = cell.trim().trim_matches('"').trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| PolylineError::Malformed(truncate(s)))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut rest = inner;
    loop {
        let start = rest
            .find('[')
            .ok_or_else(|| PolylineError::Malformed(truncate(rest)))?;
        let end = rest[start..]
            .find(']')
            .map(|e| start + e)
            .ok_or_else(|| PolylineError::Malformed(truncate(rest)))?;
        let pair = &rest[start + 1..end];
        let mut nums = pair.split(',').map(str::trim);
        let lon: f64 = nums
            .next()
            .ok_or_else(|| PolylineError::Malformed(truncate(pair)))?
            .parse()
            .map_err(|_| PolylineError::BadNumber(truncate(pair)))?;
        let lat: f64 = nums
            .next()
            .ok_or_else(|| PolylineError::Malformed(truncate(pair)))?
            .parse()
            .map_err(|_| PolylineError::BadNumber(truncate(pair)))?;
        if nums.next().is_some() {
            return Err(PolylineError::Malformed(truncate(pair)));
        }
        out.push((lon, lat));
        rest = &rest[end + 1..];
        if !rest.trim_start().starts_with(',') {
            break;
        }
    }
    Ok(out)
}

fn truncate(s: &str) -> String {
    s.chars().take(48).collect()
}

/// Parses a polyline cell into a projected [`Trajectory`].
pub fn trajectory_from_polyline(
    cell: &str,
    origin: (f64, f64),
) -> Result<Trajectory, PolylineError> {
    let pairs = parse_polyline(cell)?;
    Ok(Trajectory::new(
        pairs.into_iter().map(|(lon, lat)| project_lonlat(lon, lat, origin)).collect(),
    ))
}

/// How `load_porto_csv` treats imperfect input. Real-world taxi dumps
/// always contain some corrupt rows; the policy says how many are
/// tolerable before the load as a whole is considered failed.
#[derive(Debug, Clone)]
pub struct LoadPolicy {
    /// Projection origin `(lon, lat)` in degrees.
    pub origin: (f64, f64),
    /// Minimum GPS points per trip (the paper's preprocessing filter,
    /// Section V-A1). Shorter trips are *filtered*, not corrupt.
    pub min_points: usize,
    /// Maximum tolerated fraction of corrupt rows (malformed, bad
    /// number, out-of-bounds) among all data rows. Exceeding it turns
    /// the whole load into [`LoadError::BudgetExceeded`].
    pub max_corrupt_fraction: f64,
    /// Plausible longitude range, degrees. Coordinates outside are
    /// classified as corrupt (`out_of_bounds`); `NaN` coordinates fail
    /// this check too.
    pub lon_range: (f64, f64),
    /// Plausible latitude range, degrees.
    pub lat_range: (f64, f64),
}

impl Default for LoadPolicy {
    fn default() -> Self {
        LoadPolicy {
            origin: PORTO_ORIGIN,
            min_points: 2,
            max_corrupt_fraction: 0.05,
            lon_range: (-180.0, 180.0),
            lat_range: (-90.0, 90.0),
        }
    }
}

impl LoadPolicy {
    /// Policy with the given budget, otherwise defaults.
    pub fn with_budget(max_corrupt_fraction: f64) -> Self {
        LoadPolicy { max_corrupt_fraction, ..Default::default() }
    }

    fn in_bounds(&self, lon: f64, lat: f64) -> bool {
        // NaN fails every comparison, so non-finite coordinates are
        // out of bounds by construction.
        lon >= self.lon_range.0
            && lon <= self.lon_range.1
            && lat >= self.lat_range.0
            && lat <= self.lat_range.1
    }
}

/// Per-row accounting of a CSV load: what was kept, what was filtered,
/// and what was corrupt in which way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Non-empty data rows seen (excludes the header).
    pub rows: usize,
    /// Trajectories returned.
    pub loaded: usize,
    /// Rows whose polyline cell was structurally broken.
    pub malformed: usize,
    /// Rows with an unparseable coordinate.
    pub bad_number: usize,
    /// Rows with a coordinate outside the policy's plausible range.
    pub out_of_bounds: usize,
    /// Rows filtered by the `min_points` preprocessing rule (not
    /// counted against the corruption budget).
    pub too_short: usize,
}

impl LoadReport {
    /// Rows counted against the corruption budget.
    pub fn corrupt(&self) -> usize {
        self.malformed + self.bad_number + self.out_of_bounds
    }

    /// Corrupt fraction among all data rows (0 when the file is empty).
    pub fn corrupt_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.corrupt() as f64 / self.rows as f64
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rows: {} loaded, {} too short, {} corrupt \
             ({} malformed, {} bad number, {} out of bounds; {:.2}%)",
            self.rows,
            self.loaded,
            self.too_short,
            self.corrupt(),
            self.malformed,
            self.bad_number,
            self.out_of_bounds,
            100.0 * self.corrupt_fraction()
        )
    }
}

/// Why a CSV load failed as a whole (individual bad rows are skipped
/// and reported, not errors).
#[derive(Debug)]
pub enum LoadError {
    /// Reading the underlying stream failed.
    Io(std::io::Error),
    /// The header has no `POLYLINE` column — wrong file, not a
    /// partially corrupt one.
    NoPolylineColumn,
    /// More rows were corrupt than the policy tolerates. The report
    /// carries the full classification for diagnostics.
    BudgetExceeded {
        /// Accounting of the aborted load.
        report: LoadReport,
        /// The budget that was exceeded.
        budget: f64,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error reading CSV: {e}"),
            LoadError::NoPolylineColumn => write!(f, "no POLYLINE column in header"),
            LoadError::BudgetExceeded { report, budget } => write!(
                f,
                "corrupt fraction {:.2}% exceeds budget {:.2}% ({report})",
                100.0 * report.corrupt_fraction(),
                100.0 * budget
            ),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Streams trajectories out of an ECML/PKDD-format CSV reader: finds the
/// `POLYLINE` column from the header, parses every row, projects around
/// the policy's origin, and applies the paper's preprocessing filter
/// (drop trips with fewer than `min_points` records, Section V-A1).
///
/// Corrupt rows (structurally broken polylines, unparseable numbers,
/// implausible coordinates) are skipped and classified in the returned
/// [`LoadReport`]; the load only fails — with
/// [`LoadError::BudgetExceeded`] — when their fraction exceeds
/// `policy.max_corrupt_fraction`, so a handful of bad rows in a
/// million-trip dump never aborts ingestion, while a systematically
/// broken file cannot masquerade as a small dataset.
pub fn load_porto_csv<R: std::io::BufRead>(
    reader: R,
    policy: &LoadPolicy,
) -> Result<(Vec<Trajectory>, LoadReport), LoadError> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok((Vec::new(), LoadReport::default())),
    };
    let polyline_col = split_csv(&header)
        .iter()
        .position(|c| c.trim_matches('"').eq_ignore_ascii_case("POLYLINE"))
        .ok_or(LoadError::NoPolylineColumn)?;
    let mut out = Vec::new();
    let mut report = LoadReport::default();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        report.rows += 1;
        let cells = split_csv(&line);
        let Some(cell) = cells.get(polyline_col) else {
            report.malformed += 1;
            continue;
        };
        match parse_polyline(cell) {
            Err(PolylineError::Malformed(_)) => report.malformed += 1,
            Err(PolylineError::BadNumber(_)) => report.bad_number += 1,
            Ok(pairs) => {
                if pairs.iter().any(|&(lon, lat)| !policy.in_bounds(lon, lat)) {
                    report.out_of_bounds += 1;
                } else if pairs.len() < policy.min_points {
                    report.too_short += 1;
                } else {
                    out.push(Trajectory::new(
                        pairs
                            .into_iter()
                            .map(|(lon, lat)| project_lonlat(lon, lat, policy.origin))
                            .collect(),
                    ));
                    report.loaded += 1;
                }
            }
        }
    }
    if traj_obs::enabled() {
        traj_obs::counter("data.load.rows", report.rows as u64);
        traj_obs::counter("data.load.loaded", report.loaded as u64);
        traj_obs::counter("data.load.malformed", report.malformed as u64);
        traj_obs::counter("data.load.bad_number", report.bad_number as u64);
        traj_obs::counter("data.load.out_of_bounds", report.out_of_bounds as u64);
        traj_obs::counter("data.load.too_short", report.too_short as u64);
        traj_obs::event(
            "data.load",
            &[
                ("rows", report.rows.into()),
                ("loaded", report.loaded.into()),
                ("corrupt", report.corrupt().into()),
                ("corrupt_fraction", report.corrupt_fraction().into()),
                ("too_short", report.too_short.into()),
                ("budget_exceeded", (report.corrupt_fraction() > policy.max_corrupt_fraction).into()),
            ],
        );
    }
    if report.corrupt_fraction() > policy.max_corrupt_fraction {
        traj_obs::counter("data.load.budget_exceeded", 1);
        return Err(LoadError::BudgetExceeded {
            report,
            budget: policy.max_corrupt_fraction,
        });
    }
    Ok((out, report))
}

/// Minimal CSV field splitter that respects double-quoted cells (the
/// polyline cell contains commas). Quotes are kept on the cell so
/// callers can strip them; escaped quotes (`""`) are not produced by the
/// challenge format and are treated literally.
fn split_csv(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(ch);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_real_looking_polyline() {
        let cell = r#""[[-8.618643,41.141412],[-8.618499,41.141376],[-8.620326,41.14251]]""#;
        let pairs = parse_polyline(cell).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!((pairs[0].0 + 8.618643).abs() < 1e-12);
        assert!((pairs[2].1 - 41.14251).abs() < 1e-12);
    }

    #[test]
    fn empty_polyline_is_empty_trajectory() {
        assert_eq!(parse_polyline("[]").unwrap(), Vec::new());
        assert_eq!(parse_polyline(r#""[]""#).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_malformed_cells() {
        assert!(parse_polyline("not a polyline").is_err());
        assert!(parse_polyline("[[1,2],[3]]").is_err());
        assert!(parse_polyline("[[1,2,3]]").is_err());
        assert!(parse_polyline("[[a,b]]").is_err());
    }

    #[test]
    fn projection_is_locally_accurate() {
        // one degree of latitude ~ 111.32 km; 0.001 deg ~ 111.3 m
        let origin = PORTO_ORIGIN;
        let a = project_lonlat(origin.0, origin.1, origin);
        assert!(a.x.abs() < 1e-9 && a.y.abs() < 1e-9);
        let b = project_lonlat(origin.0, origin.1 + 0.001, origin);
        assert!((b.y - 111.32).abs() < 0.1);
        // longitude meters shrink with cos(lat)
        let c = project_lonlat(origin.0 + 0.001, origin.1, origin);
        assert!((c.x - 111.32 * origin.1.to_radians().cos()).abs() < 0.1);
    }

    #[test]
    fn loads_csv_and_applies_min_points_filter() {
        let csv = concat!(
            "\"TRIP_ID\",\"CALL_TYPE\",\"POLYLINE\"\n",
            "\"1\",\"A\",\"[[-8.618,41.141],[-8.617,41.142],[-8.616,41.143]]\"\n",
            "\"2\",\"B\",\"[[-8.6,41.1]]\"\n",
            "\"3\",\"C\",\"garbage\"\n",
            "\"4\",\"A\",\"[[-8.62,41.16],[-8.621,41.161],[-8.622,41.162]]\"\n",
        );
        let policy = LoadPolicy { max_corrupt_fraction: 0.5, ..Default::default() };
        let (trajs, report) = load_porto_csv(csv.as_bytes(), &policy).unwrap();
        assert_eq!(trajs.len(), 2, "two trips survive the filter");
        assert_eq!(
            report,
            LoadReport { rows: 4, loaded: 2, malformed: 1, too_short: 1, ..Default::default() }
        );
        assert_eq!(trajs[0].len(), 3);
        // projected coordinates are in meters near the origin
        assert!(trajs[1].points.iter().all(|p| p.x.abs() < 10_000.0 && p.y.abs() < 10_000.0));
    }

    #[test]
    fn classifies_each_corruption_kind() {
        let csv = concat!(
            "\"TRIP_ID\",\"POLYLINE\"\n",
            "\"1\",\"[[-8.618,41.141],[-8.617,41.142]]\"\n", // good
            "\"2\",\"[[-8.6,41.1\"\n",                       // malformed (unclosed)
            "\"3\",\"[[abc,41.1],[-8.6,41.2]]\"\n",          // bad number
            "\"4\",\"[[-8.6,141.0],[-8.6,41.2]]\"\n",        // latitude out of range
            "\"5\",\"[[NaN,41.1],[-8.6,41.2]]\"\n",          // NaN parses, bounds catch it
            "\"6\",\"[[-8.6,41.1]]\"\n",                     // too short (filter, not corrupt)
        );
        let policy = LoadPolicy { max_corrupt_fraction: 1.0, ..Default::default() };
        let (trajs, report) = load_porto_csv(csv.as_bytes(), &policy).unwrap();
        assert_eq!(trajs.len(), 1);
        assert_eq!(
            report,
            LoadReport {
                rows: 6,
                loaded: 1,
                malformed: 1,
                bad_number: 1,
                out_of_bounds: 2,
                too_short: 1,
            }
        );
        assert_eq!(report.corrupt(), 4);
        assert!((report.corrupt_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn budget_decides_between_skip_and_fail() {
        // 1 corrupt row out of 10 = 10% corruption.
        let mut csv = String::from("\"TRIP_ID\",\"POLYLINE\"\n");
        for i in 0..9 {
            csv.push_str(&format!("\"{i}\",\"[[-8.618,41.141],[-8.617,41.142]]\"\n"));
        }
        csv.push_str("\"9\",\"garbage\"\n");

        // Under a 20% budget the load succeeds and the report is exact.
        let lenient = LoadPolicy { max_corrupt_fraction: 0.2, ..Default::default() };
        let (trajs, report) = load_porto_csv(csv.as_bytes(), &lenient).unwrap();
        assert_eq!(trajs.len(), 9);
        assert_eq!(report.corrupt(), 1);
        assert_eq!(report.rows, 10);

        // Under a 5% budget the same file fails with a typed error that
        // still carries the full classification.
        let strict = LoadPolicy { max_corrupt_fraction: 0.05, ..Default::default() };
        match load_porto_csv(csv.as_bytes(), &strict) {
            Err(LoadError::BudgetExceeded { report, budget }) => {
                assert_eq!(report.corrupt(), 1);
                assert_eq!(report.rows, 10);
                assert!((budget - 0.05).abs() < 1e-12);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_loads_empty() {
        let (trajs, report) = load_porto_csv(&b""[..], &LoadPolicy::default()).unwrap();
        assert!(trajs.is_empty());
        assert_eq!(report, LoadReport::default());
    }

    #[test]
    fn row_with_missing_polyline_cell_is_malformed() {
        let csv = "\"TRIP_ID\",\"CALL_TYPE\",\"POLYLINE\"\n\"1\",\"A\"\n";
        let policy = LoadPolicy { max_corrupt_fraction: 1.0, ..Default::default() };
        let (trajs, report) = load_porto_csv(csv.as_bytes(), &policy).unwrap();
        assert!(trajs.is_empty());
        assert_eq!(report.malformed, 1);
    }

    #[test]
    fn csv_splitter_respects_quoted_commas() {
        let cells = split_csv(r#""a","[[1,2],[3,4]]","b""#);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1], r#""[[1,2],[3,4]]""#);
    }

    #[test]
    fn header_without_polyline_errors() {
        let csv = "\"A\",\"B\"\n1,2\n";
        assert!(matches!(
            load_porto_csv(csv.as_bytes(), &LoadPolicy::default()),
            Err(LoadError::NoPolylineColumn)
        ));
    }
}
