//! Loader for the real Porto taxi dataset (ECML/PKDD 2015 challenge
//! format), so users who have the actual corpus can run every experiment
//! on it instead of the synthetic stand-in.
//!
//! The challenge CSV stores each trip's GPS track in a `POLYLINE` column
//! as a JSON-style nested array of `[longitude, latitude]` pairs:
//!
//! ```text
//! "[[-8.618643,41.141412],[-8.618499,41.141376],...]"
//! ```
//!
//! Coordinates are projected to local meters with an equirectangular
//! projection around the dataset's reference latitude — accurate to well
//! under a meter over a city-sized extent, and consistent with the
//! planar Euclidean geometry the distance kernels use.

use crate::types::{Point, Trajectory};

/// Porto's approximate center, used as the default projection origin.
pub const PORTO_ORIGIN: (f64, f64) = (-8.62, 41.16);

/// Meters per degree of latitude (WGS-84 mean).
const METERS_PER_DEG_LAT: f64 = 111_320.0;

/// Equirectangular projection of a lon/lat pair to local meters around
/// `origin` (`(lon0, lat0)` in degrees).
pub fn project_lonlat(lon: f64, lat: f64, origin: (f64, f64)) -> Point {
    let (lon0, lat0) = origin;
    let meters_per_deg_lon = METERS_PER_DEG_LAT * lat0.to_radians().cos();
    Point::new((lon - lon0) * meters_per_deg_lon, (lat - lat0) * METERS_PER_DEG_LAT)
}

/// Errors from polyline parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum PolylineError {
    /// The string is not a bracketed array of pairs.
    Malformed(String),
    /// A coordinate failed to parse as a float.
    BadNumber(String),
}

impl std::fmt::Display for PolylineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolylineError::Malformed(s) => write!(f, "malformed polyline: {s}"),
            PolylineError::BadNumber(s) => write!(f, "bad coordinate: {s}"),
        }
    }
}

impl std::error::Error for PolylineError {}

/// Parses one `POLYLINE` cell into lon/lat pairs.
///
/// Accepts optional surrounding double quotes (as in raw CSV cells) and
/// whitespace. An empty array `[]` yields an empty vector.
pub fn parse_polyline(cell: &str) -> Result<Vec<(f64, f64)>, PolylineError> {
    let s = cell.trim().trim_matches('"').trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| PolylineError::Malformed(truncate(s)))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut rest = inner;
    loop {
        let start = rest
            .find('[')
            .ok_or_else(|| PolylineError::Malformed(truncate(rest)))?;
        let end = rest[start..]
            .find(']')
            .map(|e| start + e)
            .ok_or_else(|| PolylineError::Malformed(truncate(rest)))?;
        let pair = &rest[start + 1..end];
        let mut nums = pair.split(',').map(str::trim);
        let lon: f64 = nums
            .next()
            .ok_or_else(|| PolylineError::Malformed(truncate(pair)))?
            .parse()
            .map_err(|_| PolylineError::BadNumber(truncate(pair)))?;
        let lat: f64 = nums
            .next()
            .ok_or_else(|| PolylineError::Malformed(truncate(pair)))?
            .parse()
            .map_err(|_| PolylineError::BadNumber(truncate(pair)))?;
        if nums.next().is_some() {
            return Err(PolylineError::Malformed(truncate(pair)));
        }
        out.push((lon, lat));
        rest = &rest[end + 1..];
        if !rest.trim_start().starts_with(',') {
            break;
        }
    }
    Ok(out)
}

fn truncate(s: &str) -> String {
    s.chars().take(48).collect()
}

/// Parses a polyline cell into a projected [`Trajectory`].
pub fn trajectory_from_polyline(
    cell: &str,
    origin: (f64, f64),
) -> Result<Trajectory, PolylineError> {
    let pairs = parse_polyline(cell)?;
    Ok(Trajectory::new(
        pairs.into_iter().map(|(lon, lat)| project_lonlat(lon, lat, origin)).collect(),
    ))
}

/// Streams trajectories out of an ECML/PKDD-format CSV reader: finds the
/// `POLYLINE` column from the header, parses every row, projects around
/// `origin`, and applies the paper's preprocessing filter (drop trips
/// with fewer than `min_points` records, Section V-A1).
///
/// Rows whose polyline fails to parse are skipped and counted. Returns
/// `(trajectories, skipped_rows)`.
pub fn load_porto_csv<R: std::io::BufRead>(
    reader: R,
    origin: (f64, f64),
    min_points: usize,
) -> std::io::Result<(Vec<Trajectory>, usize)> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok((Vec::new(), 0)),
    };
    let polyline_col = split_csv(&header)
        .iter()
        .position(|c| c.trim_matches('"').eq_ignore_ascii_case("POLYLINE"))
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no POLYLINE column in header")
        })?;
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_csv(&line);
        match cells.get(polyline_col).map(|c| trajectory_from_polyline(c, origin)) {
            Some(Ok(t)) if t.len() >= min_points => out.push(t),
            Some(Ok(_)) => skipped += 1,
            _ => skipped += 1,
        }
    }
    Ok((out, skipped))
}

/// Minimal CSV field splitter that respects double-quoted cells (the
/// polyline cell contains commas). Quotes are kept on the cell so
/// callers can strip them; escaped quotes (`""`) are not produced by the
/// challenge format and are treated literally.
fn split_csv(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(ch);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_real_looking_polyline() {
        let cell = r#""[[-8.618643,41.141412],[-8.618499,41.141376],[-8.620326,41.14251]]""#;
        let pairs = parse_polyline(cell).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!((pairs[0].0 + 8.618643).abs() < 1e-12);
        assert!((pairs[2].1 - 41.14251).abs() < 1e-12);
    }

    #[test]
    fn empty_polyline_is_empty_trajectory() {
        assert_eq!(parse_polyline("[]").unwrap(), Vec::new());
        assert_eq!(parse_polyline(r#""[]""#).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_malformed_cells() {
        assert!(parse_polyline("not a polyline").is_err());
        assert!(parse_polyline("[[1,2],[3]]").is_err());
        assert!(parse_polyline("[[1,2,3]]").is_err());
        assert!(parse_polyline("[[a,b]]").is_err());
    }

    #[test]
    fn projection_is_locally_accurate() {
        // one degree of latitude ~ 111.32 km; 0.001 deg ~ 111.3 m
        let origin = PORTO_ORIGIN;
        let a = project_lonlat(origin.0, origin.1, origin);
        assert!(a.x.abs() < 1e-9 && a.y.abs() < 1e-9);
        let b = project_lonlat(origin.0, origin.1 + 0.001, origin);
        assert!((b.y - 111.32).abs() < 0.1);
        // longitude meters shrink with cos(lat)
        let c = project_lonlat(origin.0 + 0.001, origin.1, origin);
        assert!((c.x - 111.32 * origin.1.to_radians().cos()).abs() < 0.1);
    }

    #[test]
    fn loads_csv_and_applies_min_points_filter() {
        let csv = concat!(
            "\"TRIP_ID\",\"CALL_TYPE\",\"POLYLINE\"\n",
            "\"1\",\"A\",\"[[-8.618,41.141],[-8.617,41.142],[-8.616,41.143]]\"\n",
            "\"2\",\"B\",\"[[-8.6,41.1]]\"\n",
            "\"3\",\"C\",\"garbage\"\n",
            "\"4\",\"A\",\"[[-8.62,41.16],[-8.621,41.161],[-8.622,41.162]]\"\n",
        );
        let (trajs, skipped) =
            load_porto_csv(csv.as_bytes(), PORTO_ORIGIN, 2).unwrap();
        assert_eq!(trajs.len(), 2, "two trips survive the filter");
        assert_eq!(skipped, 2, "one too-short trip and one garbage row skipped");
        assert_eq!(trajs[0].len(), 3);
        // projected coordinates are in meters near the origin
        assert!(trajs[1].points.iter().all(|p| p.x.abs() < 10_000.0 && p.y.abs() < 10_000.0));
    }

    #[test]
    fn csv_splitter_respects_quoted_commas() {
        let cells = split_csv(r#""a","[[1,2],[3,4]]","b""#);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1], r#""[[1,2],[3,4]]""#);
    }

    #[test]
    fn header_without_polyline_errors() {
        let csv = "\"A\",\"B\"\n1,2\n";
        assert!(load_porto_csv(csv.as_bytes(), PORTO_ORIGIN, 2).is_err());
    }
}
