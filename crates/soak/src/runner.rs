//! The soak loop: ingest → serve → evaluate → refresh → drill.

use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use traj2hash::{
    train, with_fault_plan, FaultPlan, ModelContext, Traj2Hash, TrainData, TrainError,
};
use traj_data::{Dataset, DriftSchedule, DriftingGenerator, Trajectory};
use traj_engine::{EngineConfig, EngineError, ShardConfig, ShardedEngine, Strategy};
use traj_obs::{FlightConfig, OpsHealth, OpsServer, TrendWindow};

use crate::config::SoakConfig;
use crate::report::{DegradeReason, SoakReport, TickHealth, TickRecord};

/// A fatal soak error — something the loop cannot degrade around
/// (invalid config, bootstrap failure). In-loop faults never surface
/// here; they become typed degraded ticks instead.
#[derive(Debug)]
pub enum SoakError {
    /// The configuration failed validation.
    Config(String),
    /// The initial model fit failed.
    Train(TrainError),
    /// Building or bootstrapping the engine failed.
    Engine(EngineError),
    /// Workdir setup failed.
    Io(std::io::Error),
}

impl fmt::Display for SoakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakError::Config(msg) => write!(f, "invalid soak config: {msg}"),
            SoakError::Train(e) => write!(f, "initial training failed: {e}"),
            SoakError::Engine(e) => write!(f, "engine bootstrap failed: {e}"),
            SoakError::Io(e) => write!(f, "workdir io failed: {e}"),
        }
    }
}

impl std::error::Error for SoakError {}

impl From<TrainError> for SoakError {
    fn from(e: TrainError) -> Self {
        SoakError::Train(e)
    }
}

impl From<EngineError> for SoakError {
    fn from(e: EngineError) -> Self {
        SoakError::Engine(e)
    }
}

impl From<std::io::Error> for SoakError {
    fn from(e: std::io::Error) -> Self {
        SoakError::Io(e)
    }
}

/// Where an in-flight refresh stands between ticks.
enum RefreshState {
    /// No refresh pending.
    Idle,
    /// Drift detected; the fine-tune still has to complete.
    NeedTrain,
    /// Fine-tune done; the snapshot/swap step still has to complete.
    NeedSwap(Box<Traj2Hash>),
}

/// Drives the always-on serving loop described in `DESIGN.md` §12:
/// every tick ingests a drifting batch, serves queries, periodically
/// re-measures validation HR@10, refreshes the model when the detector
/// fires, and survives injected write faults by entering a typed
/// degraded state and retrying.
pub struct SoakRunner {
    cfg: SoakConfig,
    engine: ShardedEngine,
    ingest: DriftingGenerator,
    serve: DriftingGenerator,
    eval: DriftingGenerator,
    /// Mirror of the engine's live corpus in insertion (= id) order.
    live: VecDeque<(u64, Trajectory)>,
    hr_trend: TrendWindow,
    lat_trends: Vec<TrendWindow>,
    refresh: RefreshState,
    snapshot_due: bool,
    pending_reason: Option<DegradeReason>,
    last_refresh_tick: u64,
    trained_epochs: usize,
    snapshot_path: PathBuf,
    plan: Arc<FaultPlan>,
    /// Live health handle the ops server's `/healthz` reads; present
    /// only while [`run`](SoakRunner::run) has the server up.
    ops_health: Option<Arc<OpsHealth>>,
    report: SoakReport,
}

impl SoakRunner {
    /// Bootstraps the run: builds the initial (pre-drift) corpus, fits
    /// the initial model with a checkpoint on disk, and stands up the
    /// serving engine. Fault injection is *not* active during
    /// bootstrap — the plan arms when [`run`](SoakRunner::run) starts.
    pub fn new(cfg: SoakConfig) -> Result<Self, SoakError> {
        cfg.validate().map_err(SoakError::Config)?;
        std::fs::create_dir_all(&cfg.workdir)?;

        let schedule = DriftSchedule::porto_to_chengdu(cfg.drift_start, cfg.drift_ramp);
        let ingest = DriftingGenerator::new(schedule.clone(), cfg.seed);
        let serve = DriftingGenerator::new(schedule.clone(), cfg.seed ^ 0x5e7_5e7_5e7);
        let eval = DriftingGenerator::new(schedule, cfg.seed ^ 0x00ea_1000_0001);

        // Initial corpus at tick 0 (pre-drift), split into training
        // roles for the initial fit.
        let corpus = ingest.batch(0, cfg.window);
        let dataset = split_dataset(&corpus, cfg.refresh_seeds, cfg.refresh_validation);
        let train_cfg = cfg.train_config();
        let visible = dataset.training_visible();
        let ctx = ModelContext::prepare(&visible, &cfg.model, cfg.seed);
        let mut model = Traj2Hash::new(cfg.model.clone(), &ctx, cfg.seed);
        let data = TrainData::prepare(&dataset, cfg.measure, &train_cfg)?;
        train(&mut model, &data, &train_cfg)?;

        let engine_cfg = EngineConfig { rebuild_slack: 24, ..EngineConfig::default() };
        let shard_cfg = ShardConfig { shards: cfg.shards, fan_out_threads: 0 };
        let engine = ShardedEngine::build(model, corpus.clone(), engine_cfg, shard_cfg)?;
        let live: VecDeque<(u64, Trajectory)> =
            engine.ids().into_iter().zip(corpus).collect();

        let hr_trend = TrendWindow::new(cfg.baseline_evals, cfg.recent_evals);
        let lat_trends =
            (0..Strategy::ALL.len()).map(|_| TrendWindow::new(6, 3)).collect();
        let snapshot_path = cfg.workdir.join("engine.snap");
        let plan = Arc::new(FaultPlan::new(cfg.faults.clone()));
        let trained_epochs = cfg.initial_epochs;

        Ok(SoakRunner {
            cfg,
            engine,
            ingest,
            serve,
            eval,
            live,
            hr_trend,
            lat_trends,
            refresh: RefreshState::Idle,
            snapshot_due: false,
            pending_reason: None,
            last_refresh_tick: 0,
            trained_epochs,
            snapshot_path,
            plan,
            ops_health: None,
            report: SoakReport {
                ticks: 0,
                inserts: 0,
                removes: 0,
                queries: 0,
                evals: 0,
                drift_detections: 0,
                refreshes: 0,
                refresh_failures: 0,
                hot_swaps: 0,
                drills: 0,
                recoveries: 0,
                degraded_ticks: 0,
                latency_regressions: 0,
                snapshots: 0,
                faults_injected: 0,
                write_attempts: 0,
                write_retries: 0,
                final_stats: EngineStatsInit::zero(),
                final_health: TickHealth::Healthy,
                tick_log: Vec::new(),
            },
        })
    }

    /// The serving engine (for post-run parity checks).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// The run's working directory (checkpoint, engine snapshot, and
    /// the flight-recorder dump `flight.jsonl`).
    pub fn workdir(&self) -> &std::path::Path {
        &self.cfg.workdir
    }

    /// The live corpus in ascending-id order, as `(id, trajectory)`.
    pub fn live_corpus(&self) -> Vec<(u64, Trajectory)> {
        self.live.iter().cloned().collect()
    }

    /// Runs every tick with the fault plan installed and returns the
    /// report. In-loop failures degrade and recover; they never abort.
    ///
    /// For the duration of the run this also stands up the observability
    /// surface the config asks for: a flight recorder capturing
    /// tail-latency query traces (dumped to `workdir/flight.jsonl` on
    /// degradation, refresh failure, and run end) and the blocking ops
    /// HTTP server serving `/metrics`, `/healthz`, and `/traces`.
    pub fn run(&mut self) -> Result<SoakReport, SoakError> {
        let flight_installed = self.cfg.flight_capacity > 0;
        if flight_installed {
            traj_obs::flight::install(FlightConfig {
                capacity: self.cfg.flight_capacity,
                tail_threshold_seconds: self.cfg.flight_tail_threshold,
                dump_path: Some(self.cfg.workdir.join("flight.jsonl")),
            });
        }
        let mut ops = None;
        if self.cfg.ops_server {
            let health = OpsHealth::new();
            match OpsServer::start(self.cfg.ops_port, Arc::clone(&health)) {
                Ok(server) => {
                    traj_obs::event(
                        "soak.ops.started",
                        &[("port", u64::from(server.port()).into())],
                    );
                    self.ops_health = Some(health);
                    ops = Some(server);
                }
                Err(e) => {
                    // Serving soak ticks beats serving scrapes: log and
                    // run without the ops surface.
                    traj_obs::event(
                        "soak.ops.failed",
                        &[("error", e.to_string().into())],
                    );
                }
            }
        }

        let plan = Arc::clone(&self.plan);
        for tick in 1..=self.cfg.ticks {
            let p = Arc::clone(&plan);
            with_fault_plan(p, || self.run_tick(tick));
        }
        self.report.faults_injected = self.plan.injected();
        self.report.write_attempts = self.plan.attempts();
        self.report.final_stats = self.engine.stats();
        self.report.final_health = self
            .report
            .tick_log
            .last()
            .map(|r| r.health)
            .unwrap_or(TickHealth::Healthy);

        if flight_installed {
            // Always leave a dump behind: the tail exemplars of a clean
            // run are the baseline the next incident is compared to.
            traj_obs::flight::force_dump("soak.final");
            traj_obs::flight::uninstall();
        }
        if let Some(mut server) = ops {
            server.shutdown();
        }
        self.ops_health = None;

        self.report.check_invariants().map_err(SoakError::Config)?;
        Ok(self.report.clone())
    }

    fn run_tick(&mut self, tick: u64) {
        // 1. A refresh left over from a faulted tick retries first.
        if !matches!(self.refresh, RefreshState::Idle) {
            self.advance_refresh(tick);
        }

        // 2. Serve queries, round-robin over strategies, *before*
        // ingesting: a drill on the previous tick leaves the engine
        // degraded here, so these queries exercise the linear-scan
        // fallback. Degraded mode still answers — serving never stops.
        let queries = self.serve.batch(tick, self.cfg.queries_per_tick);
        let mut lat_sum = [0.0f64; 5];
        let mut lat_n = [0u32; 5];
        for (i, q) in queries.iter().enumerate() {
            // lint: allow(lossy-cast) — wrapping a round-robin tick into a strategy index; truncation is harmless
            let strategy = Strategy::ALL[(tick as usize + i) % Strategy::ALL.len()];
            if let Ok((_, info)) = self.engine.query_with_info(q, self.cfg.k, strategy) {
                self.report.queries += 1;
                lat_sum[strategy.index()] += info.seconds;
                lat_n[strategy.index()] += 1;
            }
        }
        for (i, trend) in self.lat_trends.iter_mut().enumerate() {
            if lat_n[i] == 0 {
                continue;
            }
            trend.push(lat_sum[i] / f64::from(lat_n[i]));
            if trend.warmed_up() && -trend.relative_drop() >= self.cfg.latency_rise_threshold {
                self.report.latency_regressions += 1;
                traj_obs::event(
                    "soak.latency.regressed",
                    &[
                        ("tick", tick.into()),
                        ("strategy", Strategy::ALL[i].name().into()),
                        ("relative_rise", (-trend.relative_drop()).into()),
                    ],
                );
            }
        }

        // 3. If the engine is degraded (drill or failed rebuild), try
        // to recover now that queries have exercised the scan path.
        if self.engine.stats().degraded && self.engine.recover() {
            self.report.recoveries += 1;
            traj_obs::event("soak.recovered", &[("tick", tick.into())]);
        }

        // 4. Ingest the drifting batch; slide the window.
        let batch = self.ingest.batch(tick, self.cfg.batch_per_tick);
        for t in batch {
            let id = self.engine.insert(t.clone());
            self.live.push_back((id, t));
            self.report.inserts += 1;
        }
        while self.live.len() > self.cfg.window {
            if let Some((old, _)) = self.live.pop_front() {
                // The id came from this engine, so removal only fails
                // if the mirror is out of sync — a bug worth surfacing.
                if self.engine.remove(old).is_ok() {
                    self.report.removes += 1;
                }
            }
        }

        // 5. Periodic drift evaluation; a confirmed drop triggers a
        // refresh immediately.
        let mut hr10 = None;
        if tick.is_multiple_of(self.cfg.eval_every) {
            let hr = self.eval_hr10(tick);
            self.hr_trend.push(hr);
            self.report.evals += 1;
            hr10 = Some(hr);
            traj_obs::event(
                "soak.eval",
                &[
                    ("tick", tick.into()),
                    ("hr10", hr.into()),
                    ("baseline", self.hr_trend.baseline_mean().unwrap_or(0.0).into()),
                    ("relative_drop", self.hr_trend.relative_drop().into()),
                ],
            );
            let cooled = tick.saturating_sub(self.last_refresh_tick) >= self.cfg.refresh_cooldown;
            if matches!(self.refresh, RefreshState::Idle)
                && cooled
                && self.hr_trend.dropped_by(self.cfg.drop_threshold)
            {
                self.report.drift_detections += 1;
                traj_obs::counter("soak.drift_detections", 1);
                traj_obs::event(
                    "soak.drift.detected",
                    &[
                        ("tick", tick.into()),
                        ("relative_drop", self.hr_trend.relative_drop().into()),
                    ],
                );
                self.refresh = RefreshState::NeedTrain;
                self.advance_refresh(tick);
            }
        }

        // 6. Durability heartbeat: periodically persist the serving
        // state through the fault plan. A write that fails even after
        // retries degrades the tick and is retried next tick.
        if self.cfg.snapshot_every > 0 && tick.is_multiple_of(self.cfg.snapshot_every) {
            self.snapshot_due = true;
        }
        if self.snapshot_due {
            match self.engine.save_snapshot_retry(&self.snapshot_path, &self.cfg.retry) {
                Ok(receipt) => {
                    self.snapshot_due = false;
                    self.report.snapshots += 1;
                    self.report.write_retries += receipt.attempts.saturating_sub(1) as u64;
                    traj_obs::counter("soak.snapshots", 1);
                }
                Err(e) => {
                    traj_obs::event(
                        "soak.snapshot.failed",
                        &[("tick", tick.into()), ("error", e.to_string().into())],
                    );
                }
            }
        }

        // 7. Scheduled degrade drill: drop the indexes at the end of
        // the tick; the next tick serves degraded and then recovers.
        let drilled = self.cfg.degrade_drills.contains(&tick);
        if drilled {
            self.engine.force_degrade();
            self.report.drills += 1;
            traj_obs::event("soak.drill.degrade", &[("tick", tick.into())]);
        }

        // 8. Resolve the tick's typed health state. A still-due
        // heartbeat at this point means its write failed this tick.
        let stats = self.engine.stats();
        let health = if stats.degraded {
            TickHealth::Degraded(if drilled {
                DegradeReason::ForcedIndexLoss
            } else {
                DegradeReason::IndexBuildFailed
            })
        } else if let Some(reason) = self.pending_reason {
            TickHealth::Degraded(reason)
        } else if self.snapshot_due {
            TickHealth::Degraded(DegradeReason::SnapshotWriteFailed)
        } else {
            TickHealth::Healthy
        };
        if let Some(h) = &self.ops_health {
            h.set(
                health.is_healthy(),
                match health {
                    TickHealth::Healthy => "healthy",
                    TickHealth::Degraded(r) => r.name(),
                },
            );
        }
        if !health.is_healthy() {
            self.report.degraded_ticks += 1;
            traj_obs::counter("soak.degraded_ticks", 1);
        }
        self.report.ticks += 1;
        traj_obs::counter("soak.ticks", 1);
        let record = TickRecord {
            tick,
            drift_t: self.ingest.schedule().t_at(tick),
            live: stats.live,
            generation: stats.generation,
            hr10,
            relative_drop: self.hr_trend.relative_drop(),
            health,
        };
        traj_obs::event(
            "soak.tick",
            &[
                ("tick", tick.into()),
                ("drift_t", record.drift_t.into()),
                ("live", record.live.into()),
                ("generation", record.generation.into()),
                ("healthy", health.is_healthy().into()),
                (
                    "reason",
                    match health {
                        TickHealth::Healthy => "none",
                        TickHealth::Degraded(r) => r.name(),
                    }
                    .into(),
                ),
            ],
        );
        self.report.tick_log.push(record);
    }

    /// Pushes an in-flight refresh as far as it will go this tick.
    /// Failures record a typed reason and leave the state machine
    /// where it stood so a later tick retries.
    fn advance_refresh(&mut self, tick: u64) {
        if let RefreshState::NeedTrain = self.refresh {
            match self.fine_tune(tick) {
                Ok(model) => {
                    self.refresh = RefreshState::NeedSwap(Box::new(model));
                    self.pending_reason = None;
                }
                Err(e) => {
                    self.pending_reason = Some(DegradeReason::RefreshTrainFailed);
                    self.report.refresh_failures += 1;
                    traj_obs::event(
                        "soak.refresh.failed",
                        &[
                            ("tick", tick.into()),
                            ("stage", "fine_tune".into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    traj_obs::flight::force_dump("soak.refresh.failed");
                    return;
                }
            }
        }
        if let RefreshState::NeedSwap(_) = self.refresh {
            let model = match std::mem::replace(&mut self.refresh, RefreshState::Idle) {
                RefreshState::NeedSwap(m) => m,
                _ => return,
            };
            match self.swap_in(tick, model) {
                Ok(()) => {
                    self.pending_reason = None;
                    self.last_refresh_tick = tick;
                    self.report.refreshes += 1;
                    self.report.hot_swaps += 1;
                    traj_obs::counter("soak.refreshes", 1);
                    // The serving model changed; the HR@10 detector's
                    // frozen baseline no longer describes it. Re-freeze
                    // on the refreshed model's own evaluations.
                    self.hr_trend =
                        TrendWindow::new(self.cfg.baseline_evals, self.cfg.recent_evals);
                }
                Err((model, reason)) => {
                    self.refresh = RefreshState::NeedSwap(model);
                    self.pending_reason = Some(reason);
                    self.report.refresh_failures += 1;
                }
            }
        }
    }

    /// Online fine-tune: resume the on-disk checkpoint on a dataset
    /// drawn from the recent live window, extending the epoch count.
    /// The model shape is frozen, so the checkpoint always fits.
    fn fine_tune(&mut self, tick: u64) -> Result<Traj2Hash, TrainError> {
        traj_obs::event("soak.refresh.start", &[("tick", tick.into())]);
        let recent: Vec<Trajectory> =
            self.live.iter().map(|(_, t)| t.clone()).collect();
        let dataset =
            split_dataset(&recent, self.cfg.refresh_seeds, self.cfg.refresh_validation);
        let mut cfg = self.cfg.train_config();
        cfg.epochs = self.trained_epochs + self.cfg.fine_tune_epochs;
        cfg.resume = true;
        let spec = self.engine.model().spec();
        let mut model =
            Traj2Hash::from_spec(&spec, &self.engine.model().params.clone_values());
        let data = TrainData::prepare(&dataset, self.cfg.measure, &cfg)?;
        train(&mut model, &data, &cfg)?;
        self.trained_epochs = cfg.epochs;
        Ok(model)
    }

    /// Re-encodes the live corpus under the fine-tuned model, persists
    /// the result as a durable snapshot (through the fault plan, with
    /// retries), loads it back, and hot-swaps it into serving. The
    /// previous generation serves until the very last step.
    fn swap_in(
        &mut self,
        tick: u64,
        model: Box<Traj2Hash>,
    ) -> Result<(), (Box<Traj2Hash>, DegradeReason)> {
        let replacement = match self.engine.refreshed(*model) {
            Ok(r) => r,
            Err(e) => {
                // refreshed() consumed the model; rebuild a replica
                // from the serving model so the retry path stays alive.
                traj_obs::event(
                    "soak.refresh.failed",
                    &[
                        ("tick", tick.into()),
                        ("stage", "re_encode".into()),
                        ("error", e.to_string().into()),
                    ],
                );
                traj_obs::flight::force_dump("soak.refresh.failed");
                let m = self.engine.model();
                let replica = Traj2Hash::from_spec(&m.spec(), &m.params.clone_values());
                return Err((Box::new(replica), DegradeReason::RefreshIoFailed));
            }
        };
        match replacement.save_snapshot_retry(&self.snapshot_path, &self.cfg.retry) {
            Ok(receipt) => {
                self.report.write_retries += receipt.attempts.saturating_sub(1) as u64;
            }
            Err(e) => {
                traj_obs::event(
                    "soak.refresh.failed",
                    &[
                        ("tick", tick.into()),
                        ("stage", "snapshot_write".into()),
                        ("error", e.to_string().into()),
                    ],
                );
                traj_obs::flight::force_dump("soak.refresh.failed");
                return Err((Box::new(replacement.into_model()), DegradeReason::RefreshIoFailed));
            }
        }
        let loaded = match ShardedEngine::load_snapshot(
            &self.snapshot_path,
            self.engine.shard_config().clone(),
        ) {
            Ok(l) => l,
            Err(e) => {
                traj_obs::event(
                    "soak.refresh.failed",
                    &[
                        ("tick", tick.into()),
                        ("stage", "snapshot_load".into()),
                        ("error", e.to_string().into()),
                    ],
                );
                traj_obs::flight::force_dump("soak.refresh.failed");
                return Err((Box::new(replacement.into_model()), DegradeReason::SnapshotLoadFailed));
            }
        };
        self.engine.hot_swap(loaded);
        traj_obs::event(
            "soak.refresh.completed",
            &[("tick", tick.into()), ("epochs", self.trained_epochs.into())],
        );
        Ok(())
    }

    /// Validation HR@10 of the serving model on the *current*
    /// distribution: fresh queries from the eval stream ranked against
    /// the most recent live trajectories, hash-ranking vs. the exact
    /// measure.
    fn eval_hr10(&self, tick: u64) -> f64 {
        let queries = self.eval.batch(tick, self.cfg.eval_queries);
        let db: Vec<&Trajectory> = self
            .live
            .iter()
            .rev()
            .take(self.cfg.eval_db)
            .map(|(_, t)| t)
            .collect();
        if db.len() <= 10 || queries.is_empty() {
            return f64::NAN;
        }
        let model = self.engine.model();
        let db_codes: Vec<Vec<i8>> = db.iter().map(|t| model.hash_signs(t)).collect();
        let mut hits = 0usize;
        for q in &queries {
            let qc = model.hash_signs(q);
            let truth = top10(db.len(), |i| self.cfg.measure.distance(q, db[i]));
            let approx = top10(db.len(), |i| hamming(&qc, &db_codes[i]) as f64);
            hits += approx.iter().filter(|i| truth.contains(i)).count();
        }
        hits as f64 / (10.0 * queries.len() as f64)
    }
}

/// Indices of the 10 smallest values of `dist(i)` over `0..n`, ties
/// broken by index — deterministic. Distances are evaluated once.
fn top10(n: usize, dist: impl Fn(usize) -> f64) -> Vec<usize> {
    let d: Vec<f64> = (0..n).map(dist).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]).then(a.cmp(&b)));
    order.truncate(10);
    order
}

/// Hamming distance between two sign vectors.
fn hamming(a: &[i8], b: &[i8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Splits a flat trajectory list into the training roles `TrainData`
/// expects. Query/database splits stay empty — the engine is the
/// database during a soak run.
fn split_dataset(trajs: &[Trajectory], seeds: usize, validation: usize) -> Dataset {
    let seeds_end = seeds.min(trajs.len());
    let val_end = (seeds_end + validation).min(trajs.len());
    Dataset {
        seeds: trajs[..seeds_end].to_vec(),
        validation: trajs[seeds_end..val_end].to_vec(),
        corpus: trajs[val_end..].to_vec(),
        query: Vec::new(),
        database: Vec::new(),
    }
}

/// `EngineStats` has no `Default`; the report needs a placeholder
/// until the run finishes.
struct EngineStatsInit;

impl EngineStatsInit {
    fn zero() -> traj_engine::EngineStats {
        traj_engine::EngineStats {
            live: 0,
            indexed: 0,
            delta: 0,
            dead: 0,
            generation: 0,
            degraded: false,
        }
    }
}
