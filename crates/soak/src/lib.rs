//! # traj-soak — always-on streaming soak for the Traj2Hash engine
//!
//! A long-lived, deterministic, fault-injected serving loop over
//! [`traj_engine::Traj2HashEngine`]. Each tick:
//!
//! 1. ingests a batch from a drifting city stream
//!    ([`traj_data::DriftingGenerator`], porto → chengdu),
//! 2. serves top-k queries round-robin across every strategy
//!    (degraded mode still answers via linear scan),
//! 3. periodically re-measures validation HR@10 of the serving model
//!    on the *current* distribution and feeds a frozen-baseline
//!    detector ([`traj_obs::TrendWindow`]),
//! 4. on detected drift, fine-tunes from the on-disk checkpoint,
//!    re-encodes the live corpus, persists a `T2HSNAP1` snapshot
//!    through the fault-injection layer, loads it back, and hot-swaps
//!    it into serving, and
//! 5. runs scheduled degrade → recover drills.
//!
//! Every tick ends either healthy or in a typed, telemetry-visible
//! degraded state ([`TickHealth`]); injected write faults
//! ([`traj2hash::FaultPlan`]) surface as degraded ticks that later
//! ticks retry, never as aborts. The JSONL telemetry stream (`OBS_JSONL`)
//! is the run's artifact. See `DESIGN.md` §12.

#![warn(missing_docs)]

mod config;
mod report;
mod runner;

pub use config::SoakConfig;
pub use report::{DegradeReason, SoakReport, TickHealth, TickRecord};
pub use runner::{SoakError, SoakRunner};
