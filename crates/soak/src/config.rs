//! Soak-run configuration.

use std::path::PathBuf;

use traj2hash::{FaultRule, FaultWhen, ModelConfig, RetryPolicy, TrainConfig, WriteFault};
use traj_dist::Measure;

/// Everything a [`SoakRunner`](crate::SoakRunner) needs to reproduce a
/// run bit-for-bit: stream shape, drift schedule, detector tuning,
/// refresh policy, fault plan, and drill schedule. Two runs with the
/// same config (including the same `workdir` starting empty) produce
/// the same tick log.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master RNG seed; every stream (ingest, queries, eval) derives
    /// from it deterministically.
    pub seed: u64,
    /// Ticks to run.
    pub ticks: u64,
    /// Trajectories ingested per tick.
    pub batch_per_tick: usize,
    /// Sliding-window capacity of the live corpus; the oldest
    /// trajectories are tombstoned once the window overflows.
    pub window: usize,
    /// Serving queries issued per tick (round-robin over strategies).
    pub queries_per_tick: usize,
    /// Top-k for serving queries.
    pub k: usize,
    /// Ground-truth measure for drift evaluation.
    pub measure: Measure,
    /// Tick at which the city distribution starts drifting.
    pub drift_start: u64,
    /// Ticks over which the drift ramps from the source city to the
    /// target city (0 = step change at `drift_start`).
    pub drift_ramp: u64,
    /// Evaluate validation HR@10 every this many ticks.
    pub eval_every: u64,
    /// Fresh queries drawn per evaluation.
    pub eval_queries: usize,
    /// Most-recent live trajectories ranked per evaluation (must
    /// exceed 10 for HR@10 to mean anything).
    pub eval_db: usize,
    /// Evaluations frozen as the HR@10 detector baseline.
    pub baseline_evals: usize,
    /// Sliding detection window of the HR@10 detector, in evaluations.
    pub recent_evals: usize,
    /// Relative HR@10 drop (vs. the frozen baseline) that counts as
    /// detected drift and triggers a model refresh.
    pub drop_threshold: f64,
    /// Relative per-strategy latency *rise* that is flagged (telemetry
    /// only — latency regressions are logged, not acted on).
    pub latency_rise_threshold: f64,
    /// Minimum ticks between two refresh triggers.
    pub refresh_cooldown: u64,
    /// Epochs of the initial model fit.
    pub initial_epochs: usize,
    /// Additional epochs per online fine-tune (resumed from the last
    /// checkpoint).
    pub fine_tune_epochs: usize,
    /// Seed trajectories of each fine-tune dataset (supervision
    /// distance matrix is quadratic in this).
    pub refresh_seeds: usize,
    /// Validation trajectories of each fine-tune dataset.
    pub refresh_validation: usize,
    /// Write a durability snapshot of the serving engine every this
    /// many ticks (0 disables the heartbeat). These writes go through
    /// the fault plan like every other durable write.
    pub snapshot_every: u64,
    /// Shards of the serving engine's corpus partition (the soak loop
    /// serves through the sharded engine so the refresh/hot-swap
    /// machinery is proven per-shard).
    pub shards: usize,
    /// Ticks at which the degrade drill fires: the engine is forced
    /// into index-less degraded mode and must recover on its own.
    pub degrade_drills: Vec<u64>,
    /// Fault-injection rules installed around the whole tick loop (all
    /// checkpoint and snapshot writes pass through them).
    pub faults: Vec<FaultRule>,
    /// Retry/backoff policy for snapshot writes.
    pub retry: RetryPolicy,
    /// Start the blocking ops HTTP server (`/metrics`, `/healthz`,
    /// `/traces`) for the duration of the run.
    pub ops_server: bool,
    /// TCP port for the ops server (0 = ephemeral; the bound port is
    /// printed at startup).
    pub ops_port: u16,
    /// Flight-recorder ring capacity for tail-latency query traces
    /// (0 disables the flight recorder entirely).
    pub flight_capacity: usize,
    /// Queries at least this slow (seconds) are retained as flight
    /// exemplars; 0.0 captures everything the ring can hold.
    pub flight_tail_threshold: f64,
    /// Directory holding the model checkpoint and engine snapshot.
    pub workdir: PathBuf,
    /// Model architecture (shape is frozen for the whole run so every
    /// fine-tune can resume the same checkpoint).
    pub model: ModelConfig,
}

impl SoakConfig {
    /// The bounded deterministic demo run used by `./check.sh soak`
    /// and the end-to-end test: ~60 ticks, porto→chengdu drift, write
    /// faults injected, two degrade drills.
    pub fn demo(workdir: PathBuf) -> Self {
        SoakConfig {
            seed: 77,
            ticks: 60,
            batch_per_tick: 6,
            window: 160,
            queries_per_tick: 4,
            k: 10,
            measure: Measure::Hausdorff,
            drift_start: 12,
            drift_ramp: 20,
            eval_every: 2,
            eval_queries: 8,
            eval_db: 40,
            baseline_evals: 4,
            recent_evals: 3,
            drop_threshold: 0.1,
            latency_rise_threshold: 2.0,
            refresh_cooldown: 8,
            initial_epochs: 8,
            fine_tune_epochs: 2,
            refresh_seeds: 20,
            refresh_validation: 16,
            snapshot_every: 9,
            shards: 3,
            degrade_drills: vec![18, 44],
            faults: vec![
                FaultRule { when: FaultWhen::Nth(2), fault: WriteFault::TornWrite { keep_fraction: 0.5 } },
                FaultRule { when: FaultWhen::EveryNth(5), fault: WriteFault::FailWrite },
                FaultRule { when: FaultWhen::Nth(7), fault: WriteFault::SlowWrite { millis: 2 } },
            ],
            retry: RetryPolicy { max_retries: 3, base_backoff_ms: 1, max_backoff_ms: 4 },
            ops_server: true,
            ops_port: 0,
            flight_capacity: 64,
            flight_tail_threshold: 0.0,
            workdir,
            model: ModelConfig::small(),
        }
    }

    /// The base training configuration shared by the initial fit and
    /// every fine-tune (epoch count and `resume` vary per call).
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.initial_epochs,
            triplets_per_epoch: 64,
            triplet_batch: 32,
            validate: false,
            seed: self.seed,
            num_threads: 1,
            checkpoint_every: 1,
            checkpoint_path: Some(self.workdir.join("model.ckpt")),
            ..TrainConfig::default()
        }
    }

    /// Rejects configurations that cannot produce a meaningful run.
    pub fn validate(&self) -> Result<(), String> {
        if self.ticks == 0 {
            return Err("ticks must be > 0".into());
        }
        if self.batch_per_tick == 0 {
            return Err("batch_per_tick must be > 0".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be > 0".into());
        }
        if self.eval_db <= 10 {
            return Err("eval_db must exceed 10 (HR@10 needs a ranking pool)".into());
        }
        if self.refresh_seeds < 2 {
            return Err("refresh_seeds must be >= 2 (supervision needs pairs)".into());
        }
        let bootstrap = self.refresh_seeds + self.refresh_validation + 10;
        if self.window < bootstrap.max(self.eval_db) {
            return Err(format!(
                "window ({}) too small: need >= {} for training splits and >= {} for eval",
                self.window,
                bootstrap,
                self.eval_db
            ));
        }
        if !(self.drop_threshold.is_finite() && self.drop_threshold > 0.0) {
            return Err("drop_threshold must be finite and > 0".into());
        }
        if self.shards == 0 {
            return Err("shards must be >= 1".into());
        }
        if !(self.flight_tail_threshold.is_finite() && self.flight_tail_threshold >= 0.0) {
            return Err("flight_tail_threshold must be finite and >= 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SoakConfig {
        SoakConfig::demo(std::env::temp_dir().join("soak-cfg-test"))
    }

    #[test]
    fn demo_config_validates() {
        assert_eq!(demo().validate(), Ok(()));
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut c = demo();
        c.ticks = 0;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.eval_db = 10;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.window = 20;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.drop_threshold = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.refresh_seeds = 1;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.shards = 0;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.flight_tail_threshold = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = demo();
        c.flight_tail_threshold = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn train_config_checkpoints_into_the_workdir() {
        let cfg = demo();
        let t = cfg.train_config();
        assert_eq!(t.epochs, cfg.initial_epochs);
        assert_eq!(t.checkpoint_path, Some(cfg.workdir.join("model.ckpt")));
        assert_eq!(t.checkpoint_every, 1);
        assert_eq!(t.num_threads, 1, "the soak loop is single-threaded by design");
    }
}
