//! `traj-soak` — run a bounded, deterministic, fault-injected soak of
//! the serving engine and self-validate its JSONL telemetry.
//!
//! ```text
//! OBS_JSONL=soak.jsonl traj-soak --ticks 60 --seed 77 --workdir /tmp/traj-soak
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use traj_soak::{SoakConfig, SoakRunner};

fn usage() -> ! {
    eprintln!(
        "usage: traj-soak [--ticks N] [--seed N] [--workdir DIR] [--no-faults]\n\
         \n\
         Runs the deterministic demo soak (porto→chengdu drift, write\n\
         faults, degrade drills). Set OBS_JSONL=<path> to export the\n\
         telemetry stream; the run validates it before exiting.\n\
         \n\
         Ops surface:\n\
           --ops-port N   bind the ops HTTP server (/metrics, /healthz,\n\
                          /traces) to 127.0.0.1:N (default 0 = ephemeral)\n\
           --no-ops       run without the ops server"
    );
    std::process::exit(2);
}

fn parse_args(cfg: &mut SoakConfig) {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ticks" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.ticks = v,
                None => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => usage(),
            },
            "--workdir" => match args.next() {
                Some(v) => cfg.workdir = PathBuf::from(v),
                None => usage(),
            },
            "--no-faults" => cfg.faults.clear(),
            "--ops-port" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.ops_port = v,
                None => usage(),
            },
            "--no-ops" => cfg.ops_server = false,
            _ => usage(),
        }
    }
}

fn main() -> ExitCode {
    let obs = match traj_obs::init_from_env() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("traj-soak: cannot open OBS_JSONL sink: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workdir = std::env::temp_dir().join(format!("traj-soak-{}", std::process::id()));
    let mut cfg = SoakConfig::demo(workdir);
    parse_args(&mut cfg);

    let mut runner = match SoakRunner::new(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("traj-soak: bootstrap failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match runner.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("traj-soak: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    traj_obs::flush();
    print!("{}", report.summary());
    print!("{}", runner.engine().telemetry().summary());

    let mut failed = false;
    if !report.final_health.is_healthy() {
        eprintln!("traj-soak: FAIL — run ended degraded");
        failed = true;
    }
    if report.final_stats.degraded {
        eprintln!("traj-soak: FAIL — engine ended with degraded strategies");
        failed = true;
    }

    // Self-validate the flight-recorder dump the run left behind:
    // unique query ids, monotone step clocks, per-shard publish seqs
    // that match the published generations.
    let flight_path = runner.workdir().join("flight.jsonl");
    if flight_path.exists() {
        match std::fs::read_to_string(&flight_path) {
            Ok(text) => match traj_obs::flight::validate_flight_dump(&text) {
                Ok(n) => println!(
                    "flight: {n} traces validated ({})",
                    flight_path.to_string_lossy()
                ),
                Err(e) => {
                    eprintln!("traj-soak: FAIL — bad flight dump: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("traj-soak: FAIL — cannot read flight dump: {e}");
                failed = true;
            }
        }
    }

    // Self-validate the JSONL artifact when one was exported.
    if let Some(path) = std::env::var_os("OBS_JSONL") {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut n = 0usize;
                for (i, line) in text.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Err(e) = traj_obs::validate_record(line) {
                        eprintln!("traj-soak: FAIL — bad JSONL record on line {}: {e}", i + 1);
                        failed = true;
                        break;
                    }
                    n += 1;
                }
                println!("jsonl: {n} records validated ({})", path.to_string_lossy());
            }
            Err(e) => {
                eprintln!("traj-soak: FAIL — cannot re-read OBS_JSONL: {e}");
                failed = true;
            }
        }
    }
    drop(obs);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
