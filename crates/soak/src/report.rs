//! Typed per-tick health and the end-of-run report.

use std::fmt;

use traj_engine::EngineStats;

/// Why a tick ended degraded. Every degraded tick carries exactly one
/// of these — there is no untyped failure state in the soak loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The degrade drill forced the engine into index-less mode.
    ForcedIndexLoss,
    /// An index (re)build failed and the engine fell back to linear
    /// scans.
    IndexBuildFailed,
    /// An online fine-tune failed (typically an injected checkpoint
    /// write fault); the refresh is retried on a later tick.
    RefreshTrainFailed,
    /// The refreshed snapshot could not be written durably even after
    /// retries; the fine-tuned model is held and the swap is retried.
    RefreshIoFailed,
    /// The periodic durability snapshot could not be written even
    /// after retries; retried next tick.
    SnapshotWriteFailed,
    /// The freshly written snapshot failed to load back; the previous
    /// generation keeps serving.
    SnapshotLoadFailed,
}

impl DegradeReason {
    /// Stable taxonomy label used in telemetry events.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeReason::ForcedIndexLoss => "forced_index_loss",
            DegradeReason::IndexBuildFailed => "index_build_failed",
            DegradeReason::RefreshTrainFailed => "refresh_train_failed",
            DegradeReason::RefreshIoFailed => "refresh_io_failed",
            DegradeReason::SnapshotWriteFailed => "snapshot_write_failed",
            DegradeReason::SnapshotLoadFailed => "snapshot_load_failed",
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a tick ended: serving healthily, or degraded for a typed
/// reason (still serving — degraded mode answers via linear scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickHealth {
    /// Indexes live, no refresh pending.
    Healthy,
    /// Degraded for the given reason.
    Degraded(DegradeReason),
}

impl TickHealth {
    /// True for [`TickHealth::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, TickHealth::Healthy)
    }
}

/// One row of the tick log.
#[derive(Debug, Clone, Copy)]
pub struct TickRecord {
    /// Tick index (1-based).
    pub tick: u64,
    /// Drift interpolation parameter at this tick (0 = source city,
    /// 1 = fully drifted).
    pub drift_t: f64,
    /// Live trajectories after ingest/eviction.
    pub live: usize,
    /// Engine generation (bumps on rebuild and on hot swap).
    pub generation: u64,
    /// Validation HR@10, when this tick evaluated.
    pub hr10: Option<f64>,
    /// HR@10 detector drop at this tick (0 until warmed up).
    pub relative_drop: f64,
    /// How the tick ended.
    pub health: TickHealth,
}

/// Everything a finished soak run reports. The invariants the
/// acceptance test asserts (refreshes happened, drills recovered,
/// clean final state) are all readable from here.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Ticks completed.
    pub ticks: u64,
    /// Trajectories ingested.
    pub inserts: u64,
    /// Trajectories evicted (tombstoned) by the sliding window.
    pub removes: u64,
    /// Serving queries answered.
    pub queries: u64,
    /// HR@10 evaluations performed.
    pub evals: u64,
    /// Drift detections (HR@10 drop beyond threshold).
    pub drift_detections: u64,
    /// Completed refreshes: fine-tune, durable snapshot, hot swap.
    pub refreshes: u64,
    /// Refresh steps that failed and were retried on a later tick.
    pub refresh_failures: u64,
    /// Hot swaps performed by the engine (should equal `refreshes`).
    pub hot_swaps: u64,
    /// Degrade drills fired.
    pub drills: u64,
    /// Degraded → healthy recoveries performed by the engine.
    pub recoveries: u64,
    /// Ticks that ended degraded (each with a typed reason).
    pub degraded_ticks: u64,
    /// Latency regressions flagged (telemetry only).
    pub latency_regressions: u64,
    /// Periodic durability snapshots written (heartbeats, not
    /// counting refresh snapshots).
    pub snapshots: u64,
    /// Write faults the plan injected.
    pub faults_injected: u64,
    /// Durable write attempts made while the plan was installed.
    pub write_attempts: u64,
    /// Snapshot write retries that were needed (beyond first attempts).
    pub write_retries: u64,
    /// Engine statistics at the end of the run.
    pub final_stats: EngineStats,
    /// Health of the final tick.
    pub final_health: TickHealth,
    /// The full tick log.
    pub tick_log: Vec<TickRecord>,
}

impl SoakReport {
    /// Structural self-checks: the tick log is complete and internally
    /// consistent with the aggregate counters. Returns the first
    /// violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.tick_log.len() as u64 != self.ticks {
            return Err(format!(
                "tick log has {} rows for {} ticks",
                self.tick_log.len(),
                self.ticks
            ));
        }
        let degraded = self.tick_log.iter().filter(|r| !r.health.is_healthy()).count() as u64;
        if degraded != self.degraded_ticks {
            return Err(format!(
                "degraded_ticks={} but the log holds {} degraded rows",
                self.degraded_ticks, degraded
            ));
        }
        if let Some(last) = self.tick_log.last() {
            if last.health != self.final_health {
                return Err("final_health disagrees with the last log row".into());
            }
        }
        if self.final_health.is_healthy() && self.final_stats.degraded {
            return Err("final tick healthy but engine stats say degraded".into());
        }
        if self.refreshes != self.hot_swaps {
            return Err(format!(
                "refreshes={} but hot_swaps={}",
                self.refreshes, self.hot_swaps
            ));
        }
        if self.evals < self.drift_detections {
            return Err("more drift detections than evaluations".into());
        }
        Ok(())
    }

    /// Compact human-readable run summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("== soak report ==\n");
        let _ = writeln!(
            out,
            "  ticks={} inserts={} removes={} queries={} evals={}",
            self.ticks, self.inserts, self.removes, self.queries, self.evals
        );
        let _ = writeln!(
            out,
            "  drift_detections={} refreshes={} refresh_failures={} hot_swaps={}",
            self.drift_detections, self.refreshes, self.refresh_failures, self.hot_swaps
        );
        let _ = writeln!(
            out,
            "  drills={} recoveries={} degraded_ticks={} latency_regressions={}",
            self.drills, self.recoveries, self.degraded_ticks, self.latency_regressions
        );
        let _ = writeln!(
            out,
            "  snapshots={} faults_injected={} write_attempts={} write_retries={}",
            self.snapshots, self.faults_injected, self.write_attempts, self.write_retries
        );
        let _ = writeln!(
            out,
            "  final: health={} live={} generation={} degraded={}",
            match self.final_health {
                TickHealth::Healthy => "healthy".to_string(),
                TickHealth::Degraded(r) => format!("degraded({r})"),
            },
            self.final_stats.live,
            self.final_stats.generation,
            self.final_stats.degraded
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> EngineStats {
        EngineStats { live: 1, indexed: 1, delta: 0, dead: 0, generation: 1, degraded: false }
    }

    fn healthy_report(ticks: u64) -> SoakReport {
        SoakReport {
            ticks,
            inserts: 0,
            removes: 0,
            queries: 0,
            evals: ticks,
            drift_detections: 0,
            refreshes: 0,
            refresh_failures: 0,
            hot_swaps: 0,
            drills: 0,
            recoveries: 0,
            degraded_ticks: 0,
            latency_regressions: 0,
            snapshots: 0,
            faults_injected: 0,
            write_attempts: 0,
            write_retries: 0,
            final_stats: stats(),
            final_health: TickHealth::Healthy,
            tick_log: (1..=ticks)
                .map(|t| TickRecord {
                    tick: t,
                    drift_t: 0.0,
                    live: 1,
                    generation: 1,
                    hr10: None,
                    relative_drop: 0.0,
                    health: TickHealth::Healthy,
                })
                .collect(),
        }
    }

    #[test]
    fn consistent_report_passes_invariants() {
        assert_eq!(healthy_report(3).check_invariants(), Ok(()));
    }

    #[test]
    fn truncated_tick_log_is_caught() {
        let mut r = healthy_report(3);
        r.tick_log.pop();
        assert!(r.check_invariants().is_err());
    }

    #[test]
    fn miscounted_degraded_ticks_are_caught() {
        let mut r = healthy_report(3);
        r.tick_log[1].health = TickHealth::Degraded(DegradeReason::ForcedIndexLoss);
        assert!(r.check_invariants().is_err(), "degraded row without the counter");
        r.degraded_ticks = 1;
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn refresh_hot_swap_mismatch_is_caught() {
        let mut r = healthy_report(2);
        r.refreshes = 1;
        assert!(r.check_invariants().is_err());
        r.hot_swaps = 1;
        assert_eq!(r.check_invariants(), Ok(()));
    }

    #[test]
    fn degraded_end_state_must_match_stats() {
        let mut r = healthy_report(2);
        r.final_stats.degraded = true;
        assert!(r.check_invariants().is_err());
    }

    #[test]
    fn reason_names_are_stable() {
        for (reason, name) in [
            (DegradeReason::ForcedIndexLoss, "forced_index_loss"),
            (DegradeReason::IndexBuildFailed, "index_build_failed"),
            (DegradeReason::RefreshTrainFailed, "refresh_train_failed"),
            (DegradeReason::RefreshIoFailed, "refresh_io_failed"),
            (DegradeReason::SnapshotWriteFailed, "snapshot_write_failed"),
            (DegradeReason::SnapshotLoadFailed, "snapshot_load_failed"),
        ] {
            assert_eq!(reason.name(), name);
            assert_eq!(reason.to_string(), name);
        }
    }
}
