//! DBSCAN clustering in Hamming space.
//!
//! The paper's first motivating application is trajectory clustering
//! (its reference [1]); with Traj2Hash codes, density clustering becomes
//! cheap because the ε-neighbourhood query is a Hamming range query,
//! answered exactly by [`MultiIndexHashing::within_radius`] without
//! scanning the database.

use crate::code::BinaryCode;
use crate::mih::MultiIndexHashing;

/// Cluster assignment of one code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Noise: fewer than `min_points` codes in the ε-neighbourhood and
    /// not density-reachable from any core point.
    Noise,
    /// Member of the cluster with this id.
    Cluster(usize),
}

/// Result of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Per-code assignment, parallel to the input.
    pub assignments: Vec<Assignment>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl Clustering {
    /// Members of each cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (i, a) in self.assignments.iter().enumerate() {
            if let Assignment::Cluster(c) = a {
                out[*c].push(i);
            }
        }
        out
    }

    /// Number of noise codes.
    pub fn noise_count(&self) -> usize {
        self.assignments.iter().filter(|a| **a == Assignment::Noise).count()
    }
}

/// DBSCAN over binary codes with Hamming distance: `eps` is the
/// neighbourhood radius in bits, `min_points` the core-point density
/// threshold (including the point itself).
///
/// Exact and deterministic; neighbourhood queries run through a
/// multi-index hash with `tables` substring tables.
pub fn dbscan_hamming(
    codes: &[BinaryCode],
    eps: u32,
    min_points: usize,
    tables: usize,
) -> Clustering {
    let n = codes.len();
    if n == 0 {
        return Clustering { assignments: Vec::new(), num_clusters: 0 };
    }
    let index = MultiIndexHashing::build(codes.to_vec(), tables);
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut label = vec![UNVISITED; n];
    let mut num_clusters = 0usize;
    for start in 0..n {
        if label[start] != UNVISITED {
            continue;
        }
        let neighbours: Vec<usize> =
            index
            .within_radius(&codes[start], eps)
            .expect("queries are the indexed codes, widths always match")
            .into_iter()
            .map(|h| h.index)
            .collect();
        if neighbours.len() < min_points {
            label[start] = NOISE;
            continue;
        }
        let cluster = num_clusters;
        num_clusters += 1;
        label[start] = cluster;
        // expand: classic seed-set growth
        let mut queue: Vec<usize> = neighbours;
        let mut qi = 0;
        while qi < queue.len() {
            let p = queue[qi];
            qi += 1;
            if label[p] == NOISE {
                label[p] = cluster; // border point
            }
            if label[p] != UNVISITED {
                continue;
            }
            label[p] = cluster;
            let p_neighbours: Vec<usize> =
                index
                .within_radius(&codes[p], eps)
                .expect("queries are the indexed codes, widths always match")
                .into_iter()
                .map(|h| h.index)
                .collect();
            if p_neighbours.len() >= min_points {
                queue.extend(p_neighbours);
            }
        }
    }
    let assignments = label
        .into_iter()
        .map(|l| {
            if l == NOISE || l == UNVISITED {
                Assignment::Noise
            } else {
                Assignment::Cluster(l)
            }
        })
        .collect();
    Clustering { assignments, num_clusters }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(bits: &[i8]) -> BinaryCode {
        BinaryCode::from_signs(bits)
    }

    /// Two tight groups of 16-bit codes plus one outlier.
    fn two_groups() -> Vec<BinaryCode> {
        let a = vec![1i8; 16];
        let mut b = vec![-1i8; 16];
        b[0] = 1;
        let mut out = Vec::new();
        for flip in 0..4 {
            let mut s = a.clone();
            s[flip] = -1;
            out.push(code(&s));
        }
        for flip in 4..8 {
            let mut s = b.clone();
            s[flip] = 1;
            out.push(code(&s));
        }
        // outlier roughly between the groups
        let mut o = vec![1i8; 16];
        o[..8].fill(-1);
        out.push(code(&o));
        out
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let codes = two_groups();
        let c = dbscan_hamming(&codes, 3, 3, 2);
        assert_eq!(c.num_clusters, 2, "assignments: {:?}", c.assignments);
        let clusters = c.clusters();
        let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!(c.noise_count(), 1);
        // group members share a cluster
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[4], c.assignments[7]);
        assert_ne!(c.assignments[0], c.assignments[4]);
    }

    #[test]
    fn everything_noise_when_radius_too_small() {
        let codes = two_groups();
        let c = dbscan_hamming(&codes, 0, 2, 2);
        assert_eq!(c.num_clusters, 0);
        assert_eq!(c.noise_count(), codes.len());
    }

    #[test]
    fn one_cluster_when_radius_huge() {
        let codes = two_groups();
        let c = dbscan_hamming(&codes, 16, 2, 2);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn deterministic_and_total() {
        let codes = two_groups();
        let a = dbscan_hamming(&codes, 3, 3, 2);
        let b = dbscan_hamming(&codes, 3, 3, 2);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.assignments.len(), codes.len());
    }

    #[test]
    fn empty_input() {
        let c = dbscan_hamming(&[], 2, 2, 2);
        assert_eq!(c.num_clusters, 0);
        assert!(c.assignments.is_empty());
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let codes = two_groups();
        let index = MultiIndexHashing::build(codes.clone(), 2);
        for (qi, q) in codes.iter().enumerate() {
            for radius in [0u32, 2, 5, 16] {
                let via_index: Vec<usize> =
                    index.within_radius(q, radius).unwrap().into_iter().map(|h| h.index).collect();
                let mut via_scan: Vec<usize> = codes
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.hamming(q) <= radius)
                    .map(|(i, _)| i)
                    .collect();
                via_scan.sort_unstable();
                let mut sorted = via_index.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, via_scan, "query {qi} radius {radius}");
            }
        }
    }
}
