//! Flat packed-code storage for memory-bandwidth Hamming scans.
//!
//! [`BinaryCode`] keeps each code in its own heap allocation, which is
//! the right shape for hash-table keys but the wrong one for the
//! brute-force scan path: a scan over `Vec<BinaryCode>` chases one
//! pointer per candidate. [`PackedCodes`] lays every code out
//! back-to-back in a single `u64` buffer so the scan is a straight walk
//! over contiguous words, and [`PackedCodes::scan_into`] processes four
//! codes per iteration with four independent popcount accumulators —
//! enough instruction-level parallelism for the XOR+popcount chain to
//! saturate the load ports instead of serializing on one accumulator.
//!
//! Distances are exact `u32` Hamming distances, bit-identical to
//! [`BinaryCode::hamming`]; only the memory layout and the loop shape
//! change.

use crate::code::BinaryCode;
use crate::error::SearchError;

/// Hamming distance between two equal-length word slices, accumulated
/// in four independent lanes over word chunks of four. For the short
/// codes the paper uses (1–2 words at 64–128 bits) this degenerates to
/// the plain loop; for wider codes the four accumulators keep the
/// popcount chain from serializing.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "word count mismatch");
    let mut acc = [0u32; 4];
    let n4 = a.len() & !3;
    let mut w = 0;
    while w < n4 {
        acc[0] += (a[w] ^ b[w]).count_ones();
        acc[1] += (a[w + 1] ^ b[w + 1]).count_ones();
        acc[2] += (a[w + 2] ^ b[w + 2]).count_ones();
        acc[3] += (a[w + 3] ^ b[w + 3]).count_ones();
        w += 4;
    }
    while w < a.len() {
        acc[0] += (a[w] ^ b[w]).count_ones();
        w += 1;
    }
    acc[0] + acc[1] + acc[2] + acc[3]
}

/// A corpus of equal-width binary codes packed into one contiguous
/// `u64` buffer, `stride` words per code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    words: Vec<u64>,
    stride: usize,
    bits: usize,
    n: usize,
}

impl PackedCodes {
    /// Packs `codes` into the flat layout. Mixed widths are rejected —
    /// a strided scan over those would compare garbage words.
    pub fn build(codes: &[BinaryCode]) -> Result<Self, SearchError> {
        let bits = codes.first().map(|c| c.len()).unwrap_or(0);
        let stride = bits.div_ceil(64);
        let mut words = Vec::with_capacity(stride * codes.len());
        for (i, c) in codes.iter().enumerate() {
            if c.len() != bits {
                return Err(SearchError::InconsistentCodes {
                    position: i,
                    expected: bits,
                    got: c.len(),
                });
            }
            words.extend_from_slice(c.words());
        }
        Ok(PackedCodes { words, stride, bits, n: codes.len() })
    }

    /// Number of packed codes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no code is packed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Width of every packed code, in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Hamming distance from code `i` to `q`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the widths differ.
    #[inline]
    pub fn distance(&self, i: usize, q: &BinaryCode) -> u32 {
        assert!(i < self.n, "code index {i} out of range {}", self.n);
        assert_eq!(self.bits, q.len(), "code length mismatch");
        hamming_words(&self.words[i * self.stride..(i + 1) * self.stride], q.words())
    }

    /// Scans every packed code against `q`, invoking `out(index,
    /// distance)` in ascending index order. Four codes are processed
    /// per iteration, each with its own accumulator; the remainder
    /// falls back to [`hamming_words`]. Distances are bit-identical to
    /// a [`BinaryCode::hamming`] loop.
    ///
    /// # Panics
    /// Panics if `q`'s width differs from the packed width (an empty
    /// corpus accepts any width — there is nothing to compare).
    pub fn scan_into(&self, q: &BinaryCode, mut out: impl FnMut(usize, u32)) {
        if self.n == 0 {
            return;
        }
        assert_eq!(self.bits, q.len(), "code length mismatch");
        let qw = q.words();
        let s = self.stride;
        if s == 1 {
            // One word per code — the paper's default 64-bit hashes.
            // `chunks_exact` gives the compiler a bounds-check-free
            // 4-wide body; each lane's popcount chain is independent.
            let qword = qw[0];
            let mut i = 0;
            let mut quads = self.words.chunks_exact(4);
            for c in &mut quads {
                out(i, (c[0] ^ qword).count_ones());
                out(i + 1, (c[1] ^ qword).count_ones());
                out(i + 2, (c[2] ^ qword).count_ones());
                out(i + 3, (c[3] ^ qword).count_ones());
                i += 4;
            }
            for &w in quads.remainder() {
                out(i, (w ^ qword).count_ones());
                i += 1;
            }
            return;
        }
        let n4 = self.n & !3;
        let mut i = 0;
        while i < n4 {
            let base = i * s;
            let mut acc = [0u32; 4];
            for (w, &qword) in qw.iter().enumerate() {
                acc[0] += (self.words[base + w] ^ qword).count_ones();
                acc[1] += (self.words[base + s + w] ^ qword).count_ones();
                acc[2] += (self.words[base + 2 * s + w] ^ qword).count_ones();
                acc[3] += (self.words[base + 3 * s + w] ^ qword).count_ones();
            }
            out(i, acc[0]);
            out(i + 1, acc[1]);
            out(i + 2, acc[2]);
            out(i + 3, acc[3]);
            i += 4;
        }
        while i < self.n {
            out(i, hamming_words(&self.words[i * s..(i + 1) * s], qw));
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(n: usize, bits: usize) -> Vec<BinaryCode> {
        (0..n)
            .map(|i| {
                let signs: Vec<i8> = (0..bits)
                    .map(|b| if (i * 31 + b * 7 + i * b) % 3 == 0 { 1 } else { -1 })
                    .collect();
                BinaryCode::from_signs(&signs)
            })
            .collect()
    }

    #[test]
    fn scan_matches_per_code_hamming_exactly() {
        for bits in [1usize, 63, 64, 65, 128, 300] {
            for n in [0usize, 1, 3, 4, 5, 17] {
                let cs = codes(n, bits);
                let packed = PackedCodes::build(&cs).unwrap();
                assert_eq!(packed.len(), n);
                let q = codes(n + 1, bits).pop().unwrap();
                let mut got = Vec::new();
                packed.scan_into(&q, |i, d| got.push((i, d)));
                let want: Vec<(usize, u32)> =
                    cs.iter().enumerate().map(|(i, c)| (i, c.hamming(&q))).collect();
                assert_eq!(got, want, "bits={bits} n={n}");
                for (i, c) in cs.iter().enumerate() {
                    assert_eq!(packed.distance(i, &q), c.hamming(&q));
                }
            }
        }
    }

    #[test]
    fn hamming_words_matches_binary_code() {
        let a = codes(2, 257)[0].clone();
        let b = codes(2, 257)[1].clone();
        assert_eq!(hamming_words(a.words(), b.words()), a.hamming(&b));
        assert_eq!(hamming_words(&[], &[]), 0);
    }

    #[test]
    fn mixed_widths_rejected() {
        let mut cs = codes(3, 64);
        cs.push(BinaryCode::zeros(65));
        assert!(matches!(
            PackedCodes::build(&cs),
            Err(SearchError::InconsistentCodes { position: 3, expected: 64, got: 65 })
        ));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn width_mismatch_scan_panics() {
        let packed = PackedCodes::build(&codes(4, 64)).unwrap();
        packed.scan_into(&BinaryCode::zeros(65), |_, _| {});
    }

    #[test]
    fn empty_corpus_scans_nothing_at_any_width() {
        let packed = PackedCodes::build(&[]).unwrap();
        assert!(packed.is_empty());
        packed.scan_into(&BinaryCode::zeros(0), |_, _| panic!("nothing to scan"));
        packed.scan_into(&BinaryCode::zeros(64), |_, _| panic!("nothing to scan"));
    }
}
