//! A vantage-point tree for exact k-NN over dense embeddings.
//!
//! The paper motivates hashing with the observation that neural methods
//! "calculate all the distances between the query ... and the database",
//! i.e. they never prune the Euclidean search space. A VP-tree is the
//! classic metric-space answer: pick a vantage point, split the rest by
//! the median distance to it, and use the triangle inequality to skip
//! whole subtrees at query time. It complements the Hamming-space
//! structures as the Euclidean-space index of this library.

use crate::search::Hit;
use crate::topk::sort_hits;

#[derive(Debug)]
enum Node {
    Leaf(Vec<u32>),
    Inner {
        /// Index of the vantage point.
        vantage: u32,
        /// Median distance: inside subtree holds points with
        /// `d(vantage, x) <= radius`.
        radius: f64,
        inside: Box<Node>,
        outside: Box<Node>,
    },
}

/// An exact Euclidean k-NN index over fixed-width embeddings.
pub struct VpTree {
    root: Node,
    data: Vec<Vec<f32>>,
    dim: usize,
}

fn dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

impl VpTree {
    /// Builds the tree. Deterministic: the vantage point of each split is
    /// the first element of the current id set.
    ///
    /// # Panics
    /// Panics if embeddings have inconsistent widths.
    pub fn build(data: Vec<Vec<f32>>) -> Self {
        let dim = data.first().map(Vec::len).unwrap_or(0);
        for v in &data {
            assert_eq!(v.len(), dim, "inconsistent embedding widths");
        }
        // lint: allow(lossy-cast) — corpus slots are capped far below 2^32 (u32 node ids by design)
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let root = Self::build_node(&data, ids);
        VpTree { root, data, dim }
    }

    fn build_node(data: &[Vec<f32>], mut ids: Vec<u32>) -> Node {
        const LEAF_SIZE: usize = 16;
        if ids.len() <= LEAF_SIZE {
            return Node::Leaf(ids);
        }
        let vantage = ids[0];
        let rest = ids.split_off(1);
        let mut scored: Vec<(f64, u32)> = rest
            .into_iter()
            // lint: allow(lossy-cast) — u32 node ids widen losslessly into usize
            .map(|id| (dist(&data[vantage as usize], &data[id as usize]), id))
            .collect();
        // total_cmp puts NaN distances past the median split instead of
        // leaving the partition order comparator-dependent.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let median = scored[scored.len() / 2].0;
        let (inside, outside): (Vec<_>, Vec<_>) =
            scored.into_iter().partition(|&(d, _)| d <= median);
        let inside_ids: Vec<u32> = inside.into_iter().map(|(_, id)| id).collect();
        let outside_ids: Vec<u32> = outside.into_iter().map(|(_, id)| id).collect();
        // Degenerate split (all points equidistant): fall back to a leaf
        // to guarantee progress.
        if inside_ids.is_empty() || outside_ids.is_empty() {
            let mut all = vec![vantage];
            all.extend(inside_ids);
            all.extend(outside_ids);
            return Node::Leaf(all);
        }
        Node::Inner {
            vantage,
            radius: median,
            inside: Box::new(Self::build_node(data, inside_ids)),
            outside: Box::new(Self::build_node(data, outside_ids)),
        }
    }

    /// Number of indexed embeddings.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Width of the indexed embeddings (0 for an empty tree).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Exact k nearest neighbours of `query`, plus the number of distance
    /// evaluations spent (for pruning-effectiveness reports).
    ///
    /// # Panics
    /// Panics if the query width differs from the indexed embeddings'.
    pub fn top_k_counted(&self, query: &[f32], k: usize) -> (Vec<Hit>, usize) {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        if self.data.is_empty() || k == 0 {
            return (Vec::new(), 0);
        }
        // max-heap of current best k (distance, index)
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        let mut evaluations = 0usize;
        let mut tau = f64::INFINITY;
        self.search(&self.root, query, k, &mut best, &mut tau, &mut evaluations);
        let mut hits: Vec<Hit> =
            // lint: allow(lossy-cast) — u32 node ids widen losslessly into usize
            best.into_iter().map(|(d, i)| Hit { index: i as usize, distance: d }).collect();
        sort_hits(&mut hits);
        (hits, evaluations)
    }

    /// Exact k nearest neighbours.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.top_k_counted(query, k).0
    }

    fn consider(
        &self,
        id: u32,
        d: f64,
        k: usize,
        best: &mut Vec<(f64, u32)>,
        tau: &mut f64,
    ) {
        if best.len() < k {
            best.push((d, id));
            if best.len() == k {
                *tau = best
                    .iter()
                    .map(|&(bd, _)| bd)
                    .fold(f64::NEG_INFINITY, f64::max);
            }
        } else if d < *tau {
            // replace the current worst; ties among equal worst distances
            // evict the largest id so the survivors match the canonical
            // (distance, index) order of `topk::cmp_hits`
            let (worst_pos, _) = best
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
                .expect("best is non-empty");
            best[worst_pos] = (d, id);
            *tau = best
                .iter()
                .map(|&(bd, _)| bd)
                .fold(f64::NEG_INFINITY, f64::max);
        }
    }

    fn search(
        &self,
        node: &Node,
        query: &[f32],
        k: usize,
        best: &mut Vec<(f64, u32)>,
        tau: &mut f64,
        evaluations: &mut usize,
    ) {
        match node {
            Node::Leaf(ids) => {
                for &id in ids {
                    // lint: allow(lossy-cast) — u32 node ids widen losslessly into usize
                    let d = dist(query, &self.data[id as usize]);
                    *evaluations += 1;
                    self.consider(id, d, k, best, tau);
                }
            }
            Node::Inner { vantage, radius, inside, outside } => {
                // lint: allow(lossy-cast) — u32 node ids widen losslessly into usize
                let d = dist(query, &self.data[*vantage as usize]);
                *evaluations += 1;
                self.consider(*vantage, d, k, best, tau);
                // Visit the more promising side first.
                let (first, second) = if d <= *radius {
                    (inside, outside)
                } else {
                    (outside, inside)
                };
                self.search(first, query, k, best, tau, evaluations);
                // Triangle inequality: the other side can only contain a
                // better point if |d - radius| < tau.
                if (d - radius).abs() < *tau {
                    self.search(second, query, k, best, tau, evaluations);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::euclidean_top_k;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f32>() * 10.0 - 5.0).collect())
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let db = random_vectors(500, 8, 1);
        let tree = VpTree::build(db.clone());
        let queries = random_vectors(20, 8, 2);
        for q in &queries {
            for k in [1usize, 5, 17] {
                let got: Vec<usize> = tree.top_k(q, k).iter().map(|h| h.index).collect();
                let want: Vec<usize> =
                    euclidean_top_k(&db, q, k).iter().map(|h| h.index).collect();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn prunes_distance_evaluations_on_clustered_data() {
        // clustered data lets the triangle inequality skip subtrees
        let mut rng = StdRng::seed_from_u64(3);
        let mut db = Vec::new();
        for c in 0..10 {
            let center = c as f32 * 100.0;
            for _ in 0..100 {
                db.push(vec![center + rng.random::<f32>(), center - rng.random::<f32>()]);
            }
        }
        let tree = VpTree::build(db.clone());
        let (_, evals) = tree.top_k_counted(&db[5], 5);
        assert!(
            evals < db.len() / 2,
            "VP-tree evaluated {evals}/{} distances — no pruning happened",
            db.len()
        );
    }

    #[test]
    fn handles_duplicates_and_tiny_inputs() {
        let db = vec![vec![1.0f32, 1.0]; 40];
        let tree = VpTree::build(db);
        let hits = tree.top_k(&[1.0, 1.0], 3);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.distance == 0.0));

        let empty = VpTree::build(Vec::new());
        assert!(empty.is_empty());

        let single = VpTree::build(vec![vec![2.0f32]]);
        let hit = single.top_k(&[0.0], 1);
        assert_eq!(hit[0].index, 0);
        assert!((hit[0].distance - 2.0).abs() < 1e-9);
    }

    #[test]
    fn k_zero_and_k_over_len() {
        let db = random_vectors(10, 4, 4);
        let tree = VpTree::build(db.clone());
        assert!(tree.top_k(&db[0], 0).is_empty());
        assert_eq!(tree.top_k(&db[0], 100).len(), 10);
    }
}
