//! # traj-index — Euclidean and Hamming top-k search
//!
//! Packed [`BinaryCode`]s with popcount Hamming distance, brute-force
//! Euclidean/Hamming scans, a radius-2 table-lookup index, the
//! `Hamming-Hybrid` search strategy evaluated in Section V-E of the
//! paper, plus two exact pruning indexes that go beyond it:
//! [`MultiIndexHashing`] (exact Hamming k-NN without the empty-bucket
//! problem of footnote 5) and a [`VpTree`] for the Euclidean space.

#![warn(missing_docs)]

pub mod cluster;
pub mod code;
pub mod error;
pub mod mih;
pub mod packed;
pub mod search;
pub mod topk;
pub mod vptree;

pub use cluster::{dbscan_hamming, Assignment, Clustering};
pub use code::BinaryCode;
pub use error::SearchError;
pub use mih::MultiIndexHashing;
pub use packed::{hamming_words, PackedCodes};
pub use search::{euclidean_top_k, hamming_top_k, HammingTable, Hit};
pub use topk::{cmp_hits, sort_hits, top_k_hits};
pub use vptree::VpTree;
