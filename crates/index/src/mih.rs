//! Multi-index hashing (Norouzi, Punjani & Fleet): exact k-NN in
//! Hamming space without scanning the database and without the
//! `O(bits^r)` probe blow-up of single-table lookups.
//!
//! The paper's footnote 5 observes that a 64-bit code space is mostly
//! empty buckets, so pure neighbour expansion in one table is hopeless.
//! Multi-index hashing is the canonical fix: split every code into `m`
//! disjoint substrings and index each substring in its own table. A code
//! within Hamming distance `r` of the query must be within distance
//! `floor(r / m)` of the query in **at least one** substring (pigeonhole),
//! so searching radius `r` costs `m` small-radius probes over short
//! substrings instead of `C(bits, r)` probes over full codes.

use crate::code::BinaryCode;
use crate::error::SearchError;
use crate::search::Hit;
use crate::topk::{sort_hits, top_k_hits};
use std::collections::HashMap;

/// An exact Hamming k-NN index over fixed-width binary codes.
pub struct MultiIndexHashing {
    /// Substring tables: `tables[s]` maps a substring value to the
    /// database ids having that substring.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    /// Substring bit ranges `(start, len)`.
    chunks: Vec<(usize, usize)>,
    codes: Vec<BinaryCode>,
    bits: usize,
}

fn substring(code: &BinaryCode, start: usize, len: usize) -> u64 {
    debug_assert!(len <= 64);
    let mut out = 0u64;
    for i in 0..len {
        if code.bit(start + i) {
            out |= 1 << i;
        }
    }
    out
}

/// Enumerates all `len`-bit values within Hamming distance exactly `r`
/// of `base`, invoking `f` on each.
fn for_each_at_distance(base: u64, len: usize, r: usize, f: &mut impl FnMut(u64)) {
    fn rec(base: u64, len: usize, r: usize, start: usize, acc: u64, f: &mut impl FnMut(u64)) {
        if r == 0 {
            f(base ^ acc);
            return;
        }
        for i in start..len {
            rec(base, len, r - 1, i + 1, acc | (1 << i), f);
        }
    }
    rec(base, len, r, 0, 0, f);
}

impl MultiIndexHashing {
    /// Builds the index with `m` substring tables, panicking on misuse.
    ///
    /// Convenience wrapper over [`MultiIndexHashing::try_build`] for
    /// callers that construct codes themselves and treat failure as a
    /// programming error.
    ///
    /// # Panics
    /// Panics where `try_build` would return an error.
    pub fn build(codes: Vec<BinaryCode>, m: usize) -> Self {
        Self::try_build(codes, m).unwrap_or_else(|e| panic!("MultiIndexHashing::build: {e}"))
    }

    /// Builds the index with `m` substring tables.
    ///
    /// An `m` that does not fit the code width degrades gracefully
    /// instead of failing: it is clamped so no table covers more than
    /// 64 bits (queries stay exact, just with different constants) and
    /// so there are never more tables than bits. The hard errors are
    /// `m == 0` ([`SearchError::NoTables`]) and databases mixing code
    /// widths ([`SearchError::InconsistentCodes`]) — an index built
    /// over those would silently answer queries wrongly.
    pub fn try_build(codes: Vec<BinaryCode>, m: usize) -> Result<Self, SearchError> {
        if m == 0 {
            return Err(SearchError::NoTables);
        }
        let bits = codes.first().map(|c| c.len()).unwrap_or(64);
        // Graceful clamping: at least div_ceil(bits, 64) tables so every
        // substring fits in a u64, at most one table per bit.
        let m = m.clamp(bits.div_ceil(64).max(1), bits.max(1));
        // Spread the bits as evenly as possible: the first `bits % m`
        // chunks get one extra bit.
        let base = bits / m;
        let extra = bits % m;
        let mut chunks = Vec::with_capacity(m);
        let mut start = 0usize;
        for s in 0..m {
            let len = base + usize::from(s < extra);
            chunks.push((start, len));
            start += len;
        }
        let mut tables: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); m];
        for (id, code) in codes.iter().enumerate() {
            if code.len() != bits {
                return Err(SearchError::InconsistentCodes {
                    position: id,
                    expected: bits,
                    got: code.len(),
                });
            }
            for (s, &(cs, cl)) in chunks.iter().enumerate() {
                tables[s]
                    .entry(substring(code, cs, cl))
                    .or_default()
                    // lint: allow(lossy-cast) — corpus slots are capped far below 2^32 (u32 postings by design)
                    .push(id as u32);
            }
        }
        Ok(MultiIndexHashing { tables, chunks, codes, bits })
    }

    /// Number of indexed codes.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of substring tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Exact range query: every database index within Hamming distance
    /// `radius` of the query, as `(index, distance)` pairs sorted by
    /// distance then index.
    ///
    /// Probes substring radius `floor(radius/m)` in every table
    /// (pigeonhole guarantee) and filters candidates by their true
    /// distance.
    ///
    /// An empty index answers any query with no hits; a non-empty index
    /// rejects width-mismatched queries with
    /// [`SearchError::WidthMismatch`] (Hamming distance across widths
    /// is undefined, so there is no correct fallback).
    pub fn within_radius(
        &self,
        query: &BinaryCode,
        radius: u32,
    ) -> Result<Vec<Hit>, SearchError> {
        if self.codes.is_empty() {
            return Ok(Vec::new());
        }
        if query.len() != self.bits {
            return Err(SearchError::WidthMismatch { query: query.len(), index: self.bits });
        }
        let m = self.tables.len();
        // lint: allow(lossy-cast) — u32 radius widens losslessly into usize
        let sub_r = (radius as usize / m).min(self.bits);
        let mut seen = vec![false; self.codes.len()];
        let mut out = Vec::new();
        for (s, &(cs, cl)) in self.chunks.iter().enumerate() {
            let q_sub = substring(query, cs, cl);
            let table = &self.tables[s];
            for probe_r in 0..=sub_r.min(cl) {
                let mut visit = |candidate_sub: u64| {
                    if let Some(ids) = table.get(&candidate_sub) {
                        for &id in ids {
                            // lint: allow(lossy-cast) — u32 posting widens losslessly into usize
                            let idx = id as usize;
                            if !seen[idx] {
                                seen[idx] = true;
                                let d = self.codes[idx].hamming(query);
                                if d <= radius {
                                    out.push(Hit { index: idx, distance: d as f64 });
                                }
                            }
                        }
                    }
                };
                for_each_at_distance(q_sub, cl, probe_r, &mut visit);
            }
        }
        sort_hits(&mut out);
        Ok(out)
    }

    /// Exact top-k by Hamming distance.
    ///
    /// Searches radius 0, 1, 2, … until `k` results are guaranteed
    /// complete: after finishing radius `r` (probing substring radius
    /// `floor(r/m)` in every table), every code at distance ≤ r has been
    /// seen, so once `k` candidates are at distance ≤ r the search stops.
    ///
    /// Degraded inputs degrade gracefully: an empty index or `k == 0`
    /// yields no hits, `k` beyond the database size returns everything.
    /// Width-mismatched queries are the one typed error
    /// ([`SearchError::WidthMismatch`]) — there is no correct answer
    /// for them.
    pub fn top_k(&self, query: &BinaryCode, k: usize) -> Result<Vec<Hit>, SearchError> {
        if self.codes.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        if query.len() != self.bits {
            return Err(SearchError::WidthMismatch { query: query.len(), index: self.bits });
        }
        let m = self.tables.len();
        let mut seen = vec![false; self.codes.len()];
        // candidates[d] = ids at full-code distance d
        let mut by_distance: Vec<Vec<u32>> = vec![Vec::new(); self.bits + 1];
        let mut found = 0usize;
        let mut probed_sub_radius: isize = -1;
        for r in 0..=self.bits {
            // Pigeonhole: codes at distance <= r differ by <= floor(r/m)
            // in some substring.
            let sub_r = r / m;
            // lint: allow(lossy-cast) — sub_r <= bits per chunk, a tiny positive count
            if sub_r as isize > probed_sub_radius {
                // lint: allow(lossy-cast) — sub_r <= bits per chunk, a tiny positive count
                probed_sub_radius = sub_r as isize;
                for (s, &(cs, cl)) in self.chunks.iter().enumerate() {
                    let q_sub = substring(query, cs, cl);
                    let table = &self.tables[s];
                    let mut visit = |candidate_sub: u64| {
                        if let Some(ids) = table.get(&candidate_sub) {
                            for &id in ids {
                                // lint: allow(lossy-cast) — u32 posting widens losslessly into usize
                                let idx = id as usize;
                                if !seen[idx] {
                                    seen[idx] = true;
                                    // lint: allow(lossy-cast) — u32 Hamming distance widens losslessly into usize
                                    let d = self.codes[idx].hamming(query) as usize;
                                    by_distance[d].push(id);
                                    found += 1;
                                }
                            }
                        }
                    };
                    for_each_at_distance(q_sub, cl, sub_r, &mut visit);
                }
            }
            // After probing substring radius floor(r/m), everything at
            // full distance <= r is in `by_distance`.
            let complete: usize = by_distance[..=r].iter().map(|v| v.len()).sum();
            if complete >= k || found == self.codes.len() {
                let hits = by_distance
                    .iter()
                    .enumerate()
                    .flat_map(|(d, ids)| {
                        // lint: allow(lossy-cast) — u32 posting widens losslessly into usize
                        ids.iter().map(move |&id| Hit { index: id as usize, distance: d as f64 })
                    })
                    .collect();
                return Ok(top_k_hits(hits, k));
            }
        }
        unreachable!("search must terminate within the code width");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::hamming_top_k;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_codes(n: usize, bits: usize, seed: u64) -> Vec<BinaryCode> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let signs: Vec<i8> =
                    (0..bits).map(|_| if rng.random::<bool>() { 1 } else { -1 }).collect();
                BinaryCode::from_signs(&signs)
            })
            .collect()
    }

    #[test]
    fn substring_extraction() {
        let code = BinaryCode::from_signs(&[1, -1, 1, 1, -1, -1, 1, -1]);
        assert_eq!(substring(&code, 0, 4), 0b1101);
        assert_eq!(substring(&code, 4, 4), 0b0100);
    }

    #[test]
    fn distance_enumeration_counts() {
        let mut count = 0;
        for_each_at_distance(0b1010, 6, 2, &mut |_| count += 1);
        assert_eq!(count, 15); // C(6, 2)
        let mut exact = Vec::new();
        for_each_at_distance(0b111, 3, 1, &mut |v| exact.push(v));
        exact.sort_unstable();
        assert_eq!(exact, vec![0b011, 0b101, 0b110]);
    }

    #[test]
    fn matches_brute_force_on_random_codes() {
        for (bits, m) in [(16usize, 2usize), (32, 4), (64, 4)] {
            let db = random_codes(400, bits, bits as u64);
            let mih = MultiIndexHashing::build(db.clone(), m);
            for qi in [0usize, 17, 333] {
                let q = &db[qi];
                for k in [1usize, 5, 20] {
                    let got: Vec<f64> =
                        mih.top_k(q, k).unwrap().iter().map(|h| h.distance).collect();
                    let want: Vec<f64> =
                        hamming_top_k(&db, q, k).iter().map(|h| h.distance).collect();
                    assert_eq!(got, want, "bits={bits} m={m} k={k}");
                }
            }
        }
    }

    #[test]
    fn far_query_still_exact() {
        let db = random_codes(200, 64, 9);
        let mih = MultiIndexHashing::build(db.clone(), 4);
        let far = BinaryCode::from_signs(&[1i8; 64]);
        let got: Vec<f64> = mih.top_k(&far, 10).unwrap().iter().map(|h| h.distance).collect();
        let want: Vec<f64> = hamming_top_k(&db, &far, 10).iter().map(|h| h.distance).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_larger_than_database_returns_everything() {
        let db = random_codes(7, 16, 3);
        let mih = MultiIndexHashing::build(db.clone(), 2);
        let hits = mih.top_k(&db[0], 50).unwrap();
        assert_eq!(hits.len(), 7);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let mih = MultiIndexHashing::build(Vec::new(), 4);
        assert!(mih.is_empty());
        assert!(mih.top_k(&BinaryCode::zeros(64), 5).unwrap().is_empty());
    }

    #[test]
    fn duplicate_codes_all_returned() {
        let base = random_codes(1, 16, 4).pop().unwrap();
        let db = vec![base.clone(), base.clone(), base.clone()];
        let mih = MultiIndexHashing::build(db, 2);
        let hits = mih.top_k(&base, 3).unwrap();
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.distance == 0.0));
    }

    #[test]
    fn mismatched_query_width_is_a_typed_error() {
        let db = random_codes(3, 16, 5);
        let mih = MultiIndexHashing::build(db, 2);
        assert_eq!(
            mih.top_k(&BinaryCode::zeros(32), 1),
            Err(SearchError::WidthMismatch { query: 32, index: 16 })
        );
        assert_eq!(
            mih.within_radius(&BinaryCode::zeros(32), 2),
            Err(SearchError::WidthMismatch { query: 32, index: 16 })
        );
    }

    #[test]
    fn zero_tables_is_a_typed_error_and_oversized_m_clamps() {
        let db = random_codes(10, 16, 6);
        assert_eq!(
            MultiIndexHashing::try_build(db.clone(), 0).err(),
            Some(SearchError::NoTables)
        );
        // m = 100 over 16-bit codes clamps to 16 tables and stays exact.
        let mih = MultiIndexHashing::try_build(db.clone(), 100).unwrap();
        assert_eq!(mih.num_tables(), 16);
        let got: Vec<f64> = mih.top_k(&db[0], 5).unwrap().iter().map(|h| h.distance).collect();
        let want: Vec<f64> = hamming_top_k(&db, &db[0], 5).iter().map(|h| h.distance).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn wide_codes_get_enough_tables_even_for_m_1() {
        // 128-bit codes cannot use a single 128-bit substring table; the
        // builder clamps up to two tables and remains exact. The codes
        // are kept within a few bit flips of each other so the radius-
        // growing search terminates quickly (random 128-bit codes would
        // push the substring radius into infeasible probe counts).
        let base = random_codes(1, 128, 7).pop().unwrap();
        let db: Vec<BinaryCode> = (0..20)
            .map(|i| {
                let mut c = base.clone();
                for b in 0..(i % 4) {
                    c = c.with_flipped(i * 3 + b);
                }
                c
            })
            .collect();
        let mih = MultiIndexHashing::try_build(db.clone(), 1).unwrap();
        assert!(mih.num_tables() >= 2);
        let got: Vec<f64> = mih.top_k(&db[3], 5).unwrap().iter().map(|h| h.distance).collect();
        let want: Vec<f64> = hamming_top_k(&db, &db[3], 5).iter().map(|h| h.distance).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mixed_width_database_is_a_typed_error() {
        let mut db = random_codes(3, 16, 8);
        db.push(BinaryCode::zeros(32));
        assert_eq!(
            MultiIndexHashing::try_build(db, 2).err(),
            Some(SearchError::InconsistentCodes { position: 3, expected: 16, got: 32 })
        );
    }
}
