//! The one top-k selection routine shared by every search path.
//!
//! Before this module existed the same "sort candidates by distance and
//! keep the first k" logic was hand-rolled in three places
//! (`search::top_k_from_scores`, the `mih::within_radius` sort, and
//! `DistanceMatrix::top_k_row` in `traj-dist`), two of which compared
//! with `partial_cmp(..).unwrap_or(Equal)` — an ordering that is not
//! transitive once NaN appears and therefore corrupts the sort silently.
//! All of them now delegate here.

use crate::search::Hit;
use std::cmp::Ordering;

/// Total order on hits: distance first via [`f64::total_cmp`] (NaN sorts
/// after every number, so a poisoned distance can never be ranked
/// "nearest"), then database index ascending as a deterministic
/// tie-break.
#[inline]
pub fn cmp_hits(a: &Hit, b: &Hit) -> Ordering {
    a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index))
}

/// Sorts hits in place into the canonical `(distance, index)` order.
pub fn sort_hits(hits: &mut [Hit]) {
    hits.sort_unstable_by(cmp_hits);
}

/// Selects the `k` best hits, ordered nearest first with index
/// tie-breaking.
///
/// Uses `select_nth_unstable_by` for O(n) selection and only sorts the
/// surviving prefix, so callers can throw whole candidate sets at it
/// without paying an O(n log n) sort. `k = 0`, an empty candidate set,
/// and `k >= len` all behave as expected.
pub fn top_k_hits(mut hits: Vec<Hit>, k: usize) -> Vec<Hit> {
    if k == 0 {
        hits.clear();
        return hits;
    }
    if k < hits.len() {
        hits.select_nth_unstable_by(k - 1, cmp_hits);
        hits.truncate(k);
    }
    sort_hits(&mut hits);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(pairs: &[(usize, f64)]) -> Vec<Hit> {
        pairs.iter().map(|&(index, distance)| Hit { index, distance }).collect()
    }

    #[test]
    fn selects_and_orders_nearest_first() {
        let got = top_k_hits(hits(&[(0, 3.0), (1, 1.0), (2, 2.0), (3, 0.5)]), 2);
        assert_eq!(got, hits(&[(3, 0.5), (1, 1.0)]));
    }

    #[test]
    fn ties_break_by_index_deterministically() {
        let got = top_k_hits(hits(&[(5, 1.0), (2, 1.0), (9, 1.0), (0, 2.0)]), 3);
        assert_eq!(got, hits(&[(2, 1.0), (5, 1.0), (9, 1.0)]));
    }

    #[test]
    fn nan_sorts_last_never_nearest() {
        let got = top_k_hits(hits(&[(0, f64::NAN), (1, 7.0), (2, 5.0)]), 2);
        assert_eq!(got, hits(&[(2, 5.0), (1, 7.0)]));
        // With k covering everything the NaN comes back, but last.
        let all = top_k_hits(hits(&[(0, f64::NAN), (1, 7.0)]), 5);
        assert_eq!(all[0].index, 1);
        assert_eq!(all[1].index, 0);
    }

    #[test]
    fn edge_cases_k_zero_and_empty() {
        assert!(top_k_hits(hits(&[(0, 1.0)]), 0).is_empty());
        assert!(top_k_hits(Vec::new(), 3).is_empty());
        assert_eq!(top_k_hits(hits(&[(0, 1.0)]), 10).len(), 1);
    }
}
