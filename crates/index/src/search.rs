//! Top-k search strategies (Section V-E): Euclidean brute force,
//! Hamming brute force, radius-2 table lookup, and the Hamming-Hybrid
//! strategy.

use crate::code::BinaryCode;
use crate::error::SearchError;
use crate::topk::top_k_hits;
use std::collections::HashMap;

/// A scored candidate; lower score is better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Database index.
    pub index: usize,
    /// Distance to the query (Euclidean or Hamming, by search type).
    pub distance: f64,
}

/// Brute-force Euclidean top-k over dense embeddings (`Euclidean-BF`).
pub fn euclidean_top_k(database: &[Vec<f32>], query: &[f32], k: usize) -> Vec<Hit> {
    let hits = database
        .iter()
        .enumerate()
        .map(|(i, v)| Hit {
            index: i,
            distance: v
                .iter()
                .zip(query)
                .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
                .sum::<f64>()
                .sqrt(),
        })
        .collect();
    top_k_hits(hits, k)
}

/// Brute-force Hamming top-k over binary codes (`Hamming-BF`).
pub fn hamming_top_k(database: &[BinaryCode], query: &BinaryCode, k: usize) -> Vec<Hit> {
    let hits = database
        .iter()
        .enumerate()
        .map(|(i, c)| Hit { index: i, distance: c.hamming(query) as f64 })
        .collect();
    top_k_hits(hits, k)
}

/// A hash-table index over binary codes supporting exact table lookups
/// within Hamming radius 2 and the hybrid strategy of Section V-E.
pub struct HammingTable {
    buckets: HashMap<BinaryCode, Vec<usize>>,
    codes: Vec<BinaryCode>,
    bits: usize,
}

impl HammingTable {
    /// Builds the table from database codes, panicking on misuse.
    ///
    /// Convenience wrapper over [`HammingTable::try_build`].
    ///
    /// # Panics
    /// Panics where `try_build` would return an error.
    pub fn build(codes: Vec<BinaryCode>) -> Self {
        Self::try_build(codes).unwrap_or_else(|e| panic!("HammingTable::build: {e}"))
    }

    /// Builds the table from database codes, rejecting databases that
    /// mix code widths with [`SearchError::InconsistentCodes`].
    pub fn try_build(codes: Vec<BinaryCode>) -> Result<Self, SearchError> {
        let bits = codes.first().map(|c| c.len()).unwrap_or(0);
        let mut buckets: HashMap<BinaryCode, Vec<usize>> = HashMap::new();
        for (i, c) in codes.iter().enumerate() {
            if c.len() != bits {
                return Err(SearchError::InconsistentCodes {
                    position: i,
                    expected: bits,
                    got: c.len(),
                });
            }
            buckets.entry(c.clone()).or_default().push(i);
        }
        Ok(HammingTable { buckets, codes, bits })
    }

    /// Number of indexed codes.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Collects every database index within Hamming radius `r` (at most
    /// 2) of the query by direct table lookups: 1 probe at distance 0,
    /// `bits` probes at distance 1, `bits choose 2` probes at distance 2.
    ///
    /// Results come back grouped as `(distance, indices)` in increasing
    /// distance order.
    ///
    /// Returns [`SearchError::RadiusUnsupported`] for `r > 2` (larger
    /// radii would need `O(bits^r)` probes; the paper's hybrid strategy
    /// never exceeds 2) and [`SearchError::WidthMismatch`] for a query
    /// whose width differs from the indexed codes (an empty table
    /// accepts any query and finds nothing).
    pub fn lookup_within(
        &self,
        query: &BinaryCode,
        r: u32,
    ) -> Result<Vec<(u32, Vec<usize>)>, SearchError> {
        if r > 2 {
            return Err(SearchError::RadiusUnsupported { radius: r, max: 2 });
        }
        if self.codes.is_empty() {
            return Ok(Vec::new());
        }
        if query.len() != self.bits {
            return Err(SearchError::WidthMismatch { query: query.len(), index: self.bits });
        }
        let mut out = Vec::new();
        let probe = |code: &BinaryCode, dist: u32, out: &mut Vec<(u32, Vec<usize>)>| {
            if let Some(members) = self.buckets.get(code) {
                match out.iter_mut().find(|(d, _)| *d == dist) {
                    Some((_, v)) => v.extend_from_slice(members),
                    None => out.push((dist, members.clone())),
                }
            }
        };
        probe(query, 0, &mut out);
        if r >= 1 {
            for i in 0..self.bits {
                probe(&query.with_flipped(i), 1, &mut out);
            }
        }
        if r >= 2 {
            for i in 0..self.bits {
                let flipped = query.with_flipped(i);
                for j in (i + 1)..self.bits {
                    probe(&flipped.with_flipped(j), 2, &mut out);
                }
            }
        }
        out.sort_by_key(|&(d, _)| d);
        Ok(out)
    }

    /// The `Hamming-Hybrid` strategy (Section V-E): search within radius
    /// 2 via table lookup; if that already yields at least `k`
    /// trajectories return the `k` nearest of them, otherwise fall back
    /// to brute-force Hamming search (which also covers the degraded
    /// cases: an empty table and `k` beyond the database size).
    ///
    /// The only error is a width-mismatched query against a non-empty
    /// table ([`SearchError::WidthMismatch`]); even the linear-scan
    /// fallback cannot compare codes of different widths.
    pub fn hybrid_top_k(&self, query: &BinaryCode, k: usize) -> Result<Vec<Hit>, SearchError> {
        let grouped = self.lookup_within(query, 2)?;
        let found: usize = grouped.iter().map(|(_, v)| v.len()).sum();
        if found >= k {
            let hits = grouped
                .into_iter()
                .flat_map(|(d, v)| {
                    v.into_iter().map(move |i| Hit { index: i, distance: d as f64 })
                })
                .collect();
            Ok(top_k_hits(hits, k))
        } else {
            Ok(hamming_top_k(&self.codes, query, k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_codes(n: usize, bits: usize, seed: u64) -> Vec<BinaryCode> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let signs: Vec<i8> =
                    (0..bits).map(|_| if rng.random::<bool>() { 1 } else { -1 }).collect();
                BinaryCode::from_signs(&signs)
            })
            .collect()
    }

    #[test]
    fn euclidean_top_k_orders_by_distance() {
        let db = vec![vec![0.0, 3.0], vec![1.0, 0.0], vec![0.0, 0.5]];
        let hits = euclidean_top_k(&db, &[0.0, 0.0], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 2);
        assert_eq!(hits[1].index, 1);
        assert!((hits[0].distance - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hamming_top_k_matches_manual() {
        let db = random_codes(50, 32, 1);
        let q = db[7].clone();
        let hits = hamming_top_k(&db, &q, 5);
        assert_eq!(hits[0].index, 7);
        assert_eq!(hits[0].distance, 0.0);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn table_lookup_equals_brute_force_within_radius() {
        let db = random_codes(300, 16, 2); // 16 bits => plenty of collisions
        let table = HammingTable::build(db.clone());
        let q = db[0].clone();
        let grouped = table.lookup_within(&q, 2).unwrap();
        let mut via_table: Vec<(usize, u32)> = grouped
            .iter()
            .flat_map(|(d, v)| v.iter().map(move |&i| (i, *d)))
            .collect();
        via_table.sort();
        let mut via_bf: Vec<(usize, u32)> = db
            .iter()
            .enumerate()
            .filter(|(_, c)| c.hamming(&q) <= 2)
            .map(|(i, c)| (i, c.hamming(&q)))
            .collect();
        via_bf.sort();
        assert_eq!(via_table, via_bf);
    }

    #[test]
    fn lookup_has_no_duplicate_indices() {
        let db = random_codes(100, 12, 3);
        let table = HammingTable::build(db.clone());
        let grouped = table.lookup_within(&db[5], 2).unwrap();
        let mut all: Vec<usize> = grouped.iter().flat_map(|(_, v)| v.clone()).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(before, all.len(), "a database entry was probed twice");
    }

    #[test]
    fn hybrid_agrees_with_brute_force_on_top_k_distances() {
        let db = random_codes(400, 16, 4);
        let table = HammingTable::build(db.clone());
        for qi in [0, 13, 77] {
            let q = &db[qi];
            let hybrid = table.hybrid_top_k(q, 10).unwrap();
            let bf = hamming_top_k(&db, q, 10);
            // Indices may differ under distance ties; the distances must
            // agree exactly.
            let hd: Vec<f64> = hybrid.iter().map(|h| h.distance).collect();
            let bd: Vec<f64> = bf.iter().map(|h| h.distance).collect();
            assert_eq!(hd, bd);
        }
    }

    #[test]
    fn hybrid_falls_back_when_ball_is_sparse() {
        // 64-bit codes: random points are nowhere near each other, so the
        // radius-2 ball is almost surely empty and the fallback must kick
        // in and still return k results.
        let db = random_codes(100, 64, 5);
        let table = HammingTable::build(db.clone());
        let far = BinaryCode::from_signs(&[1i8; 64]);
        let hits = table.hybrid_top_k(&far, 7).unwrap();
        assert_eq!(hits.len(), 7);
        let bf = hamming_top_k(&db, &far, 7);
        assert_eq!(
            hits.iter().map(|h| h.distance).collect::<Vec<_>>(),
            bf.iter().map(|h| h.distance).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lookup_radius_above_two_is_a_typed_error() {
        let db = random_codes(10, 8, 6);
        let table = HammingTable::build(db.clone());
        assert_eq!(
            table.lookup_within(&db[0], 3).err(),
            Some(SearchError::RadiusUnsupported { radius: 3, max: 2 })
        );
    }

    #[test]
    fn hybrid_rejects_width_mismatched_queries() {
        let db = random_codes(10, 16, 7);
        let table = HammingTable::build(db);
        assert_eq!(
            table.hybrid_top_k(&BinaryCode::zeros(64), 3),
            Err(SearchError::WidthMismatch { query: 64, index: 16 })
        );
    }

    #[test]
    fn empty_table_answers_any_query_with_nothing() {
        let table = HammingTable::build(Vec::new());
        assert!(table.hybrid_top_k(&BinaryCode::zeros(64), 3).unwrap().is_empty());
        assert!(table.lookup_within(&BinaryCode::zeros(16), 2).unwrap().is_empty());
    }

    #[test]
    fn mixed_width_database_is_rejected_at_build() {
        let mut db = random_codes(4, 16, 8);
        db.push(BinaryCode::zeros(8));
        assert_eq!(
            HammingTable::try_build(db).err(),
            Some(SearchError::InconsistentCodes { position: 4, expected: 16, got: 8 })
        );
    }

    #[test]
    fn k_beyond_database_returns_everything() {
        let db = random_codes(5, 16, 9);
        let table = HammingTable::build(db.clone());
        let hits = table.hybrid_top_k(&db[0], 50).unwrap();
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn bucket_count_reflects_distinct_codes() {
        let a = BinaryCode::from_signs(&[1, 1, -1, -1]);
        let b = BinaryCode::from_signs(&[1, -1, 1, -1]);
        let table = HammingTable::build(vec![a.clone(), a.clone(), b]);
        assert_eq!(table.bucket_count(), 2);
        assert_eq!(table.len(), 3);
    }
}
