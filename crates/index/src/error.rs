//! Typed errors for index construction and querying.
//!
//! The seed panicked (`assert!`) on every misuse — fatal for a long-
//! running search service where a single width-mismatched query must
//! not take the process down. Queries now return these errors instead;
//! conditions that have a safe degraded answer (empty database, `k`
//! larger than the database, more tables than bits) do not error at
//! all and degrade gracefully instead.

use std::fmt;

/// Why an index could not be built or a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The query code's width differs from the indexed codes' width.
    /// There is no meaningful fallback: Hamming distance between codes
    /// of different widths is undefined.
    WidthMismatch {
        /// Bits in the query code.
        query: usize,
        /// Bits in the indexed codes.
        index: usize,
    },
    /// A database code's width differs from the first code's width
    /// (build-time corruption, e.g. mixed model versions).
    InconsistentCodes {
        /// Position of the offending code.
        position: usize,
        /// Width of the first code.
        expected: usize,
        /// Width of the offending code.
        got: usize,
    },
    /// The requested lookup radius exceeds what table probing supports.
    RadiusUnsupported {
        /// Requested radius.
        radius: u32,
        /// Largest supported radius.
        max: u32,
    },
    /// The index was configured with zero substring tables.
    NoTables,
    /// The query lives in a different space than the index: a dense
    /// embedding was handed to a Hamming-code index or vice versa.
    /// There is no conversion that preserves the metric, so the query
    /// cannot be answered.
    RepresentationMismatch {
        /// Representation the index searches over.
        expected: &'static str,
        /// Representation the query arrived in.
        got: &'static str,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::WidthMismatch { query, index } => {
                write!(f, "query code has {query} bits but the index holds {index}-bit codes")
            }
            SearchError::InconsistentCodes { position, expected, got } => write!(
                f,
                "database code {position} has {got} bits, expected {expected}"
            ),
            SearchError::RadiusUnsupported { radius, max } => {
                write!(f, "lookup radius {radius} unsupported (max {max})")
            }
            SearchError::NoTables => write!(f, "multi-index hashing needs at least one table"),
            SearchError::RepresentationMismatch { expected, got } => {
                write!(f, "index searches {expected} queries but received a {got} query")
            }
        }
    }
}

impl std::error::Error for SearchError {}
