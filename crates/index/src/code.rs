//! Compact binary codes with fast Hamming distance.

/// A fixed-length binary code packed into 64-bit words.
///
/// Bit `i` set means the i-th embedding coordinate was positive, i.e.
/// `sign(h_f)[i] = +1` (Eq. 16). With this packing, the Hamming distance
/// between codes equals the number of coordinates on which the sign
/// vectors disagree, matching `H(z^a, z^b) = (d_h - z^a . z^b) / 2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinaryCode {
    bits: Vec<u64>,
    len: usize,
}

impl BinaryCode {
    /// Packs a `+-1` sign vector.
    pub fn from_signs(signs: &[i8]) -> Self {
        let mut bits = vec![0u64; signs.len().div_ceil(64)];
        for (i, &s) in signs.iter().enumerate() {
            debug_assert!(s == 1 || s == -1, "signs must be +-1");
            if s > 0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        BinaryCode { bits, len: signs.len() }
    }

    /// Packs the signs of a float embedding (`x > 0` maps to bit 1).
    pub fn from_floats(values: &[f32]) -> Self {
        let mut bits = vec![0u64; values.len().div_ceil(64)];
        for (i, &x) in values.iter().enumerate() {
            if x > 0.0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        BinaryCode { bits, len: values.len() }
    }

    /// An all-zero code of the given length.
    pub fn zeros(len: usize) -> Self {
        BinaryCode { bits: vec![0u64; len.div_ceil(64)], len }
    }

    /// Rebuilds a code from its packed words (inverse of
    /// [`BinaryCode::words`] + [`BinaryCode::len`]) — the deserialization
    /// path of engine snapshots. Rejects a word count that does not match
    /// `len` and stray bits beyond `len` in the last word, either of
    /// which would silently corrupt every Hamming distance later.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, String> {
        if words.len() != len.div_ceil(64) {
            return Err(format!("{} words cannot hold exactly {len} bits", words.len()));
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err(format!("bits set beyond the code length {len}"));
                }
            }
        }
        Ok(BinaryCode { bits: words, len })
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length code.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw packed words.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Value of bit `i`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns a copy with bit `i` flipped (used to enumerate the
    /// Hamming ball for table-lookup search).
    pub fn with_flipped(&self, i: usize) -> BinaryCode {
        assert!(i < self.len);
        let mut c = self.clone();
        c.bits[i / 64] ^= 1 << (i % 64);
        c
    }

    /// Hamming distance to another code of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[inline]
    pub fn hamming(&self, other: &BinaryCode) -> u32 {
        assert_eq!(self.len, other.len, "code length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| (a ^ b).count_ones())
            .sum()
    }

    /// The sign vector this code encodes.
    pub fn to_signs(&self) -> Vec<i8> {
        (0..self.len).map(|i| if self.bit(i) { 1 } else { -1 }).collect()
    }

    /// Inner product of the two `+-1` sign vectors, computed from the
    /// packed form: `z^a . z^b = d_h - 2 * H(a, b)`.
    pub fn sign_inner_product(&self, other: &BinaryCode) -> i64 {
        self.len as i64 - 2 * self.hamming(other) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let signs: Vec<i8> = (0..70).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect();
        let c = BinaryCode::from_signs(&signs);
        assert_eq!(c.len(), 70);
        assert_eq!(c.to_signs(), signs);
    }

    #[test]
    fn from_floats_thresholds_at_zero() {
        let c = BinaryCode::from_floats(&[0.5, -0.5, 0.0, 1e-9]);
        assert!(c.bit(0));
        assert!(!c.bit(1));
        assert!(!c.bit(2), "zero maps to -1 as in the paper's sign()");
        assert!(c.bit(3));
    }

    #[test]
    fn hamming_counts_disagreements() {
        let a = BinaryCode::from_signs(&[1, 1, -1, -1]);
        let b = BinaryCode::from_signs(&[1, -1, -1, 1]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn hamming_across_word_boundary() {
        let mut signs = vec![1i8; 130];
        let a = BinaryCode::from_signs(&signs);
        signs[0] = -1;
        signs[64] = -1;
        signs[129] = -1;
        let b = BinaryCode::from_signs(&signs);
        assert_eq!(a.hamming(&b), 3);
    }

    #[test]
    fn inner_product_identity() {
        // H = (d - z.z') / 2  <=>  z.z' = d - 2H (the identity the paper
        // uses to rewrite Eq. 18 into Eq. 19).
        let a = BinaryCode::from_signs(&[1, 1, -1, 1, -1]);
        let b = BinaryCode::from_signs(&[-1, 1, -1, -1, -1]);
        let dot: i64 = a
            .to_signs()
            .iter()
            .zip(b.to_signs())
            .map(|(&x, y)| x as i64 * y as i64)
            .sum();
        assert_eq!(a.sign_inner_product(&b), dot);
    }

    #[test]
    fn flip_changes_exactly_one_bit() {
        let a = BinaryCode::from_signs(&[1, -1, 1, -1, 1]);
        let b = a.with_flipped(3);
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(b.with_flipped(3), a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BinaryCode::zeros(8);
        let b = BinaryCode::zeros(16);
        let _ = a.hamming(&b);
    }
}
