//! Property-based tests of binary codes and the search structures.

use proptest::prelude::*;
use traj_index::{euclidean_top_k, hamming_top_k, BinaryCode, HammingTable};

fn signs_strategy(bits: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(proptest::bool::ANY, bits)
        .prop_map(|bs| bs.into_iter().map(|b| if b { 1i8 } else { -1 }).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_roundtrip(signs in signs_strategy(70)) {
        let code = BinaryCode::from_signs(&signs);
        prop_assert_eq!(code.to_signs(), signs);
    }

    #[test]
    fn hamming_is_a_metric(
        a in signs_strategy(48),
        b in signs_strategy(48),
        c in signs_strategy(48),
    ) {
        let (ca, cb, cc) = (
            BinaryCode::from_signs(&a),
            BinaryCode::from_signs(&b),
            BinaryCode::from_signs(&c),
        );
        prop_assert_eq!(ca.hamming(&cb), cb.hamming(&ca));
        prop_assert_eq!(ca.hamming(&ca), 0);
        prop_assert!(ca.hamming(&cb) <= ca.hamming(&cc) + cc.hamming(&cb));
    }

    #[test]
    fn hamming_matches_naive_count(
        a in signs_strategy(90),
        b in signs_strategy(90),
    ) {
        let naive = a.iter().zip(&b).filter(|(x, y)| x != y).count() as u32;
        let fast = BinaryCode::from_signs(&a).hamming(&BinaryCode::from_signs(&b));
        prop_assert_eq!(naive, fast);
    }

    #[test]
    fn inner_product_identity_eq19(
        a in signs_strategy(40),
        b in signs_strategy(40),
    ) {
        // The identity the paper uses to rewrite Eq. 18 into Eq. 19:
        // H(a,b) = (d - a.b) / 2.
        let ca = BinaryCode::from_signs(&a);
        let cb = BinaryCode::from_signs(&b);
        let dot: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        prop_assert_eq!(ca.hamming(&cb) as i64, (40 - dot) / 2);
    }

    #[test]
    fn hybrid_top_k_distances_match_brute_force(
        db in proptest::collection::vec(signs_strategy(12), 20..120),
        q in signs_strategy(12),
        k in 1usize..12,
    ) {
        let codes: Vec<BinaryCode> = db.iter().map(|s| BinaryCode::from_signs(s)).collect();
        let query = BinaryCode::from_signs(&q);
        let table = HammingTable::build(codes.clone());
        let hybrid: Vec<f64> =
            table.hybrid_top_k(&query, k).unwrap().iter().map(|h| h.distance).collect();
        let bf: Vec<f64> =
            hamming_top_k(&codes, &query, k).iter().map(|h| h.distance).collect();
        prop_assert_eq!(hybrid, bf);
    }

    #[test]
    fn lookup_within_radius_is_exact(
        db in proptest::collection::vec(signs_strategy(10), 10..80),
        q in signs_strategy(10),
        r in 0u32..3,
    ) {
        let codes: Vec<BinaryCode> = db.iter().map(|s| BinaryCode::from_signs(s)).collect();
        let query = BinaryCode::from_signs(&q);
        let table = HammingTable::build(codes.clone());
        let mut found: Vec<usize> = table
            .lookup_within(&query, r)
            .unwrap()
            .into_iter()
            .flat_map(|(_, v)| v)
            .collect();
        found.sort_unstable();
        let mut expected: Vec<usize> = codes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.hamming(&query) <= r)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(found, expected);
    }

    #[test]
    fn euclidean_top_k_is_sorted_and_complete(
        db in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4), 5..40),
        q in proptest::collection::vec(-10.0f32..10.0, 4),
        k in 1usize..10,
    ) {
        let hits = euclidean_top_k(&db, &q, k);
        prop_assert_eq!(hits.len(), k.min(db.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-9);
        }
        // no excluded item is closer than the worst included one
        if let Some(worst) = hits.last() {
            for (i, v) in db.iter().enumerate() {
                if !hits.iter().any(|h| h.index == i) {
                    let d: f64 = v
                        .iter()
                        .zip(&q)
                        .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    prop_assert!(d + 1e-9 >= worst.distance);
                }
            }
        }
    }
}
