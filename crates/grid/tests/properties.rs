//! Property-based tests of grid partitioning and triplet generation.

use proptest::prelude::*;
use traj_data::{BoundingBox, Point, Trajectory};
use traj_grid::{cluster_by_grid, generate_triplets, GridSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locate_roundtrips_through_cell_center(
        w in 100.0f64..5000.0,
        h in 100.0f64..5000.0,
        cell in 10.0f64..500.0,
    ) {
        let spec = GridSpec::new(BoundingBox::from_extent(w, h), cell);
        for gx in (0..spec.nx() as u32).step_by(3) {
            for gy in (0..spec.ny() as u32).step_by(3) {
                let center = spec.cell_center(gx, gy);
                prop_assert_eq!(spec.locate(center), (gx, gy));
                let id = spec.cell_id(gx, gy);
                prop_assert_eq!(spec.cell_coords(id), (gx, gy));
            }
        }
    }

    #[test]
    fn every_point_lands_in_a_valid_cell(
        x in -10_000.0f64..10_000.0,
        y in -10_000.0f64..10_000.0,
    ) {
        let spec = GridSpec::new(BoundingBox::from_extent(1000.0, 800.0), 50.0);
        let (gx, gy) = spec.locate(Point::new(x, y));
        prop_assert!((gx as usize) < spec.nx());
        prop_assert!((gy as usize) < spec.ny());
    }

    #[test]
    fn canonical_grid_trajectory_has_no_consecutive_duplicates(
        xy in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..30),
    ) {
        let spec = GridSpec::new(BoundingBox::from_extent(1000.0, 1000.0), 100.0);
        let t = Trajectory::from_xy(&xy);
        let canon = spec.canonical_grid_trajectory(&t);
        prop_assert!(!canon.is_empty());
        for w in canon.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
        // the raw grid trajectory has one cell per point
        prop_assert_eq!(spec.grid_trajectory(&t).len(), t.len());
    }

    #[test]
    fn clusters_partition_usable_trajectories(
        seeds in proptest::collection::vec(0u64..1_000_000, 10..60),
    ) {
        // build trajectories from seeds, some deliberately identical so
        // clusters exist
        let trajs: Vec<Trajectory> = seeds
            .iter()
            .map(|&s| {
                let x = (s % 10) as f64 * 80.0;
                let y = (s % 7) as f64 * 90.0;
                Trajectory::from_xy(&[(x, y), (x + 400.0, y + 100.0)])
            })
            .collect();
        let spec = GridSpec::new(BoundingBox::from_extent(2000.0, 2000.0), 500.0);
        let c = cluster_by_grid(&trajs, &spec);
        let in_clusters: usize = c.clusters.iter().map(|cl| cl.len()).sum();
        prop_assert_eq!(in_clusters + c.singletons, trajs.len());
        // no index appears twice
        let mut all: Vec<usize> = c.clusters.iter().flatten().cloned().collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        prop_assert_eq!(before, all.len());
    }

    #[test]
    fn triplets_never_pair_anchor_with_itself(
        n in 10usize..50,
        seed in 0u64..100,
    ) {
        let trajs: Vec<Trajectory> = (0..n)
            .map(|i| {
                let x = (i % 5) as f64 * 100.0;
                Trajectory::from_xy(&[(x, 0.0), (x + 300.0, 50.0)])
            })
            .collect();
        let spec = GridSpec::new(BoundingBox::from_extent(1000.0, 1000.0), 500.0);
        let triplets = generate_triplets(&trajs, &spec, 100, seed);
        for (a, p, nn) in triplets {
            prop_assert_ne!(a, p);
            prop_assert_ne!(a, nn);
            prop_assert!(a < n && p < n && nn < n);
        }
    }
}
