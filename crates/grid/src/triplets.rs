//! Fast trajectory triplet generation (Section IV-F).
//!
//! Exact distances are too expensive to compute for a large corpus, but
//! the ranking-based hashing objective only needs *relative* supervision.
//! The paper's trick: convert trajectories to coarse (500 m) grid
//! trajectories and cluster the ones that share the same grid sequence —
//! within a cluster, the Fréchet distance is bounded by the cell size, so
//! any in-cluster pair is a safe (anchor, positive) and any out-of-cluster
//! trajectory is a safe negative.

use crate::grid::{GridSpec, GridTrajectory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use traj_data::Trajectory;

/// A triplet of corpus indices `(anchor, positive, negative)`.
pub type Triplet = (usize, usize, usize);

/// Clusters of corpus indices sharing the same canonical coarse grid
/// trajectory, plus summary statistics.
#[derive(Debug, Clone)]
pub struct GridClusters {
    /// Clusters with at least two members (usable for triplets).
    pub clusters: Vec<Vec<usize>>,
    /// Number of trajectories that ended up in singleton clusters.
    pub singletons: usize,
    /// Size of the largest cluster.
    pub max_cluster: usize,
}

/// Endpoint key of a bucket: the first and last cell coordinates of the
/// shared canonical grid trajectory, `(fx, fy, lx, ly)`.
pub type EndpointKey = (u32, u32, u32, u32);

/// Sentinel key for the (degenerate) bucket of empty trajectories.
const EMPTY_KEY: EndpointKey = (u32::MAX, u32::MAX, u32::MAX, u32::MAX);

/// Every coarse-grid bucket — singletons included, unlike
/// [`GridClusters`] — plus an endpoint-cell index so callers can gather
/// "this bucket and its spatial neighbors" as candidate sets. This is
/// the region-granularity first filter of the pruned exact-distance
/// pipeline: trajectories sharing (or bordering) start and end cells are
/// the most likely nearest neighbors, so they seed a tight top-k
/// threshold before the lower-bound sweep over everything else.
#[derive(Debug, Clone)]
pub struct GridBuckets {
    /// Member lists, each ascending, in deterministic bucket order.
    pub buckets: Vec<Vec<usize>>,
    /// Bucket id of each trajectory.
    pub bucket_of: Vec<usize>,
    keys: Vec<EndpointKey>,
    endpoint_index: HashMap<EndpointKey, Vec<usize>>,
    spec: GridSpec,
}

/// Groups trajectories into buckets by canonical coarse grid trajectory,
/// keeping every bucket (singletons included) and indexing buckets by
/// their endpoint cells.
pub fn bucket_by_grid(trajectories: &[Trajectory], spec: &GridSpec) -> GridBuckets {
    let mut map: HashMap<GridTrajectory, Vec<usize>> = HashMap::new();
    for (i, t) in trajectories.iter().enumerate() {
        map.entry(spec.canonical_grid_trajectory(t)).or_default().push(i);
    }
    // Deterministic ordering regardless of HashMap iteration order:
    // member lists are ascending and disjoint, so sorting by them totally
    // orders the buckets.
    let mut entries: Vec<(GridTrajectory, Vec<usize>)> = map.into_iter().collect();
    entries.sort_by(|a, b| a.1.cmp(&b.1));

    let mut buckets = Vec::with_capacity(entries.len());
    let mut keys = Vec::with_capacity(entries.len());
    let mut bucket_of = vec![usize::MAX; trajectories.len()];
    let mut endpoint_index: HashMap<EndpointKey, Vec<usize>> = HashMap::new();
    for (bi, (cells, members)) in entries.into_iter().enumerate() {
        let key = match (cells.first(), cells.last()) {
            (Some(&(fx, fy)), Some(&(lx, ly))) => (fx, fy, lx, ly),
            _ => EMPTY_KEY,
        };
        for &m in &members {
            bucket_of[m] = bi;
        }
        endpoint_index.entry(key).or_default().push(bi);
        keys.push(key);
        buckets.push(members);
    }
    GridBuckets { buckets, bucket_of, keys, endpoint_index, spec: spec.clone() }
}

impl GridBuckets {
    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Endpoint key of bucket `b`.
    pub fn bucket_key(&self, b: usize) -> EndpointKey {
        self.keys[b]
    }

    /// Endpoint key of an arbitrary trajectory under this bucketing's
    /// grid (the canonical grid trajectory keeps the first and last
    /// cells, so locating the endpoints directly is equivalent).
    pub fn endpoint_key(&self, t: &Trajectory) -> EndpointKey {
        if t.is_empty() {
            return EMPTY_KEY;
        }
        let (fx, fy) = self.spec.locate(t.first());
        let (lx, ly) = self.spec.locate(t.last());
        (fx, fy, lx, ly)
    }

    /// Bucket ids whose endpoint cells are each within Chebyshev
    /// distance 1 of `t`'s endpoint cells — `t`'s own bucket (if the
    /// trajectory came from this corpus) plus its spatial neighbors.
    /// Sorted ascending; deterministic.
    pub fn candidate_buckets(&self, t: &Trajectory) -> Vec<usize> {
        let key = self.endpoint_key(t);
        if key == EMPTY_KEY {
            return self.endpoint_index.get(&EMPTY_KEY).cloned().unwrap_or_default();
        }
        let (fx, fy, lx, ly) = key;
        let mut out = Vec::new();
        for dfx in -1i64..=1 {
            for dfy in -1i64..=1 {
                for dlx in -1i64..=1 {
                    for dly in -1i64..=1 {
                        let nf = (fx as i64 + dfx, fy as i64 + dfy);
                        let nl = (lx as i64 + dlx, ly as i64 + dly);
                        if nf.0 < 0 || nf.1 < 0 || nl.0 < 0 || nl.1 < 0 {
                            continue;
                        }
                        let probe =
                            // lint: allow(lossy-cast) — grid coordinates are bounded by the grid dimensions, far below 2^32
                            (nf.0 as u32, nf.1 as u32, nl.0 as u32, nl.1 as u32);
                        if let Some(ids) = self.endpoint_index.get(&probe) {
                            out.extend_from_slice(ids);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Groups trajectories by their canonical coarse grid trajectory.
pub fn cluster_by_grid(trajectories: &[Trajectory], spec: &GridSpec) -> GridClusters {
    let bucketing = bucket_by_grid(trajectories, spec);
    let mut clusters = Vec::new();
    let mut singletons = 0;
    let mut max_cluster = 0;
    for members in bucketing.buckets {
        max_cluster = max_cluster.max(members.len());
        if members.len() >= 2 {
            clusters.push(members);
        } else {
            singletons += 1;
        }
    }
    // Bucket order is already the sorted member-list order.
    GridClusters { clusters, singletons, max_cluster }
}

/// Generates up to `count` triplets from the clusters.
///
/// Anchors and positives are drawn from the same cluster, negatives
/// uniformly from the full corpus excluding the anchor's cluster. Returns
/// fewer triplets (possibly zero) if no cluster has two members.
pub fn generate_triplets(
    trajectories: &[Trajectory],
    spec: &GridSpec,
    count: usize,
    seed: u64,
) -> Vec<Triplet> {
    let clustering = cluster_by_grid(trajectories, spec);
    triplets_from_clusters(&clustering, trajectories.len(), count, seed)
}

/// Samples triplets given a precomputed clustering (exposed so harnesses
/// can report clustering statistics without re-clustering).
pub fn triplets_from_clusters(
    clustering: &GridClusters,
    corpus_size: usize,
    count: usize,
    seed: u64,
) -> Vec<Triplet> {
    if clustering.clusters.is_empty() || corpus_size < 3 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut in_cluster = vec![usize::MAX; corpus_size];
    for (ci, members) in clustering.clusters.iter().enumerate() {
        for &m in members {
            in_cluster[m] = ci;
        }
    }
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 10 {
        attempts += 1;
        let cluster = &clustering.clusters[rng.random_range(0..clustering.clusters.len())];
        let a = cluster[rng.random_range(0..cluster.len())];
        let mut p = cluster[rng.random_range(0..cluster.len())];
        if cluster.len() == 1 {
            continue;
        }
        while p == a {
            p = cluster[rng.random_range(0..cluster.len())];
        }
        // negative from outside the anchor's cluster
        let mut n = rng.random_range(0..corpus_size);
        let mut guard = 0;
        while in_cluster[n] == in_cluster[a] && guard < 100 {
            n = rng.random_range(0..corpus_size);
            guard += 1;
        }
        if in_cluster[n] == in_cluster[a] {
            continue;
        }
        out.push((a, p, n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{BoundingBox, CityGenerator, CityParams};

    fn coarse_spec(extent: f64, cell: f64) -> GridSpec {
        GridSpec::new(BoundingBox::from_extent(extent, extent), cell)
    }

    #[test]
    fn clusters_group_identical_grid_sequences() {
        let spec = coarse_spec(1000.0, 500.0);
        let trajs = vec![
            Trajectory::from_xy(&[(10.0, 10.0), (600.0, 80.0)]),
            Trajectory::from_xy(&[(450.0, 450.0), (990.0, 490.0)]), // same cells
            Trajectory::from_xy(&[(10.0, 900.0), (600.0, 900.0)]),  // different cells
        ];
        let c = cluster_by_grid(&trajs, &spec);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0], vec![0, 1]);
        assert_eq!(c.singletons, 1);
        assert_eq!(c.max_cluster, 2);
    }

    #[test]
    fn buckets_keep_singletons_and_agree_with_clusters() {
        let params = CityParams::test_city();
        let trajs = CityGenerator::new(params.clone(), 8).generate(200);
        let spec = coarse_spec(params.width, 500.0);
        let buckets = bucket_by_grid(&trajs, &spec);
        let clusters = cluster_by_grid(&trajs, &spec);
        // every trajectory belongs to exactly one bucket
        let mut seen = vec![false; trajs.len()];
        for (bi, members) in buckets.buckets.iter().enumerate() {
            assert!(!members.is_empty());
            for &m in members {
                assert!(!seen[m], "trajectory in two buckets");
                seen[m] = true;
                assert_eq!(buckets.bucket_of[m], bi);
            }
        }
        assert!(seen.iter().all(|&s| s));
        // clusters are exactly the multi-member buckets
        let multi: Vec<Vec<usize>> =
            buckets.buckets.iter().filter(|b| b.len() >= 2).cloned().collect();
        assert_eq!(clusters.clusters, multi);
        let singles = buckets.buckets.iter().filter(|b| b.len() == 1).count();
        assert_eq!(clusters.singletons, singles);
    }

    #[test]
    fn candidate_buckets_include_own_and_touching_neighbors() {
        let spec = coarse_spec(1000.0, 100.0);
        let trajs = vec![
            Trajectory::from_xy(&[(50.0, 50.0), (250.0, 50.0)]),  // cells (0,0)->(2,0)
            Trajectory::from_xy(&[(150.0, 50.0), (350.0, 50.0)]), // (1,0)->(3,0): both endpoints adjacent
            Trajectory::from_xy(&[(850.0, 850.0), (950.0, 950.0)]), // far away
        ];
        let buckets = bucket_by_grid(&trajs, &spec);
        let cands = buckets.candidate_buckets(&trajs[0]);
        assert!(cands.contains(&buckets.bucket_of[0]), "own bucket present");
        assert!(cands.contains(&buckets.bucket_of[1]), "adjacent-endpoint bucket present");
        assert!(!cands.contains(&buckets.bucket_of[2]), "distant bucket absent");
    }

    #[test]
    fn candidate_buckets_are_deterministic_and_sorted() {
        let params = CityParams::test_city();
        let trajs = CityGenerator::new(params.clone(), 11).generate(150);
        let spec = coarse_spec(params.width, 500.0);
        let buckets = bucket_by_grid(&trajs, &spec);
        for t in trajs.iter().take(20) {
            let a = buckets.candidate_buckets(t);
            let b = buckets.candidate_buckets(t);
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        }
    }

    #[test]
    fn triplets_have_valid_structure() {
        let params = CityParams::test_city();
        let trajs = CityGenerator::new(params.clone(), 8).generate(300);
        let spec = coarse_spec(params.width, 500.0);
        let triplets = generate_triplets(&trajs, &spec, 200, 1);
        assert!(!triplets.is_empty(), "synthetic corridors should produce clusters");
        let clustering = cluster_by_grid(&trajs, &spec);
        let mut cluster_of = vec![usize::MAX; trajs.len()];
        for (ci, members) in clustering.clusters.iter().enumerate() {
            for &m in members {
                cluster_of[m] = ci;
            }
        }
        for &(a, p, n) in &triplets {
            assert_ne!(a, p);
            assert_eq!(cluster_of[a], cluster_of[p], "anchor/positive share a cluster");
            assert_ne!(cluster_of[a], cluster_of[n], "negative is outside the cluster");
        }
    }

    #[test]
    fn triplets_are_deterministic_under_seed() {
        let trajs = CityGenerator::new(CityParams::test_city(), 9).generate(200);
        let spec = coarse_spec(2000.0, 500.0);
        let a = generate_triplets(&trajs, &spec, 50, 5);
        let b = generate_triplets(&trajs, &spec, 50, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn positive_is_closer_than_negative_under_frechet_mostly() {
        // The premise of the method: in-cluster pairs are closer than
        // out-of-cluster pairs for the vast majority of triplets.
        let params = CityParams::test_city();
        let trajs = CityGenerator::new(params.clone(), 10).generate(300);
        let spec = coarse_spec(params.width, 500.0);
        let triplets = generate_triplets(&trajs, &spec, 100, 2);
        assert!(!triplets.is_empty());
        let frechet = |a: &Trajectory, b: &Trajectory| -> f64 {
            // discrete Fréchet via DP (small inputs, test-only)
            let n = a.len();
            let m = b.len();
            let mut dp = vec![vec![f64::INFINITY; m]; n];
            for i in 0..n {
                for j in 0..m {
                    let d = a.points[i].distance(&b.points[j]);
                    dp[i][j] = if i == 0 && j == 0 {
                        d
                    } else {
                        let mut r = f64::INFINITY;
                        if i > 0 {
                            r = r.min(dp[i - 1][j]);
                        }
                        if j > 0 {
                            r = r.min(dp[i][j - 1]);
                        }
                        if i > 0 && j > 0 {
                            r = r.min(dp[i - 1][j - 1]);
                        }
                        r.max(d)
                    };
                }
            }
            dp[n - 1][m - 1]
        };
        let good = triplets
            .iter()
            .filter(|&&(a, p, n)| {
                frechet(&trajs[a], &trajs[p]) < frechet(&trajs[a], &trajs[n])
            })
            .count();
        assert!(
            good * 10 >= triplets.len() * 9,
            "only {good}/{} triplets are correctly ordered",
            triplets.len()
        );
    }

    #[test]
    fn empty_corpus_yields_no_triplets() {
        let spec = coarse_spec(1000.0, 500.0);
        assert!(generate_triplets(&[], &spec, 10, 0).is_empty());
    }
}
