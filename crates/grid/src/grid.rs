//! Uniform grid partitioning of the study space (Definition 2).

use traj_data::{BoundingBox, Point, Trajectory};

/// A uniform grid over a bounding box with square cells.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    bbox: BoundingBox,
    cell_size: f64,
    nx: usize,
    ny: usize,
}

/// A grid trajectory: the cell-coordinate sequence of a GPS trajectory.
pub type GridTrajectory = Vec<(u32, u32)>;

impl GridSpec {
    /// Creates a grid of `cell_size`-meter square cells covering `bbox`.
    ///
    /// # Panics
    /// Panics if `cell_size` is not positive or the box is degenerate.
    pub fn new(bbox: BoundingBox, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(bbox.width() > 0.0 && bbox.height() > 0.0, "degenerate bounding box");
        // lint: allow(lossy-cast) — positive finite cell count (bbox and cell size validated above)
        let nx = (bbox.width() / cell_size).ceil().max(1.0) as usize;
        // lint: allow(lossy-cast) — positive finite cell count (bbox and cell size validated above)
        let ny = (bbox.height() / cell_size).ceil().max(1.0) as usize;
        GridSpec { bbox, cell_size, nx, ny }
    }

    /// Number of cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Cell side length in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The covered bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Maps a point to its cell coordinates, clamping points outside the
    /// box onto the border cells.
    pub fn locate(&self, p: Point) -> (u32, u32) {
        let q = self.bbox.clamp(p);
        // lint: allow(lossy-cast) — clamped into the bbox, so the quotient is a nonnegative cell index
        let gx = ((q.x - self.bbox.min_x) / self.cell_size) as usize;
        // lint: allow(lossy-cast) — clamped into the bbox, so the quotient is a nonnegative cell index
        let gy = ((q.y - self.bbox.min_y) / self.cell_size) as usize;
        // lint: allow(lossy-cast) — min() bounds both coordinates by the grid dims, far below 2^32
        (gx.min(self.nx - 1) as u32, gy.min(self.ny - 1) as u32)
    }

    /// Flat cell id of cell coordinates.
    pub fn cell_id(&self, gx: u32, gy: u32) -> u64 {
        gy as u64 * self.nx as u64 + gx as u64
    }

    /// Inverse of [`GridSpec::cell_id`].
    pub fn cell_coords(&self, id: u64) -> (u32, u32) {
        // lint: allow(lossy-cast) — cell ids are < nx * ny, so both quotient and residue fit u32
        ((id % self.nx as u64) as u32, (id / self.nx as u64) as u32)
    }

    /// Center point of a cell.
    pub fn cell_center(&self, gx: u32, gy: u32) -> Point {
        Point::new(
            self.bbox.min_x + (gx as f64 + 0.5) * self.cell_size,
            self.bbox.min_y + (gy as f64 + 0.5) * self.cell_size,
        )
    }

    /// Maps a GPS trajectory to its grid trajectory, one cell per point.
    pub fn grid_trajectory(&self, t: &Trajectory) -> GridTrajectory {
        t.points.iter().map(|&p| self.locate(p)).collect()
    }

    /// Grid trajectory with consecutive duplicate cells collapsed — the
    /// canonical form used for coarse-grid clustering, so that sampling
    /// rate differences inside a cell do not break cluster membership.
    pub fn canonical_grid_trajectory(&self, t: &Trajectory) -> GridTrajectory {
        let mut out: GridTrajectory = Vec::with_capacity(t.len());
        for &p in &t.points {
            let cell = self.locate(p);
            if out.last() != Some(&cell) {
                out.push(cell);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::new(BoundingBox::from_extent(100.0, 50.0), 10.0)
    }

    #[test]
    fn dimensions() {
        let g = spec();
        assert_eq!(g.nx(), 10);
        assert_eq!(g.ny(), 5);
        assert_eq!(g.num_cells(), 50);
    }

    #[test]
    fn locate_inside_and_on_borders() {
        let g = spec();
        assert_eq!(g.locate(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.locate(Point::new(15.0, 25.0)), (1, 2));
        // the far border belongs to the last cell
        assert_eq!(g.locate(Point::new(100.0, 50.0)), (9, 4));
        // outside points clamp to the border cells
        assert_eq!(g.locate(Point::new(-5.0, 500.0)), (0, 4));
    }

    #[test]
    fn cell_id_roundtrip() {
        let g = spec();
        for gy in 0..5u32 {
            for gx in 0..10u32 {
                assert_eq!(g.cell_coords(g.cell_id(gx, gy)), (gx, gy));
            }
        }
    }

    #[test]
    fn cell_center_is_inside_cell() {
        let g = spec();
        let c = g.cell_center(3, 2);
        assert_eq!(g.locate(c), (3, 2));
    }

    #[test]
    fn grid_trajectory_length_matches() {
        let g = spec();
        let t = Trajectory::from_xy(&[(1.0, 1.0), (2.0, 2.0), (15.0, 1.0)]);
        assert_eq!(g.grid_trajectory(&t), vec![(0, 0), (0, 0), (1, 0)]);
        assert_eq!(g.canonical_grid_trajectory(&t), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn grid_cells_bound_frechet_within_cluster() {
        // Two trajectories with the same canonical grid sequence are
        // within one cell diagonal of each other under Fréchet — the
        // assumption behind the fast triplet generation (Section IV-F).
        let g = GridSpec::new(BoundingBox::from_extent(1000.0, 1000.0), 500.0);
        let a = Trajectory::from_xy(&[(10.0, 10.0), (600.0, 80.0)]);
        let b = Trajectory::from_xy(&[(450.0, 450.0), (990.0, 490.0)]);
        assert_eq!(g.canonical_grid_trajectory(&a), g.canonical_grid_trajectory(&b));
        let diag = (2.0f64).sqrt() * 500.0;
        let f = {
            // inline discrete Fréchet for 2-point trajectories
            let d00 = a.points[0].distance(&b.points[0]);
            let d11 = a.points[1].distance(&b.points[1]);
            d00.max(d11)
        };
        assert!(f <= diag);
    }
}
