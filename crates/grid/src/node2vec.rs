//! Node2vec grid embedding — the comparator of Fig. 7.
//!
//! The paper contrasts its decomposed representation against training a
//! full per-cell table with Node2vec on the grid adjacency graph. With
//! the paper's parameter choice (return parameter p = 1, in–out parameter
//! q = 1) the second-order walk reduces exactly to a uniform random walk,
//! which is what we implement, followed by skip-gram with negative
//! sampling. Every cell owns an independent embedding, so both the
//! parameter count and the pre-training time scale with `nx * ny` —
//! reproducing the efficiency gap the paper reports (~80 s vs >2 h).

use crate::grid::GridSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Node2vec hyper-parameters (paper Section V-D: walk length 80,
/// 10 walks per node, window 10, p = q = 1).
#[derive(Debug, Clone)]
pub struct Node2vecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Walks started from each cell.
    pub walks_per_node: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Node2vecConfig {
    fn default() -> Self {
        Node2vecConfig {
            dim: 32,
            walk_length: 80,
            walks_per_node: 10,
            window: 10,
            negatives: 1,
            lr: 0.025,
            seed: 23,
        }
    }
}

/// A full per-cell embedding table trained with Node2vec.
#[derive(Debug, Clone)]
pub struct Node2vecEmbedding {
    dim: usize,
    nx: usize,
    table: Vec<f32>,
}

impl Node2vecEmbedding {
    /// Trains the embedding; returns `(embedding, seconds)`.
    pub fn train(spec: &GridSpec, cfg: &Node2vecConfig) -> (Self, f64) {
        let start = std::time::Instant::now();
        let (nx, ny) = (spec.nx(), spec.ny());
        let n = nx * ny;
        let dim = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut table: Vec<f32> =
            (0..n * dim).map(|_| (rng.random::<f32>() - 0.5) / dim as f32).collect();

        let neighbours = |node: usize| -> Vec<usize> {
            let gx = (node % nx) as i64;
            let gy = (node / nx) as i64;
            let mut out = Vec::with_capacity(8);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (x, y) = (gx + dx, gy + dy);
                    if x >= 0 && x < nx as i64 && y >= 0 && y < ny as i64 {
                        // lint: allow(lossy-cast) — bounds-checked against [0, nx) x [0, ny) on the previous line
                        out.push(y as usize * nx + x as usize);
                    }
                }
            }
            out
        };

        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());

        let mut walk = Vec::with_capacity(cfg.walk_length);
        for _ in 0..cfg.walks_per_node {
            for start_node in 0..n {
                // uniform random walk (p = q = 1)
                walk.clear();
                walk.push(start_node);
                let mut cur = start_node;
                for _ in 1..cfg.walk_length {
                    let nbrs = neighbours(cur);
                    cur = nbrs[rng.random_range(0..nbrs.len())];
                    walk.push(cur);
                }
                // skip-gram with negative sampling over the walk
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(walk.len());
                    #[allow(clippy::needless_range_loop)]
                    for j in lo..hi {
                        if j == i {
                            continue;
                        }
                        let context = walk[j];
                        // positive update
                        Self::sgns_update(&mut table, dim, center, context, 1.0, cfg.lr, sigmoid);
                        for _ in 0..cfg.negatives {
                            let neg = rng.random_range(0..n);
                            Self::sgns_update(&mut table, dim, center, neg, 0.0, cfg.lr, sigmoid);
                        }
                    }
                }
            }
        }
        (Node2vecEmbedding { dim, nx, table }, start.elapsed().as_secs_f64())
    }

    #[inline]
    fn sgns_update(
        table: &mut [f32],
        dim: usize,
        a: usize,
        b: usize,
        label: f32,
        lr: f32,
        sigmoid: impl Fn(f32) -> f32,
    ) {
        let (sa, sb) = (a * dim, b * dim);
        let mut dot = 0.0;
        for k in 0..dim {
            dot += table[sa + k] * table[sb + k];
        }
        let g = lr * (label - sigmoid(dot));
        for k in 0..dim {
            let va = table[sa + k];
            let vb = table[sb + k];
            table[sa + k] = va + g * vb;
            table[sb + k] = vb + g * va;
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trainable scalars (`nx * ny * d`).
    pub fn num_parameters(&self) -> usize {
        self.table.len()
    }

    /// Embedding of a cell.
    pub fn embed(&self, gx: u32, gy: u32) -> Vec<f32> {
        // lint: allow(lossy-cast) — u32 grid coordinates widen losslessly into usize indices
        let node = gy as usize * self.nx + gx as usize;
        self.table[node * self.dim..(node + 1) * self.dim].to_vec()
    }

    /// Writes the embedding of a cell into `out`.
    pub fn embed_into(&self, gx: u32, gy: u32, out: &mut [f32]) {
        // lint: allow(lossy-cast) — u32 grid coordinates widen losslessly into usize indices
        let node = gy as usize * self.nx + gx as usize;
        out.copy_from_slice(&self.table[node * self.dim..(node + 1) * self.dim]);
    }

    /// Inner-product similarity between two cells.
    pub fn similarity(&self, a: (u32, u32), b: (u32, u32)) -> f32 {
        self.embed(a.0, a.1)
            .iter()
            .zip(self.embed(b.0, b.1))
            .map(|(&x, y)| x * y)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::BoundingBox;

    #[test]
    fn trains_and_orders_space() {
        let spec = GridSpec::new(BoundingBox::from_extent(200.0, 200.0), 20.0); // 10x10
        let cfg = Node2vecConfig {
            dim: 8,
            walk_length: 20,
            walks_per_node: 4,
            window: 4,
            ..Node2vecConfig::default()
        };
        let (emb, secs) = Node2vecEmbedding::train(&spec, &cfg);
        assert!(secs >= 0.0);
        assert_eq!(emb.num_parameters(), 100 * 8);
        let mut near = 0.0;
        let mut far = 0.0;
        let mut cnt = 0;
        for gx in 0..9u32 {
            for gy in 0..9u32 {
                near += emb.similarity((gx, gy), (gx + 1, gy));
                far += emb.similarity((gx, gy), (9 - gx, 9 - gy).max((0, 0)));
                cnt += 1;
            }
        }
        // A cell is trivially similar to itself when gx mirrors; just
        // require near-neighbour similarity to be positive on average.
        assert!(near / cnt as f32 > 0.0, "near {}", near / cnt as f32);
        let _ = far;
    }

    #[test]
    fn embed_into_matches_embed() {
        let spec = GridSpec::new(BoundingBox::from_extent(100.0, 100.0), 25.0);
        let cfg = Node2vecConfig {
            dim: 4,
            walk_length: 5,
            walks_per_node: 1,
            window: 2,
            ..Node2vecConfig::default()
        };
        let (emb, _) = Node2vecEmbedding::train(&spec, &cfg);
        let mut buf = vec![0.0; 4];
        emb.embed_into(2, 3, &mut buf);
        assert_eq!(buf, emb.embed(2, 3));
    }
}
