//! # traj-grid — grid machinery for Traj2Hash
//!
//! Uniform grid partitioning ([`GridSpec`], Definition 2), the
//! light-weight decomposed grid representation with NCE pre-training
//! ([`DecomposedGridEmbedding`], Section IV-C / Eq. 5–7), the Node2vec
//! comparator of Fig. 7, and the fast coarse-grid triplet generation of
//! Section IV-F.

#![warn(missing_docs)]

pub mod embedding;
pub mod grid;
pub mod node2vec;
pub mod triplets;

pub use embedding::{DecomposedGridEmbedding, GridEmbedding, NceConfig};
pub use grid::{GridSpec, GridTrajectory};
pub use node2vec::{Node2vecConfig, Node2vecEmbedding};
pub use triplets::{
    bucket_by_grid, cluster_by_grid, generate_triplets, EndpointKey, GridBuckets, GridClusters,
    Triplet,
};
