//! The light-weight decomposed grid representation (Section IV-C).
//!
//! Instead of one embedding per grid cell (`O(d * Ng^2)` parameters), each
//! cell `(x, y)` is represented as `e_g = e_x + e_y` (Eq. 5), reducing the
//! parameter count to `O(d * Ng)`. The embeddings are pre-trained with
//! noise contrastive estimation (Eq. 6): pull a sampled neighbour within
//! radius `r` (Eq. 7) closer in inner product, push a uniformly sampled
//! noise cell away. After pre-training, the table is frozen.
//!
//! The paper's raw NCE objective is unbounded (scaling all embeddings up
//! decreases it forever), so we keep its gradient but renormalize rows to
//! a maximum norm after each update — a standard stabilization that
//! preserves the learned directions.

use crate::grid::GridSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the NCE pre-training run.
#[derive(Debug, Clone)]
pub struct NceConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Neighbour radius `r` (cells). The paper uses 5.
    pub radius: u32,
    /// Number of sampled neighbours per anchor (`N_p`, paper: 1).
    pub positives: usize,
    /// Number of sampled noise cells per anchor (`N_n`, paper: 1).
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Full passes over the cell set.
    pub epochs: usize,
    /// Maximum row norm applied after each update.
    pub max_norm: f32,
    /// RNG seed.
    pub seed: u64,
}

/// Widens a `u32` grid coordinate into a row index.
#[inline]
fn gi(g: u32) -> usize {
    // lint: allow(lossy-cast) — u32 always fits usize on supported targets
    g as usize
}

impl Default for NceConfig {
    fn default() -> Self {
        NceConfig {
            dim: 32,
            radius: 5,
            positives: 1,
            negatives: 1,
            lr: 0.05,
            epochs: 3,
            max_norm: 1.0,
            seed: 17,
        }
    }
}

/// The decomposed per-axis embedding tables.
#[derive(Debug, Clone)]
pub struct DecomposedGridEmbedding {
    dim: usize,
    nx: usize,
    ny: usize,
    ex: Vec<f32>,
    ey: Vec<f32>,
}

impl DecomposedGridEmbedding {
    /// Random small initialization for a grid.
    pub fn init(spec: &GridSpec, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rand_table = |n: usize| -> Vec<f32> {
            (0..n * dim)
                .map(|_| (rng.random::<f32>() - 0.5) * 0.2)
                .collect()
        };
        DecomposedGridEmbedding {
            dim,
            nx: spec.nx(),
            ny: spec.ny(),
            ex: rand_table(spec.nx()),
            ey: rand_table(spec.ny()),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trainable scalars — `O(d * (nx + ny))`, the headline
    /// saving over a full per-cell table of `d * nx * ny`.
    pub fn num_parameters(&self) -> usize {
        self.ex.len() + self.ey.len()
    }

    /// The parameter count a full per-cell table would need.
    pub fn full_table_parameters(&self) -> usize {
        self.nx * self.ny * self.dim
    }

    /// Decomposes the embedding into raw parts
    /// `(dim, nx, ny, ex, ey)` for serialization (engine snapshots).
    pub fn raw_parts(&self) -> (usize, usize, usize, &[f32], &[f32]) {
        (self.dim, self.nx, self.ny, &self.ex, &self.ey)
    }

    /// Rebuilds an embedding from the parts returned by
    /// [`DecomposedGridEmbedding::raw_parts`], validating that the table
    /// lengths match `dim * nx` / `dim * ny`.
    pub fn from_raw_parts(
        dim: usize,
        nx: usize,
        ny: usize,
        ex: Vec<f32>,
        ey: Vec<f32>,
    ) -> Result<Self, String> {
        if ex.len() != dim * nx || ey.len() != dim * ny {
            return Err(format!(
                "grid table lengths ({}, {}) do not match dim {dim} x grid {nx}x{ny}",
                ex.len(),
                ey.len()
            ));
        }
        Ok(DecomposedGridEmbedding { dim, nx, ny, ex, ey })
    }

    fn ex_row(&self, gx: u32) -> &[f32] {
        let s = gi(gx) * self.dim;
        &self.ex[s..s + self.dim]
    }

    fn ey_row(&self, gy: u32) -> &[f32] {
        let s = gi(gy) * self.dim;
        &self.ey[s..s + self.dim]
    }

    /// The embedding of a cell: `e_g = e_x + e_y` (Eq. 5).
    pub fn embed(&self, gx: u32, gy: u32) -> Vec<f32> {
        self.ex_row(gx)
            .iter()
            .zip(self.ey_row(gy))
            .map(|(&a, &b)| a + b)
            .collect()
    }

    /// Writes the embedding of a cell into `out` (avoids allocation in
    /// hot encoding loops).
    pub fn embed_into(&self, gx: u32, gy: u32, out: &mut [f32]) {
        for ((o, &a), &b) in out.iter_mut().zip(self.ex_row(gx)).zip(self.ey_row(gy)) {
            *o = a + b;
        }
    }

    /// Inner-product similarity between two cells.
    pub fn similarity(&self, a: (u32, u32), b: (u32, u32)) -> f32 {
        self.embed(a.0, a.1)
            .iter()
            .zip(self.embed(b.0, b.1))
            .map(|(&x, y)| x * y)
            .sum()
    }

    fn renorm_row(row: &mut [f32], max_norm: f32) {
        let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > max_norm {
            let s = max_norm / norm;
            row.iter_mut().for_each(|x| *x *= s);
        }
    }

    /// Pre-trains the tables with NCE over every cell of the grid
    /// (Eq. 6–7) and returns the wall-clock seconds spent. The sampling
    /// of a neighbour exploits the decomposition: offsets `x_s, y_s` are
    /// drawn directly in `[-r, r]` (excluding the zero offset) without any
    /// graph walk, which is why this is orders of magnitude faster than
    /// Node2vec pre-training (Fig. 7 discussion).
    pub fn pretrain(&mut self, spec: &GridSpec, cfg: &NceConfig) -> f64 {
        assert_eq!(self.dim, cfg.dim, "config dim must match table dim");
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // lint: allow(lossy-cast) — grid dimensions are far below 2^32 (checked at GridSpec::new)
        let (nx, ny) = (spec.nx() as u32, spec.ny() as u32);
        let r = cfg.radius as i64;
        let dim = self.dim;
        let mut g_buf = vec![0.0f32; dim];
        let mut p_buf = vec![0.0f32; dim];
        let mut n_buf = vec![0.0f32; dim];
        for _ in 0..cfg.epochs {
            for gy in 0..ny {
                for gx in 0..nx {
                    for _ in 0..cfg.positives.max(cfg.negatives) {
                        // neighbour within radius r (Eq. 7, symmetric)
                        let (px, py) = loop {
                            let dx = rng.random_range(-r..=r);
                            let dy = rng.random_range(-r..=r);
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let px = gx as i64 + dx;
                            let py = gy as i64 + dy;
                            if px >= 0 && px < nx as i64 && py >= 0 && py < ny as i64 {
                                // lint: allow(lossy-cast) — bounds-checked against [0, nx) x [0, ny) on the previous line
                                break (px as u32, py as u32);
                            }
                        };
                        // noise cell: uniform over the grid, outside radius
                        let (qx, qy) = loop {
                            let qx = rng.random_range(0..nx);
                            let qy = rng.random_range(0..ny);
                            if (qx as i64 - gx as i64).abs() > r
                                || (qy as i64 - gy as i64).abs() > r
                            {
                                break (qx, qy);
                            }
                        };
                        self.embed_into(gx, gy, &mut g_buf);
                        self.embed_into(px, py, &mut p_buf);
                        self.embed_into(qx, qy, &mut n_buf);
                        // L = -e_g . e_p + e_g . e_n
                        // dL/de_g = -e_p + e_n ; dL/de_p = -e_g ; dL/de_n = e_g
                        let lr = cfg.lr;
                        for k in 0..dim {
                            let grad_g = -p_buf[k] + n_buf[k];
                            let grad_p = -g_buf[k];
                            let grad_n = g_buf[k];
                            // e_g = e_x[gx] + e_y[gy]: the gradient hits both.
                            self.ex[gi(gx) * dim + k] -= lr * grad_g;
                            self.ey[gi(gy) * dim + k] -= lr * grad_g;
                            self.ex[gi(px) * dim + k] -= lr * grad_p;
                            self.ey[gi(py) * dim + k] -= lr * grad_p;
                            self.ex[gi(qx) * dim + k] -= lr * grad_n;
                            self.ey[gi(qy) * dim + k] -= lr * grad_n;
                        }
                        for &(cx, _) in &[(gx, 0), (px, 0), (qx, 0)] {
                            Self::renorm_row(
                                &mut self.ex[gi(cx) * dim..(gi(cx) + 1) * dim],
                                cfg.max_norm,
                            );
                        }
                        for &(cy, _) in &[(gy, 0), (py, 0), (qy, 0)] {
                            Self::renorm_row(
                                &mut self.ey[gi(cy) * dim..(gi(cy) + 1) * dim],
                                cfg.max_norm,
                            );
                        }
                    }
                }
            }
        }
        start.elapsed().as_secs_f64()
    }
}

/// Anything that can embed a grid cell — implemented by the decomposed
/// representation and by the Node2vec full table, so the model's grid
/// channel can swap between them (Fig. 7 comparison).
pub trait GridEmbedding {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Writes the embedding of cell `(gx, gy)` into `out`.
    fn embed_into(&self, gx: u32, gy: u32, out: &mut [f32]);
    /// Number of trainable scalars (for parameter-count comparisons).
    fn num_parameters(&self) -> usize;
    /// The concrete decomposed tables behind this embedding, when it has
    /// them — the serializable representation engine snapshots persist.
    /// Defaults to `None` for providers (Node2vec) whose state is not
    /// snapshot-serializable.
    fn as_decomposed(&self) -> Option<&DecomposedGridEmbedding> {
        None
    }
}

impl GridEmbedding for DecomposedGridEmbedding {
    fn dim(&self) -> usize {
        DecomposedGridEmbedding::dim(self)
    }

    fn as_decomposed(&self) -> Option<&DecomposedGridEmbedding> {
        Some(self)
    }

    fn embed_into(&self, gx: u32, gy: u32, out: &mut [f32]) {
        DecomposedGridEmbedding::embed_into(self, gx, gy, out)
    }

    fn num_parameters(&self) -> usize {
        DecomposedGridEmbedding::num_parameters(self)
    }
}

impl GridEmbedding for crate::node2vec::Node2vecEmbedding {
    fn dim(&self) -> usize {
        crate::node2vec::Node2vecEmbedding::dim(self)
    }

    fn embed_into(&self, gx: u32, gy: u32, out: &mut [f32]) {
        crate::node2vec::Node2vecEmbedding::embed_into(self, gx, gy, out)
    }

    fn num_parameters(&self) -> usize {
        crate::node2vec::Node2vecEmbedding::num_parameters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::BoundingBox;

    fn spec() -> GridSpec {
        GridSpec::new(BoundingBox::from_extent(600.0, 600.0), 20.0) // 30x30
    }

    #[test]
    fn parameter_saving_is_large() {
        let s = spec();
        let e = DecomposedGridEmbedding::init(&s, 16, 1);
        assert_eq!(e.num_parameters(), (30 + 30) * 16);
        assert_eq!(e.full_table_parameters(), 900 * 16);
        assert!(e.num_parameters() * 10 < e.full_table_parameters());
    }

    #[test]
    fn neighbours_share_coordinate_embeddings_before_training() {
        // The paper's example: cells (3,5) and (3,6) share e_x[3], so they
        // are already similar without any training.
        let s = spec();
        let e = DecomposedGridEmbedding::init(&s, 16, 2);
        let same_col = e.similarity((3, 5), (3, 6));
        let far = e.similarity((3, 5), (25, 28));
        assert!(same_col > far, "shared-coordinate cells must be more similar");
    }

    #[test]
    fn pretraining_improves_spatial_ordering() {
        let s = spec();
        let mut e = DecomposedGridEmbedding::init(&s, 16, 3);
        let cfg = NceConfig { epochs: 5, ..NceConfig::default() };
        let cfg = NceConfig { dim: 16, ..cfg };
        e.pretrain(&s, &cfg);
        // Average similarity of adjacent cells must exceed that of
        // far-apart cells, over a sample.
        let mut near = 0.0f32;
        let mut far = 0.0f32;
        let mut count = 0;
        for gx in (1..29u32).step_by(3) {
            for gy in (1..29u32).step_by(3) {
                near += e.similarity((gx, gy), (gx + 1, gy));
                far += e.similarity((gx, gy), ((gx + 15) % 30, (gy + 15) % 30));
                count += 1;
            }
        }
        assert!(
            near / count as f32 > far / count as f32,
            "near {} vs far {}",
            near / count as f32,
            far / count as f32
        );
    }

    #[test]
    fn embed_into_matches_embed() {
        let s = spec();
        let e = DecomposedGridEmbedding::init(&s, 8, 4);
        let mut buf = vec![0.0; 8];
        e.embed_into(5, 7, &mut buf);
        assert_eq!(buf, e.embed(5, 7));
    }

    #[test]
    fn rows_respect_max_norm_after_training() {
        let s = spec();
        let mut e = DecomposedGridEmbedding::init(&s, 8, 5);
        let cfg = NceConfig { dim: 8, epochs: 2, max_norm: 1.0, ..NceConfig::default() };
        e.pretrain(&s, &cfg);
        for gx in 0..30u32 {
            let norm: f32 = e.ex_row(gx).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4);
        }
    }
}
