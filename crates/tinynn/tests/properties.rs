//! Property-based tests of the tensor algebra and autograd engine.

use proptest::prelude::*;
use tinynn::{Param, ParamSet, Tape, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        // A (B + C) == A B + A C
        let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        // (A B)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_is_involution(a in tensor_strategy(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        }
    }

    #[test]
    fn concat_slice_roundtrip(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(3, 2),
    ) {
        let c = a.concat_cols(&b);
        prop_assert_eq!(c.slice_cols(0, 4), a);
        prop_assert_eq!(c.slice_cols(4, 2), b);
    }

    #[test]
    fn distance_is_a_metric_on_vectors(
        a in tensor_strategy(1, 6),
        b in tensor_strategy(1, 6),
        c in tensor_strategy(1, 6),
    ) {
        let dab = a.distance(&b) as f64;
        let dba = b.distance(&a) as f64;
        prop_assert!((dab - dba).abs() < 1e-4);
        prop_assert!(a.distance(&a) < 1e-6);
        // triangle inequality
        let dac = a.distance(&c) as f64;
        let dcb = c.distance(&b) as f64;
        prop_assert!(dab <= dac + dcb + 1e-3);
    }

    #[test]
    fn autograd_linearity_of_scale(
        data in proptest::collection::vec(-3.0f32..3.0, 4),
        alpha in -4.0f32..4.0,
    ) {
        // d/dx sum(alpha * x) == alpha everywhere
        let mut params = ParamSet::new();
        let p = params.register(Param::new(Tensor::from_vec(1, 4, data)));
        let tape = Tape::new();
        let v = tape.param(&p);
        v.scale(alpha).sum_all().backward();
        for &g in p.borrow().grad.data() {
            prop_assert!((g - alpha).abs() < 1e-5);
        }
    }

    #[test]
    fn autograd_chain_rule_square_of_sum(
        data in proptest::collection::vec(-2.0f32..2.0, 3),
    ) {
        // f = (sum x)^2 ; df/dx_i = 2 * sum x
        let total: f32 = data.iter().sum();
        let mut params = ParamSet::new();
        let p = params.register(Param::new(Tensor::from_vec(1, 3, data)));
        let tape = Tape::new();
        let v = tape.param(&p);
        v.sum_all().square().backward();
        for &g in p.borrow().grad.data() {
            prop_assert!((g - 2.0 * total).abs() < 1e-3,
                "grad {} expected {}", g, 2.0 * total);
        }
    }

    #[test]
    fn gather_then_sum_matches_row_sums(
        data in proptest::collection::vec(-5.0f32..5.0, 12),
        idx in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let t = Tensor::from_vec(4, 3, data);
        let tape = Tape::new();
        let v = tape.constant(t.clone());
        let gathered = v.gather_rows(&idx).value();
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(gathered.row(r), t.row(i));
        }
    }

    #[test]
    fn param_save_load_is_identity(
        data in proptest::collection::vec(-100.0f32..100.0, 6),
    ) {
        let mut set = ParamSet::new();
        let p = set.register(Param::new(Tensor::from_vec(2, 3, data.clone())));
        let blob = set.save_bytes();
        p.borrow_mut().value.zero_out();
        set.load_bytes(&blob).unwrap();
        let restored = p.value();
        prop_assert_eq!(restored.data(), &data[..]);
    }
}
