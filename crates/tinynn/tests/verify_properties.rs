//! Property-based tests of the static tape verifier (`tinynn::verify`).
//!
//! The contract under test: any tape the op builders can actually
//! record is internally consistent (verifies clean), and any single
//! metadata corruption — a drifted recorded shape or a severed edge —
//! is always reported before `backward` would run.

use proptest::prelude::*;
use tinynn::{verify_tape, Param, Tape, Tensor, Var};

/// Builds a random-but-valid op chain: start from one trained param,
/// apply `ops` (each keeps the graph well-formed), reduce to a scalar.
/// Returns the tape, the scalar root, and the params that must all be
/// reachable from it.
fn build_chain(ops: &[u8], rows: usize, cols: usize) -> (Tape, Var, Vec<Param>) {
    let tape = Tape::new();
    let p = Param::new(Tensor::from_vec(rows, cols, vec![0.5; rows * cols]));
    let mut v = tape.param(&p);
    for &op in ops {
        let (r, c) = v.shape();
        v = match op % 9 {
            0 => v.relu(),
            1 => v.tanh(),
            2 => v.sigmoid(),
            3 => v.square(),
            4 => v.scale(0.5),
            5 => v.add_scalar(0.25),
            6 => v.add(&v),
            7 => v.transpose(),
            _ => {
                let w = tape.constant(Tensor::from_vec(c, 2, vec![0.1; c * 2]));
                let _ = r;
                v.matmul(&w)
            }
        };
    }
    let loss = v.sum_all();
    (tape, loss, vec![p])
}

fn chain_strategy() -> impl Strategy<Value = (Vec<u8>, usize, usize)> {
    (proptest::collection::vec(0u8..9, 1..10), 1usize..5, 1usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_recorded_tape_verifies_clean(chain in chain_strategy()) {
        let (ops, rows, cols) = chain;
        let (tape, loss, _params) = build_chain(&ops, rows, cols);
        let report = verify_tape(&tape, &loss);
        prop_assert!(report.is_ok(), "valid tape rejected: {report}");
        // A straight chain has no dead subgraphs either.
        prop_assert!(report.dead_nodes.is_empty(), "spurious dead nodes: {report}");
        prop_assert_eq!(report.nodes_checked, tape.len());
    }

    #[test]
    fn a_mutated_recorded_shape_is_always_reported(
        chain in chain_strategy(),
        pick in 0usize..64,
    ) {
        let (ops, rows, cols) = chain;
        let (tape, loss, _params) = build_chain(&ops, rows, cols);
        let victim = pick % tape.len();
        let (r, c) = tape.node_value_shape(victim);
        // Any shape that disagrees with the stored value must surface as
        // drift, whichever node (leaf, interior, or root) it lands on.
        tape.debug_set_node_shape(victim, (r + 7, c + 9));
        let report = verify_tape(&tape, &loss);
        prop_assert!(!report.is_ok(), "shape corruption on node {victim} went unreported");
    }

    #[test]
    fn a_severed_edge_is_always_reported(
        chain in chain_strategy(),
        pick in 0usize..64,
    ) {
        let (ops, rows, cols) = chain;
        let (tape, loss, _params) = build_chain(&ops, rows, cols);
        // Re-point some op's first input at itself: backward edges must
        // strictly decrease, so this is never legal.
        let with_inputs: Vec<usize> =
            (0..tape.len()).filter(|&id| !tape.node_meta(id).inputs().is_empty()).collect();
        prop_assert!(!with_inputs.is_empty());
        let victim = with_inputs[pick % with_inputs.len()];
        tape.debug_set_node_input(victim, 0, victim);
        let report = verify_tape(&tape, &loss);
        prop_assert!(!report.is_ok(), "severed edge on node {victim} went unreported");
    }

    #[test]
    fn a_forgotten_param_is_always_reported(chain in chain_strategy()) {
        let (ops, rows, cols) = chain;
        let (tape, loss, _params) = build_chain(&ops, rows, cols);
        // A param registered on the tape but never used in the loss is a
        // silent no-grad bug; the verifier must flag it.
        let orphan = Param::new(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let _unused = tape.param(&orphan);
        let report = verify_tape(&tape, &loss);
        prop_assert!(!report.is_ok(), "forgotten param went unreported");
        prop_assert!(
            report.issues.iter().any(|i| matches!(i, tinynn::GraphIssue::UnreachableParam { .. })),
            "expected UnreachableParam in {report}"
        );
    }
}
