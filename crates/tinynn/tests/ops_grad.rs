//! Numerical gradient checks for individual ops that the in-crate
//! gradcheck tests don't exercise directly.

use tinynn::gradcheck::check_gradients;
use tinynn::{init, Param, ParamSet, Tape, Tensor};
use rand::{rngs::StdRng, SeedableRng};

fn check(build: impl Fn(&Tape, &tinynn::Var) -> tinynn::Var, init_val: Tensor) {
    let mut params = ParamSet::new();
    let p = params.register(Param::new(init_val));
    let bad = check_gradients(
        &params,
        || {
            let tape = Tape::new();
            let v = tape.param(&p);
            let loss = build(&tape, &v);
            loss.backward();
            loss.item()
        },
        1e-3,
        3e-2,
    );
    assert!(bad.is_empty(), "gradient mismatches: {bad:?}");
}

#[test]
fn grad_div() {
    let mut rng = StdRng::seed_from_u64(1);
    let denom = init::uniform(&mut rng, 2, 3, 1.0, 3.0);
    check(
        move |tape, v| {
            let d = tape.constant(denom.clone());
            v.div(&d).sum_all()
        },
        init::uniform(&mut StdRng::seed_from_u64(2), 2, 3, -2.0, 2.0),
    );
}

#[test]
fn grad_exp_ln_composite() {
    check(
        |_tape, v| v.exp().add_scalar(1.0).ln().sum_all(),
        init::uniform(&mut StdRng::seed_from_u64(3), 1, 4, -1.0, 1.0),
    );
}

#[test]
fn grad_sigmoid() {
    check(
        |_tape, v| v.sigmoid().square().sum_all(),
        init::uniform(&mut StdRng::seed_from_u64(4), 2, 2, -2.0, 2.0),
    );
}

#[test]
fn grad_sqrt_of_positive() {
    check(
        |_tape, v| v.square().add_scalar(0.5).sqrt().sum_all(),
        init::uniform(&mut StdRng::seed_from_u64(5), 1, 5, -2.0, 2.0),
    );
}

#[test]
fn grad_add_row_broadcast() {
    let mut rng = StdRng::seed_from_u64(6);
    let x = init::uniform(&mut rng, 4, 3, -1.0, 1.0);
    check(
        move |tape, v| {
            let xs = tape.constant(x.clone());
            xs.add_row(v).square().mean_all()
        },
        init::uniform(&mut StdRng::seed_from_u64(7), 1, 3, -1.0, 1.0),
    );
}

#[test]
fn grad_mean_rows_and_select() {
    check(
        |_tape, v| {
            let pooled = v.mean_rows();
            let first = v.select_row(0);
            pooled.add(&first).square().sum_all()
        },
        init::uniform(&mut StdRng::seed_from_u64(8), 3, 4, -1.0, 1.0),
    );
}

#[test]
fn grad_concat_rows_path() {
    check(
        |_tape, v| {
            let doubled = v.concat_rows(v);
            doubled.tanh().mean_all()
        },
        init::uniform(&mut StdRng::seed_from_u64(9), 2, 3, -1.0, 1.0),
    );
}

#[test]
fn grad_dot_and_distance() {
    let mut rng = StdRng::seed_from_u64(10);
    let other = init::uniform(&mut rng, 1, 4, -1.0, 1.0);
    let o2 = other.clone();
    check(
        move |tape, v| {
            let w = tape.constant(o2.clone());
            v.dot(&w).square().add(&v.distance(&w).square()).sum_all()
        },
        init::uniform(&mut StdRng::seed_from_u64(11), 1, 4, 1.0, 2.0),
    );
    drop(other);
}

#[test]
fn grad_layer_norm() {
    use tinynn::LayerNorm;
    let mut params = ParamSet::new();
    let ln = LayerNorm::new(&mut params, 4);
    let p = params.register(Param::new(init::uniform(
        &mut StdRng::seed_from_u64(12),
        3,
        4,
        -2.0,
        2.0,
    )));
    let bad = check_gradients(
        &params,
        || {
            let tape = Tape::new();
            let v = tape.param(&p);
            let loss = ln.forward(&tape, &v).square().mean_all();
            loss.backward();
            loss.item()
        },
        1e-3,
        5e-2,
    );
    assert!(bad.is_empty(), "LayerNorm gradient mismatches: {bad:?}");
}

#[test]
fn layer_norm_output_is_standardized_with_default_params() {
    use tinynn::LayerNorm;
    let mut params = ParamSet::new();
    let ln = LayerNorm::new(&mut params, 8);
    let tape = Tape::new();
    let x = tape.constant(init::uniform(
        &mut StdRng::seed_from_u64(13),
        4,
        8,
        -5.0,
        5.0,
    ));
    let y = ln.forward(&tape, &x).value();
    for r in 0..4 {
        let row = y.row(r);
        let mean: f32 = row.iter().sum::<f32>() / 8.0;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-4, "row mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "row var {var}");
    }
}
