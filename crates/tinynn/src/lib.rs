//! # tinynn — a minimal CPU neural-network substrate
//!
//! The Traj2Hash paper trains its models with PyTorch on a GPU; this
//! reproduction replaces that stack with a small, dependency-light,
//! pure-Rust library providing exactly what the paper's equations need:
//!
//! * [`Tensor`] — dense row-major `f32` matrices,
//! * [`Tape`] / [`Var`] — reverse-mode automatic differentiation,
//! * [`Param`] / [`ParamSet`] — shared trainable parameters with
//!   save/load,
//! * layers ([`Linear`], [`Mlp`], [`Embedding`],
//!   [`MultiHeadSelfAttention`], [`EncoderBlock`], [`GruCell`],
//!   [`positional_encoding`]),
//! * optimizers ([`Sgd`], [`Adam`]) and gradient clipping,
//! * [`gradcheck`] utilities used by the test-suite to validate every
//!   backward implementation numerically.
//!
//! The design keeps every tensor two-dimensional; sequence models process
//! one trajectory at a time, which is both simple and fast enough for the
//! scaled-down experiments this repository runs.

#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod optim;
pub mod param;
pub mod sync;
pub mod tape;
pub mod tensor;
pub mod verify;

pub use layers::{
    add_positional, positional_encoding, Embedding, EncoderBlock, GruCell, LayerNorm, Linear,
    Mlp, MultiHeadSelfAttention,
};
pub use optim::{clip_grad_norm, Adam, Sgd};
pub use param::{Param, ParamSet};
pub use tape::{NodeMeta, Op, Tape, Var};
pub use tensor::Tensor;
pub use verify::{verify_tape, GraphIssue, GraphReport};
