//! Dense, row-major, 2-D `f32` tensors.
//!
//! Everything in this reproduction is expressible with matrices: a
//! trajectory of `n` points embedded in `d` dimensions is an `n x d`
//! tensor, a single vector is `1 x d`, and a scalar is `1 x 1`. Fixing the
//! rank to two keeps the kernel code simple and auditable while covering
//! every equation in the paper.

use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from a row-major data buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates an all-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a `1 x d` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The single value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other` (identical shapes).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (identical shapes).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale by a scalar.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fill with zeros, keeping the allocation.
    pub fn zero_out(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix multiplication `self (n x m) * other (m x p) -> n x p`.
    ///
    /// A straightforward ikj-ordered kernel; the inner loop is over
    /// contiguous memory in both the right operand and the output, which
    /// lets LLVM vectorize it.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, m, p) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * p];
        for i in 0..n {
            let a_row = &self.data[i * m..(i + 1) * m];
            let out_row = &mut out[i * p..(i + 1) * p];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * p..(k + 1) * p];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor { rows: n, cols: p, data: out }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor { rows: self.cols, cols: self.rows, data: out }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Euclidean distance between two equally shaped tensors.
    pub fn squared_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "squared_distance shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance between two equally shaped tensors.
    pub fn distance(&self, other: &Tensor) -> f32 {
        self.squared_distance(other).sqrt()
    }

    /// Concatenate horizontally: `n x a` ++ `n x b` -> `n x (a+b)`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor { rows: self.rows, cols, data }
    }

    /// Concatenate vertically: `a x d` ++ `b x d` -> `(a+b) x d`.
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "slice_rows out of range");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Tensor { rows: len, cols: self.cols, data }
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            let base = r * self.cols + start;
            data.extend_from_slice(&self.data[base..base + len]);
        }
        Tensor { rows: self.rows, cols: len, data }
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
        out
    }

    /// Mean of every row: `n x d` -> `1 x d`.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows > 0, "mean_rows on an empty tensor");
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor { rows: 1, cols: self.cols, data: out }
    }

    /// True if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another tensor of equal shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let id = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // softmax is monotone within a row
        assert!(s.get(0, 0) < s.get(0, 1) && s.get(0, 1) < s.get(0, 2));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(a.softmax_rows().max_abs_diff(&b.softmax_rows()) < 1e-6);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 1, vec![5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 1), b);

        let d = a.concat_rows(&a);
        assert_eq!(d.shape(), (4, 2));
        assert_eq!(d.slice_rows(2, 2), a);
    }

    #[test]
    fn mean_rows_known() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = a.mean_rows();
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let a = Tensor::row_vector(&[0.0, 0.0]);
        let b = Tensor::row_vector(&[3.0, 4.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-6);
        assert!((a.squared_distance(&b) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }
}
