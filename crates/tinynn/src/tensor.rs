//! Dense, row-major, 2-D `f32` tensors.
//!
//! Everything in this reproduction is expressible with matrices: a
//! trajectory of `n` points embedded in `d` dimensions is an `n x d`
//! tensor, a single vector is `1 x d`, and a scalar is `1 x 1`. Fixing the
//! rank to two keeps the kernel code simple and auditable while covering
//! every equation in the paper.

use std::fmt;

/// Dot product of two equal-length slices over eight independent
/// accumulator lanes. A single-accumulator reduction is a serial
/// dependency chain the compiler must not reorder (float addition is not
/// associative), so it executes one scalar FMA per cycle at best; eight
/// explicit lanes give the auto-vectorizer a legal width-8 reduction.
/// The lane combination order is fixed, so results are deterministic.
#[inline]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let av = &a[c * 8..c * 8 + 8];
        let bv = &b[c * 8..c * 8 + 8];
        for l in 0..8 {
            lanes[l] += av[l] * bv[l];
        }
    }
    let mut sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for k in chunks * 8..a.len() {
        sum += a[k] * b[k];
    }
    sum
}

/// Maximum of a slice over eight independent lanes (serial `fold` with
/// `f32::max` is a latency chain; max is order-independent so laning is
/// exact, not just deterministic).
#[inline]
fn max_lanes(v: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; 8];
    let chunks = v.len() / 8;
    for c in 0..chunks {
        let cv = &v[c * 8..c * 8 + 8];
        for l in 0..8 {
            lanes[l] = lanes[l].max(cv[l]);
        }
    }
    let mut m = lanes.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for &x in &v[chunks * 8..] {
        m = m.max(x);
    }
    m
}

/// Branch-free `exp` with ~3e-7 relative error, written so the
/// auto-vectorizer can apply it lane-wise across a row (`f32::exp` calls
/// into libm and keeps softmax scalar). Splits `x = k ln2 + f` with
/// `|f| <= ln2 / 2` and evaluates a degree-5 Taylor polynomial for
/// `e^f`, then scales by `2^k` through the exponent bits. Deterministic;
/// inputs are clamped to the finite range so the bit shift cannot
/// overflow.
#[inline]
fn exp_approx(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    const LN_2: f32 = std::f32::consts::LN_2;
    // Round-to-nearest without `floor()`: on baseline x86-64 (SSE2)
    // `f32::floor` is a libm call, which would block vectorization of
    // every caller loop. Adding and subtracting 1.5 * 2^23 snaps the
    // value to an integer via the float rounding mode; exact for
    // |t| < 2^22, and t = x log2(e) is within [-126, 127] here.
    const MAGIC: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let k = (x * LOG2_E + MAGIC) - MAGIC;
    let f = x - k * LN_2;
    // e^f for |f| <= ln2/2 ~ 0.347: degree-5 Taylor, max rel. err ~2e-7.
    let p = 1.0
        + f * (1.0 + f * (0.5 + f * (1.0 / 6.0 + f * (1.0 / 24.0 + f * (1.0 / 120.0)))));
    // lint: allow(lossy-cast) — k is a clamped f32 exponent in [-126, 127]; biased value fits 8 bits
    let scale = f32::from_bits(((k as i32 + 127) as u32) << 23);
    scale * p
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from a row-major data buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates an all-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a `1 x d` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The single value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other` (identical shapes).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (identical shapes).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale by a scalar.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fill with zeros, keeping the allocation.
    pub fn zero_out(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix multiplication `self (n x m) * other (m x p) -> n x p`.
    ///
    /// Blocked ikj kernel: the reduction dimension is tiled so the active
    /// rows of the right operand stay resident in L1/L2 across all rows
    /// of the output, and the inner loop runs over contiguous memory in
    /// both the right operand and the output, which lets LLVM vectorize
    /// it. For a fixed output cell, contributions are accumulated in
    /// ascending `k` regardless of the tile size, so results are
    /// bit-identical to the untiled kernel.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        // Tile height of the right-operand panel; 64 rows of up to ~256
        // f32 columns keep the panel within a typical 64 KiB L1.
        const KC: usize = 64;
        let (n, m, p) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * p];
        for kb in (0..m).step_by(KC) {
            let kend = (kb + KC).min(m);
            for i in 0..n {
                let a_row = &self.data[i * m + kb..i * m + kend];
                let out_row = &mut out[i * p..(i + 1) * p];
                for (k, &a) in a_row.iter().enumerate() {
                    let b_row = &other.data[(kb + k) * p..(kb + k + 1) * p];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        Tensor { rows: n, cols: p, data: out }
    }

    /// `self (n x m) * other^T (m x p, given as p x m) -> n x p`.
    ///
    /// The right operand is supplied already transposed (packed row-major
    /// by output column), turning every output cell into a dot product of
    /// two contiguous rows. This is the backward-pass kernel for
    /// `dL/dA = G * B^T` (and the attention-score kernel `Q * K^T`): it
    /// reads `B` directly instead of materializing `B^T` on every call.
    /// Each dot product reduces over eight independent lanes (see
    /// [`dot_lanes`]) so the reduction vectorizes; the result is
    /// deterministic but may differ from `self.matmul(&other_t.transpose())`
    /// in the last ulp because the summation groups differently.
    pub fn matmul_transposed(&self, other_t: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other_t.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other_t.rows, other_t.cols
        );
        let (n, m, p) = (self.rows, self.cols, other_t.rows);
        let mut out = vec![0.0f32; n * p];
        for i in 0..n {
            let a_row = &self.data[i * m..(i + 1) * m];
            let out_row = &mut out[i * p..(i + 1) * p];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot_lanes(a_row, &other_t.data[j * m..(j + 1) * m]);
            }
        }
        Tensor { rows: n, cols: p, data: out }
    }

    /// `self^T (m x n, given as n x m) * other (n x p) -> m x p`.
    ///
    /// The left operand is read directly in its untransposed layout via
    /// outer-product accumulation (for each shared row `i`, `out[k] +=
    /// a[i][k] * g[i]`), so the backward-pass kernel for `dL/dB = A^T * G`
    /// never materializes `A^T`. Contributions accumulate in ascending
    /// `i`, matching `self.transpose().matmul(other)` bit for bit.
    pub fn transposed_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, m, p) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * p];
        for i in 0..n {
            let a_row = &self.data[i * m..(i + 1) * m];
            let g_row = &other.data[i * p..(i + 1) * p];
            for (k, &a) in a_row.iter().enumerate() {
                let out_row = &mut out[k * p..(k + 1) * p];
                for (o, &g) in out_row.iter_mut().zip(g_row) {
                    *o += a * g;
                }
            }
        }
        Tensor { rows: m, cols: p, data: out }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor { rows: self.cols, cols: self.rows, data: out }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Euclidean distance between two equally shaped tensors.
    pub fn squared_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "squared_distance shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance between two equally shaped tensors.
    pub fn distance(&self, other: &Tensor) -> f32 {
        self.squared_distance(other).sqrt()
    }

    /// Concatenate horizontally: `n x a` ++ `n x b` -> `n x (a+b)`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor { rows: self.rows, cols, data }
    }

    /// Concatenate vertically: `a x d` ++ `b x d` -> `(a+b) x d`.
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "slice_rows out of range");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Tensor { rows: len, cols: self.cols, data }
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            let base = r * self.cols + start;
            data.extend_from_slice(&self.data[base..base + len]);
        }
        Tensor { rows: self.rows, cols: len, data }
    }

    /// Row-wise softmax.
    ///
    /// Attention computes a softmax over every `n x n` score matrix, so
    /// this kernel avoids the two scalar-latency traps of the naive
    /// loop: libm `exp` (replaced by the vectorizable [`exp_approx`],
    /// ~3e-7 relative error) and serial max/sum reduction chains
    /// (replaced by eight-lane folds like [`dot_lanes`]).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = max_lanes(row);
            let mut sum_acc = [0.0f32; 8];
            let chunks = row.len() / 8;
            for c in 0..chunks {
                let v = &mut row[c * 8..c * 8 + 8];
                for l in 0..8 {
                    v[l] = exp_approx(v[l] - max);
                    sum_acc[l] += v[l];
                }
            }
            let mut sum = ((sum_acc[0] + sum_acc[4]) + (sum_acc[2] + sum_acc[6]))
                + ((sum_acc[1] + sum_acc[5]) + (sum_acc[3] + sum_acc[7]));
            for x in &mut row[chunks * 8..] {
                *x = exp_approx(*x - max);
                sum += *x;
            }
            if sum > 0.0 {
                let inv = 1.0 / sum;
                for x in row.iter_mut() {
                    *x *= inv;
                }
            }
        }
        out
    }

    /// Mean of every row: `n x d` -> `1 x d`.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows > 0, "mean_rows on an empty tensor");
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor { rows: 1, cols: self.cols, data: out }
    }

    /// True if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another tensor of equal shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let id = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.7 - 3.0).collect());
        let b = Tensor::from_vec(4, 5, (0..20).map(|i| (i as f32).sin()).collect());
        let direct = a.matmul(&b);
        let packed = a.matmul_transposed(&b.transpose());
        assert!(
            direct.max_abs_diff(&packed) < 1e-5,
            "packed kernel must match the plain matmul (lane reduction \
             may differ in the last ulp)"
        );
    }

    #[test]
    fn lane_dot_reduces_long_rows_correctly() {
        // 67 elements: 8 full lanes-of-8 plus a 3-element tail.
        let a = Tensor::from_vec(1, 67, (0..67).map(|i| (i as f32 * 0.37).sin()).collect());
        let b = Tensor::from_vec(1, 67, (0..67).map(|i| (i as f32 * 0.11).cos()).collect());
        let got = a.matmul_transposed(&b).get(0, 0) as f64;
        let want: f64 = (0..67)
            .map(|i| a.get(0, i) as f64 * b.get(0, i) as f64)
            .sum();
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
    }

    #[test]
    fn softmax_exp_is_close_to_libm() {
        // softmax built on exp_approx must stay within float tolerance
        // of the libm-exp reference across a wide input range.
        let vals: Vec<f32> = (-60..=60).map(|i| i as f32 * 0.7).collect();
        let n = vals.len();
        let t = Tensor::from_vec(1, n, vals.clone());
        let s = t.softmax_rows();
        let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = vals.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for (i, e) in exps.iter().enumerate() {
            let want = (e / sum) as f32;
            assert!(
                (s.get(0, i) - want).abs() <= 2e-6 * want.max(1e-3),
                "softmax[{i}] = {} vs libm {}",
                s.get(0, i),
                want
            );
        }
    }

    #[test]
    fn transposed_matmul_matches_explicit_transpose() {
        let a = Tensor::from_vec(5, 3, (0..15).map(|i| (i as f32).cos()).collect());
        let g = Tensor::from_vec(5, 4, (0..20).map(|i| i as f32 * 0.1 - 1.0).collect());
        let direct = a.transpose().matmul(&g);
        let fused = a.transposed_matmul(&g);
        assert_eq!(direct, fused, "outer-product kernel must be bit-identical");
    }

    #[test]
    fn matmul_blocking_covers_tall_reductions() {
        // Reduction dimension longer than one tile exercises the k-blocking.
        let a = Tensor::from_vec(2, 150, (0..300).map(|i| ((i % 7) as f32) - 3.0).collect());
        let b = Tensor::from_vec(150, 3, (0..450).map(|i| ((i % 5) as f32) * 0.25).collect());
        let c = a.matmul(&b);
        // reference: naive triple loop in f64 for a tight tolerance
        for i in 0..2 {
            for j in 0..3 {
                let mut acc = 0.0f64;
                for k in 0..150 {
                    acc += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                assert!((c.get(i, j) as f64 - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // softmax is monotone within a row
        assert!(s.get(0, 0) < s.get(0, 1) && s.get(0, 1) < s.get(0, 2));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(a.softmax_rows().max_abs_diff(&b.softmax_rows()) < 1e-6);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 1, vec![5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 1), b);

        let d = a.concat_rows(&a);
        assert_eq!(d.shape(), (4, 2));
        assert_eq!(d.slice_rows(2, 2), a);
    }

    #[test]
    fn mean_rows_known() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = a.mean_rows();
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let a = Tensor::row_vector(&[0.0, 0.0]);
        let b = Tensor::row_vector(&[3.0, 4.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-6);
        assert!((a.squared_distance(&b) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }
}
