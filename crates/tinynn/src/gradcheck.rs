//! Numerical gradient checking for autograd correctness tests.

use crate::param::ParamSet;

/// Result of a gradient check for one parameter element.
#[derive(Debug, Clone, Copy)]
pub struct GradMismatch {
    /// Index of the parameter in the set.
    pub param: usize,
    /// Flat element index within the parameter.
    pub element: usize,
    /// Analytic gradient from backward().
    pub analytic: f32,
    /// Central-difference numerical estimate.
    pub numeric: f32,
}

/// Compares analytic gradients against central differences.
///
/// `f` must run a full forward+backward pass (accumulating gradients into
/// the parameters) and return the loss value. It is called `2 * n + 1`
/// times where `n` is the total number of scalar parameters, so only use
/// this with small models in tests.
///
/// Returns all elements whose relative error exceeds `tol`.
pub fn check_gradients(
    params: &ParamSet,
    mut f: impl FnMut() -> f32,
    eps: f32,
    tol: f32,
) -> Vec<GradMismatch> {
    params.zero_grad();
    let _ = f();
    // Snapshot analytic gradients.
    let analytic: Vec<Vec<f32>> = params
        .iter()
        .map(|p| p.borrow().grad.data().to_vec())
        .collect();

    let mut mismatches = Vec::new();
    for (pi, p) in params.iter().enumerate() {
        let n = p.borrow().value.len();
        #[allow(clippy::needless_range_loop)]
        for ei in 0..n {
            let orig = p.borrow().value.data()[ei];

            p.borrow_mut().value.data_mut()[ei] = orig + eps;
            params.zero_grad();
            let plus = f();

            p.borrow_mut().value.data_mut()[ei] = orig - eps;
            params.zero_grad();
            let minus = f();

            p.borrow_mut().value.data_mut()[ei] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi][ei];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            if (a - numeric).abs() / denom > tol {
                mismatches.push(GradMismatch { param: pi, element: ei, analytic: a, numeric });
            }
        }
    }
    params.zero_grad();
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{EncoderBlock, GruCell, Linear, Mlp};
    use crate::param::Param;
    use crate::tape::Tape;
    use crate::tensor::Tensor;
    use crate::init;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn gradcheck_linear_mse() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let layer = Linear::new(&mut rng, &mut params, 3, 2);
        let x = init::normal(&mut rng, 4, 3, 1.0);
        let y = init::normal(&mut rng, 4, 2, 1.0);
        let bad = check_gradients(
            &params,
            || {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let yv = tape.constant(y.clone());
                let loss = layer.forward(&tape, &xv).sub(&yv).square().mean_all();
                loss.backward();
                loss.item()
            },
            1e-3,
            2e-2,
        );
        assert!(bad.is_empty(), "gradient mismatches: {bad:?}");
    }

    #[test]
    fn gradcheck_mlp_tanh_head() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(&mut rng, &mut params, &[2, 5, 2]);
        let x = init::normal(&mut rng, 3, 2, 1.0);
        let bad = check_gradients(
            &params,
            || {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let loss = mlp.forward(&tape, &xv).tanh().square().mean_all();
                loss.backward();
                loss.item()
            },
            1e-3,
            3e-2,
        );
        assert!(bad.is_empty(), "gradient mismatches: {bad:?}");
    }

    #[test]
    fn gradcheck_encoder_block() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let block = EncoderBlock::new(&mut rng, &mut params, 4, 6, 2);
        let x = init::normal(&mut rng, 3, 4, 0.5);
        let bad = check_gradients(
            &params,
            || {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let loss = block.forward(&tape, &xv).select_row(0).square().mean_all();
                loss.backward();
                loss.item()
            },
            1e-3,
            5e-2,
        );
        assert!(bad.is_empty(), "gradient mismatches: {bad:?}");
    }

    #[test]
    fn gradcheck_gru() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = ParamSet::new();
        let cell = GruCell::new(&mut rng, &mut params, 2, 3);
        let x = init::normal(&mut rng, 3, 2, 0.5);
        let bad = check_gradients(
            &params,
            || {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let loss = cell.run_final(&tape, &xv).square().mean_all();
                loss.backward();
                loss.item()
            },
            1e-3,
            5e-2,
        );
        assert!(bad.is_empty(), "gradient mismatches: {bad:?}");
    }

    #[test]
    fn gradcheck_softmax_attention_path() {
        // exp/softmax/div composite path through a tiny attention-like score.
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = ParamSet::new();
        let w = params.register(Param::new(init::normal(&mut rng, 3, 3, 0.5)));
        let x = init::normal(&mut rng, 2, 3, 0.5);
        let bad = check_gradients(
            &params,
            || {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let wv = tape.param(&w);
                let q = xv.matmul(&wv);
                let scores = q.matmul(&q.transpose()).scale(0.5).softmax_rows();
                let loss = scores.matmul(&q).square().mean_all();
                loss.backward();
                loss.item()
            },
            1e-3,
            5e-2,
        );
        assert!(bad.is_empty(), "gradient mismatches: {bad:?}");
    }

    #[test]
    fn mismatch_is_detected_for_corrupted_gradient() {
        // Sanity check: the checker itself must fail when gradients are wrong.
        let mut params = ParamSet::new();
        let p = params.register(Param::new(Tensor::scalar(2.0)));
        let bad = check_gradients(
            &params,
            || {
                let tape = Tape::new();
                let v = tape.param(&p);
                let loss = v.square().sum_all();
                loss.backward();
                // corrupt the analytic gradient
                p.borrow_mut().grad.data_mut()[0] += 10.0;
                loss.item()
            },
            1e-3,
            1e-2,
        );
        assert!(!bad.is_empty());
    }
}
