//! Optimizers: SGD and Adam (the paper trains everything with Adam).

use crate::param::ParamSet;

/// Plain stochastic gradient descent.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one update and clears gradients.
    pub fn step(&mut self, params: &ParamSet) {
        for p in params.iter() {
            if !p.is_trainable() {
                p.zero_grad();
                continue;
            }
            let mut d = p.borrow_mut();
            let lr = self.lr;
            let grad = std::mem::replace(&mut d.grad, crate::tensor::Tensor::zeros(0, 0));
            d.value.axpy(-lr, &grad);
            d.grad = grad;
            d.grad.zero_out();
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Creates Adam with the conventional (0.9, 0.999, 1e-8) moments.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restores the step counter, so bias correction continues where a
    /// checkpoint left off when training resumes or rolls back.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one update and clears gradients. Frozen parameters only get
    /// their gradients cleared.
    pub fn step(&mut self, params: &ParamSet) {
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for p in params.iter() {
            if !p.is_trainable() {
                p.zero_grad();
                continue;
            }
            let mut d = p.borrow_mut();
            let n = d.value.len();
            for i in 0..n {
                let g = d.grad.data()[i];
                let m = self.beta1 * d.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * d.v.data()[i] + (1.0 - self.beta2) * g * g;
                d.m.data_mut()[i] = m;
                d.v.data_mut()[i] = v;
                let m_hat = m / bias1;
                let v_hat = v / bias2;
                d.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            d.grad.zero_out();
        }
    }
}

/// Rescales all gradients so their global L2 norm does not exceed
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &ParamSet, max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params.iter() {
        let d = p.borrow();
        total += d.grad.data().iter().map(|x| x * x).sum::<f32>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter() {
            p.borrow_mut().grad.scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    fn quadratic_loss(p: &Param) -> f32 {
        // loss = (x - 3)^2, minimized at x = 3
        let tape = Tape::new();
        let v = tape.param(p);
        let target = tape.constant(Tensor::scalar(3.0));
        let loss = v.sub(&target).square().sum_all();
        loss.backward();
        loss.item()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut params = ParamSet::new();
        let p = params.register(Param::new(Tensor::scalar(0.0)));
        let mut opt = Sgd::new(0.1);
        let first = quadratic_loss(&p);
        opt.step(&params);
        for _ in 0..50 {
            quadratic_loss(&p);
            opt.step(&params);
        }
        let last = quadratic_loss(&p);
        assert!(last < first * 1e-3, "loss did not shrink: {first} -> {last}");
        assert!((p.value().item() - 3.0).abs() < 0.05);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut params = ParamSet::new();
        let p = params.register(Param::new(Tensor::scalar(10.0)));
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            quadratic_loss(&p);
            opt.step(&params);
        }
        assert!((p.value().item() - 3.0).abs() < 0.05, "got {}", p.value().item());
    }

    #[test]
    fn adam_skips_frozen_params() {
        let mut params = ParamSet::new();
        let p = params.register(Param::frozen(Tensor::scalar(1.0)));
        let mut opt = Adam::new(0.5);
        quadratic_loss(&p);
        opt.step(&params);
        assert_eq!(p.value().item(), 1.0);
        // gradients must still be cleared
        assert_eq!(p.borrow().grad.item(), 0.0);
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut params = ParamSet::new();
        let p = params.register(Param::new(Tensor::scalar(0.0)));
        p.borrow_mut().grad = Tensor::scalar(30.0);
        let q = params.register(Param::new(Tensor::scalar(0.0)));
        q.borrow_mut().grad = Tensor::scalar(40.0);
        let pre = clip_grad_norm(&params, 5.0);
        assert!((pre - 50.0).abs() < 1e-4);
        let after = (p.borrow().grad.item().powi(2) + q.borrow().grad.item().powi(2)).sqrt();
        assert!((after - 5.0).abs() < 1e-4);
    }
}
