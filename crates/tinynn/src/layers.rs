//! Neural network layers built on the autograd tape.
//!
//! All layers follow the same convention: construction takes an `&mut
//! ParamSet` into which trainable parameters are registered (so a single
//! optimizer can see the whole model), and `forward` takes the current
//! [`Tape`] plus input [`Var`]s.

use crate::init;
use crate::param::{Param, ParamSet};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Fully connected layer `y = x W + b` with `W: in x out`, `b: 1 x out`.
#[derive(Clone)]
pub struct Linear {
    /// Weight matrix, `in_dim x out_dim`.
    pub w: Param,
    /// Bias row, `1 x out_dim`.
    pub b: Param,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer.
    pub fn new<R: Rng>(rng: &mut R, params: &mut ParamSet, in_dim: usize, out_dim: usize) -> Self {
        let w = params.register(Param::new(init::xavier_uniform(rng, in_dim, out_dim)));
        let b = params.register(Param::new(Tensor::zeros(1, out_dim)));
        Linear { w, b }
    }

    /// Applies the layer to an `n x in_dim` input.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.w);
        let b = tape.param(&self.b);
        x.matmul(&w).add_row(&b)
    }

    /// Applies the layer followed by ReLU as one fused tape node
    /// (`relu(x W + b)`), saving an intermediate buffer and a backward
    /// pass over it. Exactly equivalent to `forward(..).relu()`.
    pub fn forward_relu(&self, tape: &Tape, x: &Var) -> Var {
        let w = tape.param(&self.w);
        let b = tape.param(&self.b);
        x.matmul(&w).add_row_relu(&b)
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.shape().0
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.shape().1
    }
}

/// A multi-layer perceptron with ReLU activations between layers (the
/// `MLP_g` / `MLP^k` blocks of the paper are the two-layer case).
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `&[64, 64, 64]`
    /// builds two linear layers `64 -> 64 -> 64` with one ReLU in between.
    pub fn new<R: Rng>(rng: &mut R, params: &mut ParamSet, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, params, w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP; ReLU after every layer except the last. Hidden
    /// layers use the fused bias-add + ReLU node.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = if i != last {
                layer.forward_relu(tape, &h)
            } else {
                layer.forward(tape, &h)
            };
        }
        h
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        // lint: allow(unwrap) — Mlp::new builds at least one layer
        self.layers.last().unwrap().out_dim()
    }
}

/// Token/grid embedding table with gather-based lookup.
#[derive(Clone)]
pub struct Embedding {
    /// `vocab x dim` weight matrix.
    pub weight: Param,
}

impl Embedding {
    /// Creates a randomly initialized embedding table.
    pub fn new<R: Rng>(rng: &mut R, params: &mut ParamSet, vocab: usize, dim: usize) -> Self {
        let weight = params.register(Param::new(init::normal(rng, vocab, dim, 0.1)));
        Embedding { weight }
    }

    /// Wraps an existing (e.g. pre-trained) table. `frozen` parameters are
    /// registered but skipped by optimizers, matching the paper's frozen
    /// grid embeddings.
    pub fn from_table(params: &mut ParamSet, table: Tensor, frozen: bool) -> Self {
        let p = if frozen { Param::frozen(table) } else { Param::new(table) };
        Embedding { weight: params.register(p) }
    }

    /// Looks up a sequence of ids, producing an `len x dim` matrix.
    pub fn forward(&self, tape: &Tape, ids: &[usize]) -> Var {
        tape.param(&self.weight).gather_rows(ids)
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.weight.shape().1
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weight.shape().0
    }
}

/// Sinusoidal positional encoding (Eq. 8 of the paper / Vaswani et al.).
///
/// Returns an `n x d` constant tensor with
/// `s_i(2k) = sin(i / 10000^{2k/d})` and `s_i(2k+1) = cos(i / 10000^{2k/d})`.
pub fn positional_encoding(n: usize, d: usize) -> Tensor {
    let mut out = Tensor::zeros(n, d);
    for i in 0..n {
        for k in 0..d {
            let exponent = 2.0 * (k / 2) as f32 / d as f32;
            let angle = i as f32 / 10000f32.powf(exponent);
            let v = if k % 2 == 0 { angle.sin() } else { angle.cos() };
            out.set(i, k, v);
        }
    }
    out
}

/// Process-wide cache of positional encodings keyed by `(n, d)`.
/// The encoding is a pure function of its shape and every encoder
/// forward needs one, so recomputing the `powf`/`sin` table per call
/// (~50 us for a 100 x 32 sequence) was measurable; the cache makes it
/// a lookup. Shared across threads — model replicas on worker threads
/// hit the same table.
type PeCache = RwLock<HashMap<(usize, usize), Arc<Tensor>>>;
static PE_CACHE: OnceLock<PeCache> = OnceLock::new();

/// [`positional_encoding`] served from the process-wide cache; the
/// returned tensor is shared, never copied.
pub fn positional_encoding_cached(n: usize, d: usize) -> Arc<Tensor> {
    let cache = PE_CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(hit) = crate::sync::cread(cache).get(&(n, d)) {
        return Arc::clone(hit);
    }
    let fresh = Arc::new(positional_encoding(n, d));
    let mut w = crate::sync::cwrite(cache);
    Arc::clone(w.entry((n, d)).or_insert(fresh))
}

/// Adds the positional encoding to an `n x d` sequence embedding.
pub fn add_positional(tape: &Tape, x: &Var) -> Var {
    let (n, d) = x.shape();
    let pe = tape.constant_arc(positional_encoding_cached(n, d));
    x.add(&pe)
}

/// Multi-head scaled dot-product self-attention over an `n x d` sequence
/// (Eq. 12 plus the multi-head strategy the paper adopts from Vaswani et
/// al., including an output projection).
#[derive(Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
}

impl MultiHeadSelfAttention {
    /// Creates an attention layer. `dim` must be divisible by `heads`.
    pub fn new<R: Rng>(rng: &mut R, params: &mut ParamSet, dim: usize, heads: usize) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        MultiHeadSelfAttention {
            wq: Linear::new(rng, params, dim, dim),
            wk: Linear::new(rng, params, dim, dim),
            wv: Linear::new(rng, params, dim, dim),
            wo: Linear::new(rng, params, dim, dim),
            heads,
        }
    }

    /// Applies self-attention to an `n x d` sequence.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let (_, d) = x.shape();
        let dh = d / self.heads;
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outs: Option<Var> = None;
        for h in 0..self.heads {
            let qh = q.slice_cols(h * dh, dh);
            let kh = k.slice_cols(h * dh, dh);
            let vh = v.slice_cols(h * dh, dh);
            let scores = qh.matmul_nt(&kh).scale(scale);
            let attn = scores.softmax_rows();
            let out = attn.matmul(&vh);
            head_outs = Some(match head_outs {
                None => out,
                Some(acc) => acc.concat_cols(&out),
            });
        }
        self.wo.forward(tape, &head_outs.expect("at least one head"))
    }
}

/// One Attention–MLP block with residual connections (Eq. 11–12):
/// `x <- x + Attn(x)`, then `x <- MLP(x) + x`.
#[derive(Clone)]
pub struct EncoderBlock {
    attn: MultiHeadSelfAttention,
    mlp: Mlp,
}

impl EncoderBlock {
    /// Creates a block with a two-layer ReLU MLP of hidden width
    /// `hidden` and model width `dim`.
    pub fn new<R: Rng>(
        rng: &mut R,
        params: &mut ParamSet,
        dim: usize,
        hidden: usize,
        heads: usize,
    ) -> Self {
        EncoderBlock {
            attn: MultiHeadSelfAttention::new(rng, params, dim, heads),
            mlp: Mlp::new(rng, params, &[dim, hidden, dim]),
        }
    }

    /// Applies the block to an `n x d` sequence.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let attended = x.add(&self.attn.forward(tape, x));
        self.mlp.forward(tape, &attended).add(&attended)
    }
}

/// Layer normalization over the feature dimension of an `n x d`
/// sequence: `y = gamma * (x - mu) / sqrt(var + eps) + beta`.
///
/// The paper's blocks (Eq. 12) use plain residual connections without
/// normalization, so Traj2Hash itself does not use this layer; it is
/// provided for downstream users building deeper encoders on this
/// substrate, where normalization becomes necessary for stable training.
#[derive(Clone)]
pub struct LayerNorm {
    /// Scale, `1 x d`.
    pub gamma: Param,
    /// Shift, `1 x d`.
    pub beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm with unit scale and zero shift.
    pub fn new(params: &mut ParamSet, dim: usize) -> Self {
        LayerNorm {
            gamma: params.register(Param::new(Tensor::full(1, dim, 1.0))),
            beta: params.register(Param::new(Tensor::zeros(1, dim))),
            eps: 1e-5,
        }
    }

    /// Applies the normalization to an `n x d` input.
    pub fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let gamma = tape.param(&self.gamma);
        let beta = tape.param(&self.beta);
        x.standardize_rows(self.eps).mul_row(&gamma).add_row(&beta)
    }
}

/// Gated recurrent unit cell, the substrate for the RNN baselines
/// (NeuTraj, NT-No-SAM, t2vec, CL-TSim).
#[derive(Clone)]
pub struct GruCell {
    wz: Linear,
    wr: Linear,
    wh: Linear,
    uz: Param,
    ur: Param,
    uh: Param,
    hidden: usize,
}

impl GruCell {
    /// Creates a GRU cell mapping `in_dim` inputs to `hidden` state.
    pub fn new<R: Rng>(rng: &mut R, params: &mut ParamSet, in_dim: usize, hidden: usize) -> Self {
        GruCell {
            wz: Linear::new(rng, params, in_dim, hidden),
            wr: Linear::new(rng, params, in_dim, hidden),
            wh: Linear::new(rng, params, in_dim, hidden),
            uz: params.register(Param::new(init::xavier_uniform(rng, hidden, hidden))),
            ur: params.register(Param::new(init::xavier_uniform(rng, hidden, hidden))),
            uh: params.register(Param::new(init::xavier_uniform(rng, hidden, hidden))),
            hidden,
        }
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// A `1 x hidden` zero initial state on the given tape.
    pub fn zero_state(&self, tape: &Tape) -> Var {
        tape.constant(Tensor::zeros(1, self.hidden))
    }

    /// One step: `(x: 1 x in_dim, h: 1 x hidden) -> 1 x hidden`.
    pub fn step(&self, tape: &Tape, x: &Var, h: &Var) -> Var {
        let uz = tape.param(&self.uz);
        let ur = tape.param(&self.ur);
        let uh = tape.param(&self.uh);
        let z = self.wz.forward(tape, x).add(&h.matmul(&uz)).sigmoid();
        let r = self.wr.forward(tape, x).add(&h.matmul(&ur)).sigmoid();
        let h_tilde = self
            .wh
            .forward(tape, x)
            .add(&r.mul(h).matmul(&uh))
            .tanh();
        // h' = (1 - z) * h + z * h_tilde
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(h).add(&z.mul(&h_tilde))
    }

    /// Runs the cell over an `n x in_dim` sequence, returning all hidden
    /// states as an `n x hidden` matrix.
    pub fn run(&self, tape: &Tape, xs: &Var) -> Var {
        let (n, _) = xs.shape();
        assert!(n > 0, "GRU over an empty sequence");
        let mut h = self.zero_state(tape);
        let mut states: Option<Var> = None;
        for i in 0..n {
            let x = xs.select_row(i);
            h = self.step(tape, &x, &h);
            states = Some(match states {
                None => h.clone(),
                Some(acc) => acc.concat_rows(&h),
            });
        }
        // lint: allow(unwrap) — n > 0 is asserted above, the loop ran
        states.unwrap()
    }

    /// Runs the cell and returns only the final state (`1 x hidden`) — the
    /// read-out NeuTraj uses, which the paper notes implicitly matches the
    /// lower-bound read-out for DTW/Fréchet.
    pub fn run_final(&self, tape: &Tape, xs: &Var) -> Var {
        let (n, _) = xs.shape();
        self.run(tape, xs).select_row(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut params = ParamSet::new();
        let l = Linear::new(&mut rng(), &mut params, 4, 3);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(5, 4));
        assert_eq!(l.forward(&tape, &x).shape(), (5, 3));
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn linear_bias_applied() {
        let mut params = ParamSet::new();
        let l = Linear::new(&mut rng(), &mut params, 2, 2);
        l.b.borrow_mut().value = Tensor::row_vector(&[1.0, -1.0]);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(1, 2));
        let y = l.forward(&tape, &x).value();
        assert_eq!(y.data(), &[1.0, -1.0]);
    }

    #[test]
    fn mlp_forward_and_out_dim() {
        let mut params = ParamSet::new();
        let m = Mlp::new(&mut rng(), &mut params, &[4, 8, 2]);
        assert_eq!(m.out_dim(), 2);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(3, 4));
        assert_eq!(m.forward(&tape, &x).shape(), (3, 2));
    }

    #[test]
    fn embedding_lookup() {
        let mut params = ParamSet::new();
        let e = Embedding::new(&mut rng(), &mut params, 10, 4);
        let tape = Tape::new();
        let out = e.forward(&tape, &[3, 3, 7]);
        assert_eq!(out.shape(), (3, 4));
        let v = out.value();
        assert_eq!(v.row(0), v.row(1));
        assert_ne!(v.row(0), v.row(2));
    }

    #[test]
    fn positional_encoding_matches_formula() {
        let pe = positional_encoding(3, 4);
        assert!((pe.get(0, 0) - 0.0).abs() < 1e-6); // sin(0)
        assert!((pe.get(0, 1) - 1.0).abs() < 1e-6); // cos(0)
        assert!((pe.get(2, 0) - 2.0f32.sin()).abs() < 1e-6);
        let expected = (2.0 / 10000f32.powf(0.5)).cos();
        assert!((pe.get(2, 3) - expected).abs() < 1e-6);
    }

    #[test]
    fn attention_preserves_shape_and_is_permutation_sensitive_with_pe() {
        let mut params = ParamSet::new();
        let attn = MultiHeadSelfAttention::new(&mut rng(), &mut params, 8, 2);
        let tape = Tape::new();
        let x = tape.constant(init::normal(&mut rng(), 5, 8, 1.0));
        let y = attn.forward(&tape, &x);
        assert_eq!(y.shape(), (5, 8));
        assert!(y.value().is_finite());
    }

    #[test]
    fn attention_is_permutation_equivariant_without_pe() {
        // Self-attention alone must commute with permuting the sequence;
        // this is why the positional encoding is needed at all.
        let mut r = rng();
        let mut params = ParamSet::new();
        let attn = MultiHeadSelfAttention::new(&mut r, &mut params, 4, 1);
        let x = init::normal(&mut r, 3, 4, 1.0);
        // swap rows 0 and 2
        let mut xp = x.clone();
        let row0: Vec<f32> = x.row(0).to_vec();
        let row2: Vec<f32> = x.row(2).to_vec();
        xp.row_mut(0).copy_from_slice(&row2);
        xp.row_mut(2).copy_from_slice(&row0);

        let tape = Tape::new();
        let y = attn.forward(&tape, &tape.constant(x)).value();
        let yp = attn.forward(&tape, &tape.constant(xp)).value();
        for c in 0..4 {
            assert!((y.get(0, c) - yp.get(2, c)).abs() < 1e-4);
            assert!((y.get(2, c) - yp.get(0, c)).abs() < 1e-4);
            assert!((y.get(1, c) - yp.get(1, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn encoder_block_shape() {
        let mut params = ParamSet::new();
        let block = EncoderBlock::new(&mut rng(), &mut params, 8, 16, 2);
        let tape = Tape::new();
        let x = tape.constant(init::normal(&mut rng(), 6, 8, 1.0));
        assert_eq!(block.forward(&tape, &x).shape(), (6, 8));
    }

    #[test]
    fn gru_runs_and_depends_on_order() {
        let mut r = rng();
        let mut params = ParamSet::new();
        let cell = GruCell::new(&mut r, &mut params, 2, 4);
        let seq = init::normal(&mut r, 5, 2, 1.0);
        let mut rev_data = Vec::new();
        for i in (0..5).rev() {
            rev_data.extend_from_slice(seq.row(i));
        }
        let rev = Tensor::from_vec(5, 2, rev_data);

        let tape = Tape::new();
        let out = cell.run_final(&tape, &tape.constant(seq)).value();
        let out_rev = cell.run_final(&tape, &tape.constant(rev)).value();
        assert_eq!(out.shape(), (1, 4));
        assert!(out.max_abs_diff(&out_rev) > 1e-5, "GRU must be order-sensitive");
    }

    #[test]
    fn gru_gradients_flow_to_all_params() {
        let mut r = rng();
        let mut params = ParamSet::new();
        let cell = GruCell::new(&mut r, &mut params, 2, 3);
        let tape = Tape::new();
        let xs = tape.constant(init::normal(&mut r, 4, 2, 1.0));
        cell.run_final(&tape, &xs).sum_all().backward();
        for p in params.iter() {
            assert!(p.borrow().grad.norm() > 0.0, "a GRU parameter received no gradient");
        }
    }
}
