//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Tape`] records every operation of a forward pass as a node holding
//! the computed value and a backward closure. Calling [`Var::backward`] on
//! a scalar output walks the tape in reverse, propagating gradients to
//! every node and accumulating them into the [`Param`]s that participated
//! in the computation.
//!
//! The implementation is allocation-lean: node values are shared
//! (`Arc<Tensor>`) instead of cloned into every backward closure, the
//! upstream gradient is passed to each closure **by value** so unary ops
//! rewrite it in place and binary ops move it into their last child
//! instead of cloning, repeated [`Tape::param`] calls for the same
//! parameter reuse one leaf node, and the gradient scratch vector is
//! recycled across [`Var::backward`] calls on the same tape.
//!
//! Tapes are cheap to create; the intended pattern is one tape per
//! training step (or [`Tape::reset`] to reuse one tape's allocations
//! across steps):
//!
//! ```
//! use tinynn::{Tape, Tensor, Param};
//! let w = Param::new(Tensor::from_vec(1, 1, vec![3.0]));
//! let tape = Tape::new();
//! let x = tape.constant(Tensor::scalar(2.0));
//! let wv = tape.param(&w);
//! let y = x.mul(&wv);      // y = w * x
//! let loss = y.square().sum_all(); // loss = (w x)^2
//! loss.backward();
//! // d loss / d w = 2 * w * x^2 = 24
//! assert!((w.borrow().grad.item() - 24.0).abs() < 1e-4);
//! ```

use crate::param::Param;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Backward closures receive the upstream gradient **by value** and may
/// consume it: mutate it in place and forward it to a child, or split it
/// into freshly computed child gradients.
type BackwardFn = Box<dyn Fn(Tensor, &mut [Option<Tensor>])>;

/// The operation recorded at a tape node.
///
/// The backward closures themselves are opaque, so this is the metadata
/// the pre-execution verifier ([`crate::verify`]) walks: enough to
/// recompute every node's expected output shape from its inputs and to
/// trace gradient flow without running `backward`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names mirror the `Var` methods 1:1
pub enum Op {
    Constant,
    Param,
    Add,
    Sub,
    Mul,
    Div,
    AddRow,
    AddRowRelu,
    MulRow,
    Scale,
    AddScalar,
    Relu,
    Tanh,
    Sigmoid,
    Exp,
    Ln,
    Sqrt,
    Square,
    Matmul,
    MatmulNt,
    Transpose,
    SoftmaxRows,
    StandardizeRows,
    SumAll,
    SumRows,
    ConcatCols,
    ConcatRows,
    SliceRows { start: usize, len: usize },
    SliceCols { start: usize, len: usize },
    GatherRows { count: usize, max_index: usize },
}

impl Op {
    /// Short display name (payload-free).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Constant => "constant",
            Op::Param => "param",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::AddRow => "add_row",
            Op::AddRowRelu => "add_row_relu",
            Op::MulRow => "mul_row",
            Op::Scale => "scale",
            Op::AddScalar => "add_scalar",
            Op::Relu => "relu",
            Op::Tanh => "tanh",
            Op::Sigmoid => "sigmoid",
            Op::Exp => "exp",
            Op::Ln => "ln",
            Op::Sqrt => "sqrt",
            Op::Square => "square",
            Op::Matmul => "matmul",
            Op::MatmulNt => "matmul_nt",
            Op::Transpose => "transpose",
            Op::SoftmaxRows => "softmax_rows",
            Op::StandardizeRows => "standardize_rows",
            Op::SumAll => "sum_all",
            Op::SumRows => "sum_rows",
            Op::ConcatCols => "concat_cols",
            Op::ConcatRows => "concat_rows",
            Op::SliceRows { .. } => "slice_rows",
            Op::SliceCols { .. } => "slice_cols",
            Op::GatherRows { .. } => "gather_rows",
        }
    }
}

/// Verifier-facing metadata of one tape node. `Copy` and heap-free so
/// recording it costs nothing on the allocation-lean hot path: inputs
/// live in a fixed two-slot array (no tape op has higher arity).
#[derive(Debug, Clone, Copy)]
pub struct NodeMeta {
    /// The recorded operation.
    pub op: Op,
    /// Shape of the node's output value at record time.
    pub shape: (usize, usize),
    inputs: [usize; 2],
    arity: u8,
}

impl NodeMeta {
    fn new(op: Op, shape: (usize, usize), inputs: &[usize]) -> Self {
        debug_assert!(inputs.len() <= 2, "tape ops have arity <= 2");
        let mut buf = [0usize; 2];
        buf[..inputs.len()].copy_from_slice(inputs);
        // lint: allow(lossy-cast) — inputs.len() <= 2, asserted by the fixed-size buffer above
        NodeMeta { op, shape, inputs: buf, arity: inputs.len() as u8 }
    }

    /// Ids of the nodes this node consumes (its children in the graph).
    pub fn inputs(&self) -> &[usize] {
        &self.inputs[..usize::from(self.arity)]
    }
}

struct Node {
    value: Arc<Tensor>,
    backward: Option<BackwardFn>,
    meta: NodeMeta,
}

#[derive(Default)]
struct TapeInner {
    nodes: RefCell<Vec<Node>>,
    /// Leaf node id -> parameter whose gradient receives that node's grad.
    param_hooks: RefCell<HashMap<usize, Param>>,
    /// Parameter identity -> existing leaf node, so repeated
    /// `tape.param(&p)` calls share one node (and one value snapshot).
    param_ids: RefCell<HashMap<usize, usize>>,
    /// Recycled gradient buffer for `backward`, so repeated backward
    /// passes on a (reset) tape do not reallocate the slot vector.
    scratch: RefCell<Vec<Option<Tensor>>>,
}

/// A recording of one forward computation.
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<TapeInner>,
}

/// A handle to a value on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    id: usize,
    tape: Rc<TapeInner>,
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, g: Tensor) {
    match &mut grads[id] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes (useful in tests).
    pub fn len(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears all recorded nodes and parameter hooks while keeping the
    /// backing allocations, so a worker can reuse one tape across many
    /// training steps. Any [`Var`] created before the reset must not be
    /// used afterwards — its node id now refers to a fresh recording.
    pub fn reset(&self) {
        self.inner.nodes.borrow_mut().clear();
        self.inner.param_hooks.borrow_mut().clear();
        self.inner.param_ids.borrow_mut().clear();
    }

    fn push_arc(
        &self,
        value: Arc<Tensor>,
        backward: Option<BackwardFn>,
        op: Op,
        inputs: &[usize],
    ) -> Var {
        let meta = NodeMeta::new(op, value.shape(), inputs);
        let mut nodes = self.inner.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node { value, backward, meta });
        Var { id, tape: Rc::clone(&self.inner) }
    }

    fn push(&self, value: Tensor, backward: Option<BackwardFn>, op: Op, inputs: &[usize]) -> Var {
        self.push_arc(Arc::new(value), backward, op, inputs)
    }

    /// Records a constant leaf: gradients flow into it but go nowhere.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, None, Op::Constant, &[])
    }

    /// Records a shared constant leaf without copying it — the zero-copy
    /// entry point for cached tensors (e.g. the frozen grid-channel
    /// inputs, which many tapes reference per run).
    pub fn constant_arc(&self, value: Arc<Tensor>) -> Var {
        self.push_arc(value, None, Op::Constant, &[])
    }

    /// Records a parameter leaf; after `backward`, the gradient of this
    /// node is accumulated into `p.grad`. Calling this repeatedly with
    /// the same parameter on one tape returns the same node, so a weight
    /// used by many forward passes is snapshotted (and its gradient
    /// accumulated) once.
    pub fn param(&self, p: &Param) -> Var {
        let key = p.key();
        if let Some(&id) = self.inner.param_ids.borrow().get(&key) {
            return Var { id, tape: Rc::clone(&self.inner) };
        }
        let var = self.push(p.value(), None, Op::Param, &[]);
        self.inner.param_hooks.borrow_mut().insert(var.id, p.clone());
        self.inner.param_ids.borrow_mut().insert(key, var.id);
        var
    }

    /// The recorded metadata of node `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node_meta(&self, id: usize) -> NodeMeta {
        self.inner.nodes.borrow()[id].meta
    }

    /// Shape of the *value* actually stored at node `id` (as opposed to
    /// the recorded `NodeMeta::shape`, which the verifier cross-checks
    /// against it).
    pub fn node_value_shape(&self, id: usize) -> (usize, usize) {
        self.inner.nodes.borrow()[id].value.shape()
    }

    /// Node ids that carry a parameter hook, ascending.
    pub fn param_nodes(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.inner.param_hooks.borrow().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// True when `v` was recorded on this tape. The verifier refuses to
    /// analyse a root from a different tape: its node id would be
    /// meaningless here.
    pub fn owns(&self, v: &Var) -> bool {
        Rc::ptr_eq(&self.inner, &v.tape)
    }

    /// Overwrites the recorded shape of node `id`. Test-support hook for
    /// the verifier's fault-injection suite — never call this from
    /// production code: it makes the metadata lie about the tape.
    #[doc(hidden)]
    pub fn debug_set_node_shape(&self, id: usize, shape: (usize, usize)) {
        self.inner.nodes.borrow_mut()[id].meta.shape = shape;
    }

    /// Re-points input `slot` of node `id` at node `new_input` in the
    /// recorded metadata (a "severed edge"). Test-support hook for the
    /// verifier's fault-injection suite.
    ///
    /// # Panics
    /// Panics if `slot` is not a valid input slot of the node.
    #[doc(hidden)]
    pub fn debug_set_node_input(&self, id: usize, slot: usize, new_input: usize) {
        let mut nodes = self.inner.nodes.borrow_mut();
        let meta = &mut nodes[id].meta;
        assert!(slot < usize::from(meta.arity), "node {id} has no input slot {slot}");
        meta.inputs[slot] = new_input;
    }
}

impl Var {
    /// The id of this handle's node on its tape (stable for the lifetime
    /// of the recording; invalidated by [`Tape::reset`]).
    pub fn node_id(&self) -> usize {
        self.id
    }

    /// Clone of the value stored at this node.
    pub fn value(&self) -> Tensor {
        (*self.tape.nodes.borrow()[self.id].value).clone()
    }

    /// Shared handle to the value stored at this node (no tensor copy).
    pub fn value_arc(&self) -> Arc<Tensor> {
        Arc::clone(&self.tape.nodes.borrow()[self.id].value)
    }

    /// Shape of the value at this node.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.id].value.shape()
    }

    /// The scalar held by a `1 x 1` node.
    pub fn item(&self) -> f32 {
        self.tape.nodes.borrow()[self.id].value.item()
    }

    fn tape(&self) -> Tape {
        Tape { inner: Rc::clone(&self.tape) }
    }

    fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape, &other.tape),
            "vars belong to different tapes"
        );
    }

    /// Runs reverse-mode differentiation from this scalar node.
    ///
    /// # Panics
    /// Panics if the node is not `1 x 1`.
    pub fn backward(&self) {
        assert_eq!(
            self.shape(),
            (1, 1),
            "backward() must start from a scalar (1x1) node"
        );
        self.backward_with(Tensor::scalar(1.0));
    }

    /// Reverse pass seeded with an arbitrary upstream gradient for this
    /// node (vector-Jacobian product). `backward()` is the special case
    /// `backward_with(1.0)` from a scalar. This is what lets a loss graph
    /// built over *detached* embedding values hand each embedding's
    /// gradient back to the tape that produced it.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            self.shape(),
            seed.shape(),
            "backward_with seed must match the node's shape"
        );
        let nodes = self.tape.nodes.borrow();
        let hooks = self.tape.param_hooks.borrow();
        let mut grads = self.tape.scratch.borrow_mut();
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        grads[self.id] = Some(seed);
        for id in (0..=self.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            if let Some(p) = hooks.get(&id) {
                p.accumulate_grad(&g);
            }
            if let Some(bw) = &nodes[id].backward {
                bw(g, &mut grads);
            }
        }
    }

    // ----- elementwise binary ops -------------------------------------

    /// Elementwise addition (identical shapes).
    pub fn add(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.zip(&b, |x, y| x + y);
        let (ia, ib) = (self.id, other.id);
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ib, g.clone());
                accumulate(grads, ia, g);
            })),
            Op::Add,
            &[ia, ib],
        )
    }

    /// Elementwise subtraction (identical shapes).
    pub fn sub(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.zip(&b, |x, y| x - y);
        let (ia, ib) = (self.id, other.id);
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ib, g.map(|x| -x));
                accumulate(grads, ia, g);
            })),
            Op::Sub,
            &[ia, ib],
        )
    }

    /// Elementwise (Hadamard) product (identical shapes).
    pub fn mul(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.zip(&b, |x, y| x * y);
        let (ia, ib) = (self.id, other.id);
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                accumulate(grads, ib, g.zip(&a, |gg, x| gg * x));
                for (gg, &y) in g.data_mut().iter_mut().zip(b.data()) {
                    *gg *= y;
                }
                accumulate(grads, ia, g);
            })),
            Op::Mul, &[ia, ib],
        )
    }

    /// Elementwise division (identical shapes).
    pub fn div(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.zip(&b, |x, y| x / y);
        let (ia, ib) = (self.id, other.id);
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                // d/db (a/b) = -a / b^2, computed in one pass
                let mut gb = g.zip(&a, |gg, x| gg * x);
                gb = gb.zip(&b, |t, y| -t / (y * y));
                accumulate(grads, ib, gb);
                for (gg, &y) in g.data_mut().iter_mut().zip(b.data()) {
                    *gg /= y;
                }
                accumulate(grads, ia, g);
            })),
            Op::Div, &[ia, ib],
        )
    }

    /// Adds a `1 x d` row vector to every row of an `n x d` matrix.
    pub fn add_row(&self, row: &Var) -> Var {
        self.same_tape(row);
        let a = self.value_arc();
        let b = row.value_arc();
        assert_eq!(b.rows(), 1, "add_row expects a 1xd right operand");
        assert_eq!(a.cols(), b.cols(), "add_row width mismatch");
        let mut out = (*a).clone();
        for r in 0..out.rows() {
            for (o, &x) in out.row_mut(r).iter_mut().zip(b.row(0)) {
                *o += x;
            }
        }
        let (ia, ib) = (self.id, row.id);
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                // bias grad: sum over rows
                let mut gb = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                accumulate(grads, ib, gb);
                accumulate(grads, ia, g);
            })),
            Op::AddRow, &[ia, ib],
        )
    }

    /// Fused `relu(self + row)` over an `n x d` matrix and a `1 x d` bias
    /// row — the bias-add + activation of a hidden [`crate::Linear`]
    /// layer in one tape node, one output buffer, and one backward pass.
    pub fn add_row_relu(&self, row: &Var) -> Var {
        self.same_tape(row);
        let a = self.value_arc();
        let b = row.value_arc();
        assert_eq!(b.rows(), 1, "add_row_relu expects a 1xd right operand");
        assert_eq!(a.cols(), b.cols(), "add_row_relu width mismatch");
        let mut out = (*a).clone();
        for r in 0..out.rows() {
            for (o, &x) in out.row_mut(r).iter_mut().zip(b.row(0)) {
                *o = (*o + x).max(0.0);
            }
        }
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let (ia, ib) = (self.id, row.id);
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                // gate the upstream gradient in place (y > 0 <=> pre-act > 0),
                // then both children read the already-masked gradient
                for (gg, &yy) in g.data_mut().iter_mut().zip(y_bw.data()) {
                    if yy <= 0.0 {
                        *gg = 0.0;
                    }
                }
                let mut gb = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                accumulate(grads, ib, gb);
                accumulate(grads, ia, g);
            })),
            Op::AddRowRelu, &[ia, ib],
        )
    }

    // ----- scalar ops --------------------------------------------------

    /// Multiplies every element by a constant.
    pub fn scale(&self, c: f32) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.map(|x| x * c);
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                for x in g.data_mut() {
                    *x *= c;
                }
                accumulate(grads, ia, g);
            })),
            Op::Scale, &[ia],
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, c: f32) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.map(|x| x + c);
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ia, g);
            })),
            Op::AddScalar, &[ia],
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    // ----- elementwise unary ops ----------------------------------------

    /// Rectified linear unit, `max(x, 0)`. Also the hinge `[x]_+` of
    /// Eq. 18–20 in the paper.
    pub fn relu(&self) -> Var {
        let a = self.value_arc();
        let out = a.map(|x| x.max(0.0));
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                for (gg, &x) in g.data_mut().iter_mut().zip(a.data()) {
                    if x <= 0.0 {
                        *gg = 0.0;
                    }
                }
                accumulate(grads, ia, g);
            })),
            Op::Relu, &[ia],
        )
    }

    /// Hyperbolic tangent. With a scale, this is the HashNet relaxation
    /// `tanh(beta * x)` of the sign function (Section IV-F).
    pub fn tanh(&self) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.map(f32::tanh);
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let ia = self.id;
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                for (gg, &t) in g.data_mut().iter_mut().zip(y_bw.data()) {
                    *gg *= 1.0 - t * t;
                }
                accumulate(grads, ia, g);
            })),
            Op::Tanh, &[ia],
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let ia = self.id;
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                for (gg, &s) in g.data_mut().iter_mut().zip(y_bw.data()) {
                    *gg *= s * (1.0 - s);
                }
                accumulate(grads, ia, g);
            })),
            Op::Sigmoid, &[ia],
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.map(f32::exp);
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let ia = self.id;
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                for (gg, &e) in g.data_mut().iter_mut().zip(y_bw.data()) {
                    *gg *= e;
                }
                accumulate(grads, ia, g);
            })),
            Op::Exp, &[ia],
        )
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let a = self.value_arc();
        let out = a.map(f32::ln);
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                for (gg, &x) in g.data_mut().iter_mut().zip(a.data()) {
                    *gg /= x;
                }
                accumulate(grads, ia, g);
            })),
            Op::Ln, &[ia],
        )
    }

    /// Elementwise square root (stabilized gradient at 0).
    pub fn sqrt(&self) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.map(f32::sqrt);
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let ia = self.id;
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                for (gg, &s) in g.data_mut().iter_mut().zip(y_bw.data()) {
                    *gg *= 0.5 / s.max(1e-12);
                }
                accumulate(grads, ia, g);
            })),
            Op::Sqrt, &[ia],
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let a = self.value_arc();
        let out = a.map(|x| x * x);
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                for (gg, &x) in g.data_mut().iter_mut().zip(a.data()) {
                    *gg *= 2.0 * x;
                }
                accumulate(grads, ia, g);
            })),
            Op::Square, &[ia],
        )
    }

    // ----- matrix ops ----------------------------------------------------

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.matmul(&b);
        let (ia, ib) = (self.id, other.id);
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                // dA = G B^T and dB = A^T G via the packed kernels, so no
                // transpose is materialized in the backward pass.
                accumulate(grads, ia, g.matmul_transposed(&b));
                accumulate(grads, ib, a.transposed_matmul(&g));
            })),
            Op::Matmul, &[ia, ib],
        )
    }

    /// `self * other^T` without materializing the transpose — the
    /// attention-score op `Q K^T`. Forward uses the packed dot-product
    /// kernel; backward is `dQ = G K` and `dK = G^T Q`, again without
    /// building a transposed copy.
    pub fn matmul_nt(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        // Shape-adaptive forward: with a short shared dimension (the
        // per-head attention case, dh << n) the dot-product kernel's
        // horizontal reductions dominate, and materializing `B^T` once
        // to run the wide ikj kernel is faster. The choice depends only
        // on shapes, so results stay deterministic.
        let (p, m) = b.shape();
        let out = if p >= 4 * m {
            a.matmul(&b.transpose())
        } else {
            a.matmul_transposed(&b)
        };
        let (ia, ib) = (self.id, other.id);
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ia, g.matmul(&b));
                accumulate(grads, ib, g.transposed_matmul(&a));
            })),
            Op::MatmulNt, &[ia, ib],
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.transpose();
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ia, g.transpose());
            })),
            Op::Transpose, &[ia],
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Var {
        let out = self.tape.nodes.borrow()[self.id].value.softmax_rows();
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let ia = self.id;
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                // dL/dx_i = y_i * (g_i - sum_j g_j y_j), per row, in place.
                for r in 0..y_bw.rows() {
                    let dot: f32 =
                        g.row(r).iter().zip(y_bw.row(r)).map(|(&gg, &yy)| gg * yy).sum();
                    for (gg, &yy) in g.row_mut(r).iter_mut().zip(y_bw.row(r)) {
                        *gg = yy * (*gg - dot);
                    }
                }
                accumulate(grads, ia, g);
            })),
            Op::SoftmaxRows, &[ia],
        )
    }

    // ----- reductions ------------------------------------------------------

    /// Sum of all elements, producing a `1 x 1` scalar.
    pub fn sum_all(&self) -> Var {
        let a = self.value_arc();
        let out = Tensor::scalar(a.sum());
        let (rows, cols) = a.shape();
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ia, Tensor::full(rows, cols, g.item()));
            })),
            Op::SumAll, &[ia],
        )
    }

    /// Mean of all elements, producing a `1 x 1` scalar.
    pub fn mean_all(&self) -> Var {
        let n = {
            let (r, c) = self.shape();
            (r * c) as f32
        };
        self.sum_all().scale(1.0 / n)
    }

    /// Column-wise sum: `n x d` -> `1 x d`.
    pub fn sum_rows(&self) -> Var {
        let a = self.value_arc();
        let mut out = Tensor::zeros(1, a.cols());
        for r in 0..a.rows() {
            for (o, &x) in out.row_mut(0).iter_mut().zip(a.row(r)) {
                *o += x;
            }
        }
        let rows = a.rows();
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                let mut gx = Tensor::zeros(rows, g.cols());
                for r in 0..rows {
                    gx.row_mut(r).copy_from_slice(g.row(0));
                }
                accumulate(grads, ia, gx);
            })),
            Op::SumRows, &[ia],
        )
    }

    /// Column-wise mean: `n x d` -> `1 x d`. This is the `Mean` pooling
    /// read-out (Eq. 9).
    pub fn mean_rows(&self) -> Var {
        let rows = self.shape().0 as f32;
        self.sum_rows().scale(1.0 / rows)
    }

    // ----- shape ops ---------------------------------------------------------

    /// Horizontal concatenation `n x a ++ n x b -> n x (a+b)`. Used for the
    /// reverse-symmetric embedding `[W_p h, W_p h_r]` (Eq. 15).
    pub fn concat_cols(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.concat_cols(&b);
        let (ia, ib) = (self.id, other.id);
        let split = a.cols();
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ia, g.slice_cols(0, split));
                accumulate(grads, ib, g.slice_cols(split, g.cols() - split));
            })),
            Op::ConcatCols, &[ia, ib],
        )
    }

    /// Vertical concatenation `a x d ++ b x d -> (a+b) x d`.
    pub fn concat_rows(&self, other: &Var) -> Var {
        self.same_tape(other);
        let a = self.value_arc();
        let b = other.value_arc();
        let out = a.concat_rows(&b);
        let (ia, ib) = (self.id, other.id);
        let split = a.rows();
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                accumulate(grads, ia, g.slice_rows(0, split));
                accumulate(grads, ib, g.slice_rows(split, g.rows() - split));
            })),
            Op::ConcatRows, &[ia, ib],
        )
    }

    /// Copy of rows `[start, start+len)` with zero-padded gradient.
    pub fn slice_rows(&self, start: usize, len: usize) -> Var {
        let a = self.value_arc();
        let out = a.slice_rows(start, len);
        let (rows, cols) = a.shape();
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                let mut gx = Tensor::zeros(rows, cols);
                for r in 0..len {
                    gx.row_mut(start + r).copy_from_slice(g.row(r));
                }
                accumulate(grads, ia, gx);
            })),
            Op::SliceRows { start, len }, &[ia],
        )
    }

    /// Copy of columns `[start, start+len)` with zero-padded gradient.
    pub fn slice_cols(&self, start: usize, len: usize) -> Var {
        let a = self.value_arc();
        let out = a.slice_cols(start, len);
        let (rows, cols) = a.shape();
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                let mut gx = Tensor::zeros(rows, cols);
                for r in 0..rows {
                    gx.row_mut(r)[start..start + len].copy_from_slice(g.row(r));
                }
                accumulate(grads, ia, gx);
            })),
            Op::SliceCols { start, len }, &[ia],
        )
    }

    /// Selects row `i` as a `1 x d` vector. With `i = 0` this is the
    /// lower-bound induced read-out of Eq. 13.
    pub fn select_row(&self, i: usize) -> Var {
        self.slice_rows(i, 1)
    }

    /// Gathers rows by index: the embedding-lookup primitive. The backward
    /// pass scatter-adds gradients into the embedding matrix, so repeated
    /// indices accumulate correctly.
    pub fn gather_rows(&self, indices: &[usize]) -> Var {
        let a = self.value_arc();
        let mut out = Tensor::zeros(indices.len(), a.cols());
        for (r, &ix) in indices.iter().enumerate() {
            assert!(ix < a.rows(), "gather index {ix} out of range {}", a.rows());
            out.row_mut(r).copy_from_slice(a.row(ix));
        }
        let idx: Vec<usize> = indices.to_vec();
        let count = idx.len();
        let max_index = idx.iter().copied().max().unwrap_or(0);
        let (rows, cols) = a.shape();
        let ia = self.id;
        self.tape().push(
            out,
            Some(Box::new(move |g, grads| {
                let mut gx = Tensor::zeros(rows, cols);
                for (r, &ix) in idx.iter().enumerate() {
                    for (o, &x) in gx.row_mut(ix).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                accumulate(grads, ia, gx);
            })),
            Op::GatherRows { count, max_index }, &[ia],
        )
    }

    /// Multiplies every row of an `n x d` matrix elementwise by a `1 x d`
    /// row vector (the scale step of layer normalization).
    pub fn mul_row(&self, row: &Var) -> Var {
        self.same_tape(row);
        let a = self.value_arc();
        let b = row.value_arc();
        assert_eq!(b.rows(), 1, "mul_row expects a 1xd right operand");
        assert_eq!(a.cols(), b.cols(), "mul_row width mismatch");
        let mut out = (*a).clone();
        for r in 0..out.rows() {
            for (o, &x) in out.row_mut(r).iter_mut().zip(b.row(0)) {
                *o *= x;
            }
        }
        let (ia, ib) = (self.id, row.id);
        self.tape().push(
            out,
            Some(Box::new(move |mut g, grads| {
                let mut gb = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        gb.data_mut()[c] += g.get(r, c) * a.get(r, c);
                    }
                }
                accumulate(grads, ib, gb);
                for r in 0..g.rows() {
                    for (gg, &x) in g.row_mut(r).iter_mut().zip(b.row(0)) {
                        *gg *= x;
                    }
                }
                accumulate(grads, ia, g);
            })),
            Op::MulRow, &[ia, ib],
        )
    }

    /// Standardizes each row to zero mean and unit variance:
    /// `y = (x - mu) / sqrt(var + eps)` — the normalization core of
    /// LayerNorm, with the exact fused backward pass.
    pub fn standardize_rows(&self, eps: f32) -> Var {
        let a = self.value_arc();
        let (rows, cols) = a.shape();
        assert!(cols > 0, "standardize_rows on zero-width input");
        let mut out = Tensor::zeros(rows, cols);
        let mut inv_sigma = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = a.row(r);
            let mu: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 =
                row.iter().map(|&x| (x - mu) * (x - mu)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + eps).sqrt();
            inv_sigma.push(inv);
            for (o, &x) in out.row_mut(r).iter_mut().zip(row) {
                *o = (x - mu) * inv;
            }
        }
        let y = Arc::new(out);
        let y_bw = Arc::clone(&y);
        let ia = self.id;
        self.tape().push_arc(
            y,
            Some(Box::new(move |mut g, grads| {
                // dx = inv_sigma * (g - mean(g) - y * mean(g * y)) per row
                let n = g.cols() as f32;
                for (r, &inv) in inv_sigma.iter().enumerate() {
                    let y_row = y_bw.row(r);
                    let g_row = g.row(r);
                    let mean_g: f32 = g_row.iter().sum::<f32>() / n;
                    let mean_gy: f32 =
                        g_row.iter().zip(y_row).map(|(&gg, &yy)| gg * yy).sum::<f32>() / n;
                    for (gg, &yy) in g.row_mut(r).iter_mut().zip(y_row) {
                        *gg = inv * (*gg - mean_g - yy * mean_gy);
                    }
                }
                accumulate(grads, ia, g);
            })),
            Op::StandardizeRows, &[ia],
        )
    }

    // ----- composite helpers ----------------------------------------------

    /// Squared Euclidean distance between two vectors/matrices of equal
    /// shape, as a scalar.
    pub fn squared_distance(&self, other: &Var) -> Var {
        self.sub(other).square().sum_all()
    }

    /// Euclidean distance between two equally shaped values, as a scalar.
    pub fn distance(&self, other: &Var) -> Var {
        self.squared_distance(other).add_scalar(1e-12).sqrt()
    }

    /// Inner product of two row vectors, as a scalar.
    pub fn dot(&self, other: &Var) -> Var {
        self.mul(other).sum_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_var(tape: &Tape, x: f32) -> (Param, Var) {
        let p = Param::new(Tensor::scalar(x));
        let v = tape.param(&p);
        (p, v)
    }

    #[test]
    fn add_mul_backward() {
        let tape = Tape::new();
        let (pa, a) = scalar_var(&tape, 2.0);
        let (pb, b) = scalar_var(&tape, 3.0);
        // f = (a + b) * a = a^2 + ab ; df/da = 2a + b = 7 ; df/db = a = 2
        let f = a.add(&b).mul(&a);
        f.backward();
        assert!((pa.borrow().grad.item() - 7.0).abs() < 1e-5);
        assert!((pb.borrow().grad.item() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let tape = Tape::new();
        let pa = Param::new(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let pb = Param::new(Tensor::from_vec(3, 1, vec![1.0, 1.0, 1.0]));
        let a = tape.param(&pa);
        let b = tape.param(&pb);
        let f = a.matmul(&b).sum_all(); // sum of all elements of A
        f.backward();
        assert_eq!(pa.borrow().grad.shape(), (2, 3));
        assert_eq!(pb.borrow().grad.shape(), (3, 1));
        // df/dA = ones * b^T = all-ones; df/db = A^T * ones = column sums
        assert!(pa.borrow().grad.data().iter().all(|&x| (x - 1.0).abs() < 1e-5));
        assert_eq!(pb.borrow().grad.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn relu_gates_gradient() {
        let tape = Tape::new();
        let p = Param::new(Tensor::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        let v = tape.param(&p);
        v.relu().sum_all().backward();
        assert_eq!(p.borrow().grad.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn fused_add_row_relu_matches_unfused() {
        let run = |fused: bool| -> (Tensor, Tensor, Tensor) {
            let tape = Tape::new();
            let px = Param::new(Tensor::from_vec(2, 3, vec![1.0, -2.0, 0.5, -0.5, 2.0, -3.0]));
            let pb = Param::new(Tensor::row_vector(&[0.25, 1.0, -1.0]));
            let x = tape.param(&px);
            let b = tape.param(&pb);
            let y = if fused { x.add_row_relu(&b) } else { x.add_row(&b).relu() };
            let out = y.value();
            y.sum_all().backward();
            let grads = (out, px.borrow().grad.clone(), pb.borrow().grad.clone());
            grads
        };
        let (yf, gxf, gbf) = run(true);
        let (yu, gxu, gbu) = run(false);
        assert_eq!(yf, yu);
        assert_eq!(gxf, gxu);
        assert_eq!(gbf, gbu);
    }

    #[test]
    fn tanh_gradient_matches_identity() {
        let tape = Tape::new();
        let p = Param::new(Tensor::scalar(0.5));
        let v = tape.param(&p);
        v.tanh().sum_all().backward();
        let expected = 1.0 - 0.5f32.tanh().powi(2);
        assert!((p.borrow().grad.item() - expected).abs() < 1e-5);
    }

    #[test]
    fn softmax_gradient_sums_to_zero() {
        // The Jacobian of softmax maps the all-ones upstream gradient to 0.
        let tape = Tape::new();
        let p = Param::new(Tensor::from_vec(1, 4, vec![0.3, -1.0, 2.0, 0.0]));
        let v = tape.param(&p);
        v.softmax_rows().sum_all().backward();
        let g = p.borrow().grad.clone();
        assert!(g.data().iter().all(|&x| x.abs() < 1e-6));
    }

    #[test]
    fn gather_accumulates_repeated_indices() {
        let tape = Tape::new();
        let p = Param::new(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let v = tape.param(&p);
        v.gather_rows(&[0, 0, 2]).sum_all().backward();
        let g = p.borrow().grad.clone();
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn slice_and_concat_roundtrip_grad() {
        let tape = Tape::new();
        let p = Param::new(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let v = tape.param(&p);
        let left = v.slice_cols(0, 1);
        let right = v.slice_cols(1, 1);
        let whole = left.concat_cols(&right);
        whole.sum_all().backward();
        assert!(p.borrow().grad.data().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn distance_gradient() {
        let tape = Tape::new();
        let p = Param::new(Tensor::row_vector(&[3.0, 0.0]));
        let v = tape.param(&p);
        let target = tape.constant(Tensor::row_vector(&[0.0, 4.0]));
        let d = v.distance(&target); // 5
        assert!((d.item() - 5.0).abs() < 1e-5);
        d.backward();
        // grad = (p - t) / ||p - t|| = (3/5, -4/5)
        let g = p.borrow().grad.clone();
        assert!((g.get(0, 0) - 0.6).abs() < 1e-4);
        assert!((g.get(0, 1) + 0.8).abs() < 1e-4);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let tape = Tape::new();
        let (p, v) = scalar_var(&tape, 1.5);
        // f = v + v  => df/dv = 2
        v.add(&v).backward();
        assert!((p.borrow().grad.item() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn repeated_param_lookups_share_one_node() {
        let tape = Tape::new();
        let p = Param::new(Tensor::scalar(2.0));
        let a = tape.param(&p);
        let before = tape.len();
        let b = tape.param(&p);
        assert_eq!(tape.len(), before, "second lookup must not add a node");
        // gradient still accumulates across both uses: f = p * p
        a.mul(&b).backward();
        assert!((p.borrow().grad.item() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn constant_arc_shares_the_buffer() {
        let tape = Tape::new();
        let t = Arc::new(Tensor::row_vector(&[1.0, 2.0]));
        let v = tape.constant_arc(Arc::clone(&t));
        assert!(Arc::ptr_eq(&t, &v.value_arc()));
    }

    #[test]
    fn reset_clears_nodes_and_hooks() {
        let tape = Tape::new();
        let p = Param::new(Tensor::scalar(1.0));
        let v = tape.param(&p);
        v.square().sum_all().backward();
        assert!(!tape.is_empty());
        tape.reset();
        assert!(tape.is_empty());
        // a fresh recording on the same tape works and re-hooks the param
        p.zero_grad();
        let v2 = tape.param(&p);
        v2.square().sum_all().backward(); // d/dp p^2 = 2
        assert!((p.borrow().grad.item() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn backward_twice_on_separate_tapes_accumulates() {
        let p = Param::new(Tensor::scalar(2.0));
        for _ in 0..2 {
            let tape = Tape::new();
            let v = tape.param(&p);
            v.square().sum_all().backward(); // d/dp = 4
        }
        assert!((p.borrow().grad.item() - 8.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "must start from a scalar")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let v = tape.constant(Tensor::zeros(2, 2));
        v.backward();
    }
}
