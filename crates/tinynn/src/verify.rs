//! Pre-execution static verification of a recorded tape.
//!
//! [`Var::backward`](crate::Var::backward) walks the tape trusting that
//! every node's metadata is consistent — shapes line up, edges point
//! backwards, and every parameter is actually connected to the output.
//! When that trust is misplaced (a hand-built graph, a detached-proxy
//! mistake, a future op with a buggy recording), the failure mode is a
//! panic deep inside an epoch or — worse — a silently-zero gradient.
//!
//! [`verify_tape`] walks the recorded [`NodeMeta`] *before* `backward`
//! runs and returns a typed [`GraphReport`] instead of panicking:
//!
//! * **shape safety** — each node's recorded output shape must match both
//!   the tensor actually stored at the node and the shape its op would
//!   produce from its inputs' shapes;
//! * **edge sanity** — every input edge must point at an earlier node
//!   (the reverse walk visits ids in descending order, so a forward or
//!   self edge would silently drop gradient);
//! * **grad flow** — every parameter recorded on the tape must be
//!   reachable from the root, otherwise its gradient stays zero without
//!   any error;
//! * **dead nodes** — non-leaf nodes unreachable from the root are
//!   reported separately as wasted forward work (informational, not
//!   fatal: a loss graph legitimately drops e.g. an unused hash code
//!   when an anchor has no ranking pairs).
//!
//! The verifier is pure analysis: it never touches tensor data beyond
//! shapes and never mutates the tape, so it is cheap enough for the
//! trainer's debug-build hook to run on the first batch of every epoch.

use crate::tape::{Op, Tape, Var};
use std::fmt;

/// One fatal inconsistency found in a recorded tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphIssue {
    /// The queried root does not live on the verified tape at all.
    ForeignRoot,
    /// A node's recorded shape disagrees with the tensor stored at it.
    RecordedShapeDrift {
        /// Node id.
        node: usize,
        /// The node's op.
        op: Op,
        /// Shape in the metadata.
        recorded: (usize, usize),
        /// Shape of the stored value.
        actual: (usize, usize),
    },
    /// A node's inputs have shapes its op cannot combine.
    IncompatibleInputs {
        /// Node id.
        node: usize,
        /// The node's op.
        op: Op,
        /// What exactly is incompatible.
        detail: String,
    },
    /// An op applied to its inputs' shapes would produce a different
    /// output shape than the one recorded.
    ShapeMismatch {
        /// Node id.
        node: usize,
        /// The node's op.
        op: Op,
        /// Shape the op would produce.
        expected: (usize, usize),
        /// Shape actually recorded.
        recorded: (usize, usize),
    },
    /// An input edge points at the node itself or a later node, which the
    /// reverse-order backward walk would silently skip.
    BadEdge {
        /// Node id.
        node: usize,
        /// The offending input id.
        input: usize,
    },
    /// A parameter leaf with no path to the root: `backward` from the
    /// root can never deposit a gradient into it.
    UnreachableParam {
        /// The parameter's leaf node id.
        node: usize,
    },
}

impl fmt::Display for GraphIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIssue::ForeignRoot => {
                write!(f, "root var does not belong to the verified tape")
            }
            GraphIssue::RecordedShapeDrift { node, op, recorded, actual } => write!(
                f,
                "node {node} ({}): recorded shape {recorded:?} != stored value shape {actual:?}",
                op.name()
            ),
            GraphIssue::IncompatibleInputs { node, op, detail } => {
                write!(f, "node {node} ({}): incompatible inputs: {detail}", op.name())
            }
            GraphIssue::ShapeMismatch { node, op, expected, recorded } => write!(
                f,
                "node {node} ({}): op produces {expected:?} but {recorded:?} was recorded",
                op.name()
            ),
            GraphIssue::BadEdge { node, input } => write!(
                f,
                "node {node}: input edge to node {input} does not point backwards"
            ),
            GraphIssue::UnreachableParam { node } => write!(
                f,
                "param node {node} is unreachable from the root: its gradient can never be \
                 updated"
            ),
        }
    }
}

/// The result of statically verifying a tape against a root node.
///
/// `issues` are fatal: running `backward` on a tape with any of them
/// either panics or silently computes wrong/missing gradients.
/// `dead_nodes` are informational: forward work whose result cannot
/// influence the root.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Fatal inconsistencies, in ascending node order.
    pub issues: Vec<GraphIssue>,
    /// Non-leaf nodes unreachable from the root (wasted forward compute).
    pub dead_nodes: Vec<usize>,
    /// Total nodes inspected.
    pub nodes_checked: usize,
    /// Parameter leaves on the tape.
    pub params: usize,
}

impl GraphReport {
    /// True when no fatal issue was found (dead nodes do not count).
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} params: {} issue(s), {} dead node(s)",
            self.nodes_checked,
            self.params,
            self.issues.len(),
            self.dead_nodes.len()
        )?;
        for issue in &self.issues {
            write!(f, "\n  - {issue}")?;
        }
        Ok(())
    }
}

/// Output shape `op` produces from its inputs' shapes, or a description
/// of why the inputs are incompatible.
fn expected_shape(op: Op, ins: &[(usize, usize)]) -> Result<(usize, usize), String> {
    let same = |a: (usize, usize), b: (usize, usize)| -> Result<(usize, usize), String> {
        if a == b {
            Ok(a)
        } else {
            Err(format!("elementwise op over {a:?} and {b:?}"))
        }
    };
    match op {
        Op::Constant | Op::Param => Err("leaf op cannot have inputs".into()),
        Op::Add | Op::Sub | Op::Mul | Op::Div => same(ins[0], ins[1]),
        Op::AddRow | Op::AddRowRelu | Op::MulRow => {
            if ins[1].0 != 1 {
                Err(format!("row operand must be 1xd, got {:?}", ins[1]))
            } else if ins[0].1 != ins[1].1 {
                Err(format!("width mismatch: {:?} vs {:?}", ins[0], ins[1]))
            } else {
                Ok(ins[0])
            }
        }
        Op::Scale
        | Op::AddScalar
        | Op::Relu
        | Op::Tanh
        | Op::Sigmoid
        | Op::Exp
        | Op::Ln
        | Op::Sqrt
        | Op::Square
        | Op::SoftmaxRows
        | Op::StandardizeRows => Ok(ins[0]),
        Op::Matmul => {
            if ins[0].1 != ins[1].0 {
                Err(format!("inner dimensions differ: {:?} x {:?}", ins[0], ins[1]))
            } else {
                Ok((ins[0].0, ins[1].1))
            }
        }
        Op::MatmulNt => {
            if ins[0].1 != ins[1].1 {
                Err(format!("shared dimensions differ: {:?} x {:?}^T", ins[0], ins[1]))
            } else {
                Ok((ins[0].0, ins[1].0))
            }
        }
        Op::Transpose => Ok((ins[0].1, ins[0].0)),
        Op::SumAll => Ok((1, 1)),
        Op::SumRows => Ok((1, ins[0].1)),
        Op::ConcatCols => {
            if ins[0].0 != ins[1].0 {
                Err(format!("row counts differ: {:?} ++ {:?}", ins[0], ins[1]))
            } else {
                Ok((ins[0].0, ins[0].1 + ins[1].1))
            }
        }
        Op::ConcatRows => {
            if ins[0].1 != ins[1].1 {
                Err(format!("widths differ: {:?} ++ {:?}", ins[0], ins[1]))
            } else {
                Ok((ins[0].0 + ins[1].0, ins[0].1))
            }
        }
        Op::SliceRows { start, len } => {
            if start + len > ins[0].0 {
                Err(format!("rows [{start}, {}) out of {:?}", start + len, ins[0]))
            } else {
                Ok((len, ins[0].1))
            }
        }
        Op::SliceCols { start, len } => {
            if start + len > ins[0].1 {
                Err(format!("cols [{start}, {}) out of {:?}", start + len, ins[0]))
            } else {
                Ok((ins[0].0, len))
            }
        }
        Op::GatherRows { count, max_index } => {
            if count > 0 && max_index >= ins[0].0 {
                Err(format!("gather index {max_index} out of {:?}", ins[0]))
            } else {
                Ok((count, ins[0].1))
            }
        }
    }
}

/// Statically verifies the recording of `tape` against `root` — the node
/// a subsequent `backward`/`backward_with` call would start from.
///
/// Never panics and never mutates the tape; see the module docs for the
/// exact checks performed.
pub fn verify_tape(tape: &Tape, root: &Var) -> GraphReport {
    let mut report = GraphReport { nodes_checked: tape.len(), ..GraphReport::default() };
    if !tape.owns(root) {
        report.issues.push(GraphIssue::ForeignRoot);
        return report;
    }
    let n = tape.len();
    let root_id = root.node_id();

    // ---- per-node structural checks --------------------------------
    for id in 0..n {
        let meta = tape.node_meta(id);
        let actual = tape.node_value_shape(id);
        if meta.shape != actual {
            report.issues.push(GraphIssue::RecordedShapeDrift {
                node: id,
                op: meta.op,
                recorded: meta.shape,
                actual,
            });
        }
        let mut edges_ok = true;
        for &input in meta.inputs() {
            if input >= id {
                report.issues.push(GraphIssue::BadEdge { node: id, input });
                edges_ok = false;
            }
        }
        if edges_ok && !meta.inputs().is_empty() {
            let ins: Vec<(usize, usize)> =
                meta.inputs().iter().map(|&i| tape.node_meta(i).shape).collect();
            match expected_shape(meta.op, &ins) {
                Err(detail) => report.issues.push(GraphIssue::IncompatibleInputs {
                    node: id,
                    op: meta.op,
                    detail,
                }),
                Ok(expected) if expected != meta.shape => {
                    report.issues.push(GraphIssue::ShapeMismatch {
                        node: id,
                        op: meta.op,
                        expected,
                        recorded: meta.shape,
                    })
                }
                Ok(_) => {}
            }
        }
    }

    // ---- reachability from the root --------------------------------
    // Follows recorded edges only while they point backwards, so a
    // mutated tape with cycles still terminates.
    let mut reachable = vec![false; n];
    let mut stack = vec![root_id];
    reachable[root_id] = true;
    while let Some(id) = stack.pop() {
        for &input in tape.node_meta(id).inputs() {
            if input < id && !reachable[input] {
                reachable[input] = true;
                stack.push(input);
            }
        }
    }

    let params = tape.param_nodes();
    report.params = params.len();
    for id in params {
        if !reachable[id] {
            report.issues.push(GraphIssue::UnreachableParam { node: id });
        }
    }
    for (id, &r) in reachable.iter().enumerate() {
        let op = tape.node_meta(id).op;
        if !r && !matches!(op, Op::Constant | Op::Param) {
            report.dead_nodes.push(id);
        }
    }

    report.issues.sort_by_key(issue_order);
    report
}

/// Sort key keeping the report deterministic: node id first, then an
/// arbitrary-but-fixed issue rank.
fn issue_order(issue: &GraphIssue) -> (usize, u8) {
    match issue {
        GraphIssue::ForeignRoot => (0, 0),
        GraphIssue::RecordedShapeDrift { node, .. } => (*node, 1),
        GraphIssue::BadEdge { node, .. } => (*node, 2),
        GraphIssue::IncompatibleInputs { node, .. } => (*node, 3),
        GraphIssue::ShapeMismatch { node, .. } => (*node, 4),
        GraphIssue::UnreachableParam { node } => (*node, 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::tensor::Tensor;

    fn healthy_graph() -> (Tape, Var, Param, Param) {
        let tape = Tape::new();
        let w = Param::new(Tensor::from_vec(2, 3, vec![0.1; 6]));
        let b = Param::new(Tensor::row_vector(&[0.5, -0.5, 0.25]));
        let x = tape.constant(Tensor::from_vec(4, 2, vec![1.0; 8]));
        let wv = tape.param(&w);
        let bv = tape.param(&b);
        let h = x.matmul(&wv).add_row_relu(&bv);
        let loss = h.square().sum_all();
        (tape, loss, w, b)
    }

    #[test]
    fn healthy_graph_verifies_clean() {
        let (tape, loss, _w, _b) = healthy_graph();
        let report = verify_tape(&tape, &loss);
        assert!(report.is_ok(), "unexpected issues: {report}");
        assert!(report.dead_nodes.is_empty());
        assert_eq!(report.params, 2);
        assert_eq!(report.nodes_checked, tape.len());
    }

    #[test]
    fn mutated_shape_is_reported() {
        let (tape, loss, _w, _b) = healthy_graph();
        tape.debug_set_node_shape(3, (7, 9));
        let report = verify_tape(&tape, &loss);
        assert!(!report.is_ok());
        assert!(
            report
                .issues
                .iter()
                .any(|i| matches!(i, GraphIssue::RecordedShapeDrift { node: 3, .. })),
            "expected drift at node 3: {report}"
        );
    }

    #[test]
    fn severed_edge_reports_unreachable_param() {
        let (tape, loss, _w, _b) = healthy_graph();
        // Node 3 is the matmul(x, w); re-point its weight input at the
        // constant x, stranding the weight parameter (node 1).
        tape.debug_set_node_input(3, 1, 0);
        let report = verify_tape(&tape, &loss);
        assert!(report.issues.iter().any(|i| matches!(i, GraphIssue::UnreachableParam { .. })));
    }

    #[test]
    fn forward_edge_is_flagged() {
        let (tape, loss, _w, _b) = healthy_graph();
        let last = tape.len() - 1;
        tape.debug_set_node_input(3, 0, last);
        let report = verify_tape(&tape, &loss);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, GraphIssue::BadEdge { node: 3, .. })));
    }

    #[test]
    fn incompatible_inputs_are_reported() {
        let (tape, loss, _w, _b) = healthy_graph();
        // Claim the constant input of the matmul is 4x5: 4x5 . 2x3 is
        // not multiplicable.
        tape.debug_set_node_shape(0, (4, 5));
        let report = verify_tape(&tape, &loss);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, GraphIssue::IncompatibleInputs { node: 3, .. })));
    }

    #[test]
    fn dead_node_is_informational_not_fatal() {
        let tape = Tape::new();
        let p = Param::new(Tensor::scalar(2.0));
        let v = tape.param(&p);
        let used = v.square();
        let _unused = v.scale(3.0); // recorded, never consumed
        let loss = used.sum_all();
        let report = verify_tape(&tape, &loss);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.dead_nodes.len(), 1);
    }

    #[test]
    fn unreachable_param_without_mutation() {
        // Two params, loss only uses one — the classic detached-graph
        // mistake the verifier exists to catch.
        let tape = Tape::new();
        let used = Param::new(Tensor::scalar(1.0));
        let forgotten = Param::new(Tensor::scalar(2.0));
        let a = tape.param(&used);
        let _b = tape.param(&forgotten);
        let loss = a.square().sum_all();
        let report = verify_tape(&tape, &loss);
        assert_eq!(
            report.issues.len(),
            1,
            "exactly the forgotten param should be flagged: {report}"
        );
        assert!(matches!(report.issues[0], GraphIssue::UnreachableParam { node: 1 }));
    }

    #[test]
    fn foreign_root_is_rejected() {
        let (tape, _loss, _w, _b) = healthy_graph();
        let other = Tape::new();
        let foreign = other.constant(Tensor::scalar(1.0));
        let report = verify_tape(&tape, &foreign);
        assert_eq!(report.issues, vec![GraphIssue::ForeignRoot]);
    }

    #[test]
    fn report_display_is_readable() {
        let (tape, loss, _w, _b) = healthy_graph();
        tape.debug_set_node_shape(3, (7, 9));
        let text = verify_tape(&tape, &loss).to_string();
        assert!(text.contains("issue(s)"), "{text}");
        assert!(text.contains("node 3"), "{text}");
    }
}
