//! Trainable parameters and parameter collections.

use crate::tensor::Tensor;
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// Internal state of a trainable parameter.
#[derive(Debug)]
pub struct ParamData {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// First-moment estimate (Adam).
    pub m: Tensor,
    /// Second-moment estimate (Adam).
    pub v: Tensor,
    /// When `false`, optimizers skip this parameter. Used for the frozen
    /// pre-trained grid embeddings (Section IV-C of the paper).
    pub trainable: bool,
}

/// A shared, mutable, trainable tensor.
///
/// Cloning a `Param` clones the *handle*: both copies refer to the same
/// underlying value and gradient, which is how layers share weights with
/// the optimizer.
#[derive(Clone, Debug)]
pub struct Param(Rc<RefCell<ParamData>>);

impl Param {
    /// Wraps a tensor as a trainable parameter with zeroed state.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param(Rc::new(RefCell::new(ParamData {
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
            trainable: true,
        })))
    }

    /// Wraps a tensor as a frozen (non-trainable) parameter.
    pub fn frozen(value: Tensor) -> Self {
        let p = Self::new(value);
        p.0.borrow_mut().trainable = false;
        p
    }

    /// Immutable borrow of the full state.
    pub fn borrow(&self) -> Ref<'_, ParamData> {
        self.0.borrow()
    }

    /// Mutable borrow of the full state.
    pub fn borrow_mut(&self) -> RefMut<'_, ParamData> {
        self.0.borrow_mut()
    }

    /// Clone of the current value.
    pub fn value(&self) -> Tensor {
        self.0.borrow().value.clone()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.0.borrow().value.shape()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&self) {
        self.0.borrow_mut().grad.zero_out();
    }

    /// Adds `g` into the stored gradient.
    pub fn accumulate_grad(&self, g: &Tensor) {
        self.0.borrow_mut().grad.add_assign(g);
    }

    /// Whether optimizers should update this parameter.
    pub fn is_trainable(&self) -> bool {
        self.0.borrow().trainable
    }

    /// Marks the parameter frozen or trainable.
    pub fn set_trainable(&self, trainable: bool) {
        self.0.borrow_mut().trainable = trainable;
    }

    /// True if both handles point at the same parameter.
    pub fn ptr_eq(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// Stable identity key for this parameter (the address of its shared
    /// state). Used by the tape to deduplicate leaf nodes.
    pub fn key(&self) -> usize {
        // lint: allow(lossy-cast) — pointer-to-usize identity for map keys, lossless by definition
        Rc::as_ptr(&self.0) as usize
    }
}

/// An ordered collection of parameters, used by optimizers and for
/// serialization. Order is insertion order, so save/load round-trips as
/// long as the model is constructed identically.
#[derive(Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter (deduplicated by identity) and returns it.
    pub fn register(&mut self, p: Param) -> Param {
        if !self.params.iter().any(|q| q.ptr_eq(&p)) {
            self.params.push(p.clone());
        }
        p
    }

    /// Absorbs every parameter of another set.
    pub fn extend(&mut self, other: &ParamSet) {
        for p in &other.params {
            self.register(p.clone());
        }
    }

    /// Iterates over the parameters in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar values across all parameters.
    pub fn num_values(&self) -> usize {
        self.params.iter().map(|p| p.borrow().value.len()).sum()
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Snapshot of every parameter value, in registration order. The
    /// snapshot is `Send`, so worker threads can rebuild a model replica
    /// from it (see `load_values`).
    pub fn clone_values(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value()).collect()
    }

    /// Overwrites every parameter value from a snapshot produced by
    /// [`ParamSet::clone_values`] on an identically constructed set.
    ///
    /// # Panics
    /// Panics on length or shape mismatch — replicas must be built from
    /// the same model configuration.
    pub fn load_values(&self, values: &[Tensor]) {
        assert_eq!(values.len(), self.params.len(), "parameter count mismatch");
        for (p, v) in self.params.iter().zip(values) {
            let mut d = p.borrow_mut();
            assert_eq!(d.value.shape(), v.shape(), "parameter shape mismatch");
            d.value = v.clone();
        }
    }

    /// Overwrites every gradient with the given tensors (registration
    /// order) — the receiving end of the reduction that
    /// [`ParamSet::take_grads`] feeds.
    ///
    /// # Panics
    /// Panics on length or shape mismatch.
    pub fn load_grads(&self, grads: Vec<Tensor>) {
        assert_eq!(grads.len(), self.params.len(), "gradient count mismatch");
        for (p, g) in self.params.iter().zip(grads) {
            let mut d = p.borrow_mut();
            assert_eq!(d.value.shape(), g.shape(), "gradient shape mismatch");
            d.grad = g;
        }
    }

    /// Moves the accumulated gradients out, leaving zeros behind, in
    /// registration order. This is how a worker's replica hands its batch
    /// gradient back to the main thread for the deterministic reduction.
    pub fn take_grads(&self) -> Vec<Tensor> {
        self.params
            .iter()
            .map(|p| {
                let mut d = p.borrow_mut();
                let (r, c) = d.value.shape();
                std::mem::replace(&mut d.grad, Tensor::zeros(r, c))
            })
            .collect()
    }

    /// Serializes all parameter values (little-endian f32) preceded by a
    /// small header so `load_bytes` can validate shapes.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"TNN1");
        // lint: allow(lossy-cast) — parameter counts are tiny (tens), far below 2^32
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for p in &self.params {
            let d = p.borrow();
            let (r, c) = d.value.shape();
            // lint: allow(lossy-cast) — tensor dims are bounded by model width, far below 2^32
            out.extend_from_slice(&(r as u32).to_le_bytes());
            // lint: allow(lossy-cast) — tensor dims are bounded by model width, far below 2^32
            out.extend_from_slice(&(c as u32).to_le_bytes());
            for &x in d.value.data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Restores parameter values saved by [`ParamSet::save_bytes`].
    ///
    /// Returns an error string when the header, count, or any shape does
    /// not match the currently registered parameters.
    pub fn load_bytes(&self, bytes: &[u8]) -> Result<(), String> {
        self.load_impl(bytes, b"TNN1", false)
    }

    /// Serializes parameter values **and** optimizer state (the Adam
    /// first/second moments stored on each parameter), so training can
    /// roll back or resume without losing adaptive-learning-rate
    /// history. Layout mirrors [`ParamSet::save_bytes`] with a `TNS1`
    /// magic and three tensors (value, m, v) per parameter.
    pub fn save_state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"TNS1");
        // lint: allow(lossy-cast) — parameter counts are tiny (tens), far below 2^32
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for p in &self.params {
            let d = p.borrow();
            let (r, c) = d.value.shape();
            // lint: allow(lossy-cast) — tensor dims are bounded by model width, far below 2^32
            out.extend_from_slice(&(r as u32).to_le_bytes());
            // lint: allow(lossy-cast) — tensor dims are bounded by model width, far below 2^32
            out.extend_from_slice(&(c as u32).to_le_bytes());
            for t in [&d.value, &d.m, &d.v] {
                for &x in t.data() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out
    }

    /// Restores values and optimizer moments saved by
    /// [`ParamSet::save_state_bytes`]. All-or-nothing per parameter
    /// blob: any header/shape/length mismatch is reported before any
    /// tensor of that parameter is only partially overwritten.
    pub fn load_state_bytes(&self, bytes: &[u8]) -> Result<(), String> {
        self.load_impl(bytes, b"TNS1", true)
    }

    fn load_impl(&self, bytes: &[u8], magic: &[u8; 4], with_moments: bool) -> Result<(), String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > bytes.len() {
                return Err("unexpected end of parameter blob".into());
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != magic {
            return Err("bad magic in parameter blob".into());
        }
        // lint: allow(unwrap, lossy-cast) — take(4) returned exactly 4 bytes; u32 fits usize
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if count != self.params.len() {
            return Err(format!(
                "parameter count mismatch: blob has {count}, model has {}",
                self.params.len()
            ));
        }
        let tensors_per_param = if with_moments { 3usize } else { 1 };
        // Validate the whole blob before mutating anything, so a
        // truncated or corrupt blob can never leave the model in a
        // half-restored state.
        let mut scan = pos;
        for p in &self.params {
            // lint: allow(unwrap, lossy-cast) — take(4) returned exactly 4 bytes; u32 fits usize
            let r = u32::from_le_bytes(take(&mut scan, 4)?.try_into().unwrap()) as usize;
            // lint: allow(unwrap, lossy-cast) — take(4) returned exactly 4 bytes; u32 fits usize
            let c = u32::from_le_bytes(take(&mut scan, 4)?.try_into().unwrap()) as usize;
            let d = p.borrow();
            if d.value.shape() != (r, c) {
                return Err(format!(
                    "shape mismatch: blob has {r}x{c}, model has {:?}",
                    d.value.shape()
                ));
            }
            take(&mut scan, r * c * 4 * tensors_per_param)?;
        }
        if scan != bytes.len() {
            return Err("trailing bytes in parameter blob".into());
        }
        for p in &self.params {
            // lint: allow(unwrap, lossy-cast) — take(4) returned exactly 4 bytes; u32 fits usize
            let r = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            // lint: allow(unwrap, lossy-cast) — take(4) returned exactly 4 bytes; u32 fits usize
            let c = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let mut d = p.borrow_mut();
            let fill = |t: &mut crate::tensor::Tensor, raw: &[u8]| {
                for (i, chunk) in raw.chunks_exact(4).enumerate() {
                    // lint: allow(unwrap) — chunks_exact(4) yields 4-byte chunks
                    t.data_mut()[i] = f32::from_le_bytes(chunk.try_into().unwrap());
                }
            };
            let raw = take(&mut pos, r * c * 4)?;
            fill(&mut d.value, raw);
            if with_moments {
                let raw = take(&mut pos, r * c * 4)?;
                fill(&mut d.m, raw);
                let raw = take(&mut pos, r * c * 4)?;
                fill(&mut d.v, raw);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_dedupes_by_identity() {
        let mut set = ParamSet::new();
        let p = Param::new(Tensor::zeros(2, 2));
        set.register(p.clone());
        set.register(p.clone());
        assert_eq!(set.len(), 1);
        let q = Param::new(Tensor::zeros(2, 2));
        set.register(q);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn shared_handle_sees_updates() {
        let p = Param::new(Tensor::zeros(1, 2));
        let q = p.clone();
        p.borrow_mut().value.set(0, 1, 7.0);
        assert_eq!(q.value().get(0, 1), 7.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut set = ParamSet::new();
        let a = set.register(Param::new(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0])));
        let b = set.register(Param::new(Tensor::from_vec(2, 1, vec![-1.0, 4.5])));
        let blob = set.save_bytes();

        a.borrow_mut().value.zero_out();
        b.borrow_mut().value.zero_out();
        set.load_bytes(&blob).unwrap();
        assert_eq!(a.value().data(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.value().data(), &[-1.0, 4.5]);
    }

    #[test]
    fn load_rejects_wrong_shape() {
        let mut set = ParamSet::new();
        set.register(Param::new(Tensor::zeros(1, 3)));
        let blob = set.save_bytes();

        let mut other = ParamSet::new();
        other.register(Param::new(Tensor::zeros(3, 1)));
        assert!(other.load_bytes(&blob).is_err());
    }

    #[test]
    fn frozen_flag() {
        let p = Param::frozen(Tensor::zeros(1, 1));
        assert!(!p.is_trainable());
        p.set_trainable(true);
        assert!(p.is_trainable());
    }
}
