//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::{Rng, RngExt};

/// Xavier/Glorot uniform initialization for a `rows x cols` weight matrix:
/// values are drawn from `U(-a, a)` with `a = sqrt(6 / (rows + cols))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, -a, a)
}

/// Uniform initialization on `[lo, hi)`.
pub fn uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| lo + (hi - lo) * rng.random::<f32>())
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Approximately normal initialization with the given standard deviation,
/// using the Box–Muller transform.
pub fn normal<R: Rng>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.random::<f32>().max(1e-9);
        let u2: f32 = rng.random::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(std * r * theta.cos());
        if data.len() < rows * cols {
            data.push(std * r * theta.sin());
        }
    }
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x >= -a && x < a));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&mut rng, 100, 100, 0.5);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(7), 3, 3, 0.0, 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(7), 3, 3, 0.0, 1.0);
        assert_eq!(a, b);
    }
}
