//! Sanctioned lock helpers for compute caches.
//!
//! [`cread`] / [`cwrite`] are the acquisition points for the
//! insert-only caches of *pure* values (the positional-encoding table
//! here, the grid-input cache in the encoder crate). They recover from
//! poisoning instead of propagating it: every entry is an `Arc` of an
//! immutable value inserted wholesale, so a panicked holder can at most
//! have completed an insertion of a correct entry — there is no
//! half-mutated state a poisoned guard could expose, and a poisoned
//! cache must not take down model forwards on every other thread.
//!
//! traj-lint's `no-bare-lock` rule bans direct `.read()` / `.write()`
//! calls everywhere outside registered helpers like these.

use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-proof read of a compute-cache `RwLock`. See the module docs
/// for why recovery is sound.
pub fn cread<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-proof write of a compute-cache `RwLock`. See the module docs
/// for why recovery is sound.
pub fn cwrite<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_cache_still_serves_reads_and_writes() {
        let cache = Arc::new(RwLock::new(vec![1u32]));
        let c2 = Arc::clone(&cache);
        let joined = std::thread::spawn(move || {
            let _g = c2.write().unwrap();
            panic!("holder dies with the write lock");
        })
        .join();
        assert!(joined.is_err());

        assert_eq!(*cread(&cache), vec![1], "read recovers the intact value");
        cwrite(&cache).push(2);
        assert_eq!(*cread(&cache), vec![1, 2], "write recovers too");
    }
}
