//! Token-level view of a scanned file: the upgrade that lets rules see
//! *structure* — function boundaries, brace depth, statement shape —
//! instead of matching substrings on isolated lines.
//!
//! The [`crate::source`] scanner already separates code from comments
//! and literals; this module tokenizes the masked (code-only) text into
//! a flat stream of identifiers, numbers, and punctuation, each tagged
//! with its 1-based source line. On top of the stream sit two small
//! structural passes:
//!
//! * [`function_spans`] — brace-matched `fn` item boundaries (nested
//!   functions produce nested spans; [`enclosing_fn`] resolves the
//!   innermost), which is what lets the `no-bare-lock` rule exempt the
//!   *bodies* of registered poison-proof helpers while flagging every
//!   call site outside them;
//! * [`guard_scopes`] — lock-guard liveness: a binding produced by a
//!   lock acquisition (a registered helper call, or a bare
//!   `.lock()`/`.read()`/`.write()`) is tracked from its `let` to the
//!   end of its enclosing block (or an explicit `drop`), so the
//!   `no-guard-across-compute` rule can ask "does a compute call happen
//!   while this guard is live?".
//!
//! The tokenizer is deliberately not a full parser: generics, patterns,
//! and macros are navigated by depth counting, which is exact for the
//! brace/paren structure the two passes need.

use crate::source::ScannedFile;

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `let`, `tlock`, …).
    Ident,
    /// Numeric literal (lumped into one token).
    Number,
    /// A single punctuation character (`{`, `.`, `;`, …).
    Punct,
}

/// One token of the masked source.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (single character for punctuation).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Lexeme class.
    pub kind: TokenKind,
}

impl Token {
    fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Tokenizes the masked lines of `file` into a flat stream.
pub fn tokenize(file: &ScannedFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let chars: Vec<char> = line.masked.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: idx + 1,
                    kind: TokenKind::Ident,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: idx + 1,
                    kind: TokenKind::Number,
                });
            } else {
                out.push(Token { text: c.to_string(), line: idx + 1, kind: TokenKind::Punct });
                i += 1;
            }
        }
    }
    out
}

/// One `fn` item's extent in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_token: usize,
    /// Token index of the body's `{` (body-less trait fns are skipped).
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
}

/// Finds every `fn` item with a body. Nested functions and functions
/// inside `impl`/`mod` blocks all appear; spans may nest.
pub fn function_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].is("fn") {
            let Some(name_tok) = tokens.get(i + 1) else { break };
            if name_tok.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            // Scan forward for the body `{` — the first brace after the
            // signature. A `;` first means a body-less declaration.
            let mut j = i + 2;
            let mut body_open = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        body_open = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = body_open {
                if let Some(close) = match_brace(tokens, open) {
                    spans.push(FnSpan {
                        name: name_tok.text.clone(),
                        fn_token: i,
                        body_open: open,
                        body_close: close,
                        start_line: tokens[i].line,
                        end_line: tokens[close].line,
                    });
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    spans
}

/// Token index of the `}` matching the `{` at `open`.
pub fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Token index of the `)` matching the `(` at `open`.
pub fn match_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// The innermost function span containing token `idx`, if any.
pub fn enclosing_fn(spans: &[FnSpan], idx: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.fn_token <= idx && idx <= s.body_close)
        .min_by_key(|s| s.body_close - s.fn_token)
}

/// How a lock acquisition was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireKind {
    /// Call to a registered poison-proof helper (`tlock(&m)`).
    Helper,
    /// Bare `.lock()` / `.read()` / `.write()` on the lock itself.
    Bare,
}

/// One lock acquisition site in the token stream.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Token index of the method/helper name.
    pub name_token: usize,
    /// The helper or method name (`tlock`, `lock`, `read`, `write`).
    pub name: String,
    /// Token index of the acquisition call's closing `)`.
    pub call_close: usize,
    /// Helper call or bare method call.
    pub kind: AcquireKind,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// Finds every lock acquisition in `tokens`: calls to one of
/// `helper_names`, plus bare zero-argument `.lock()` / `.read()` /
/// `.write()` method calls (the zero-argument requirement is what keeps
/// `io::Read::read(&mut buf)` out).
pub fn acquisitions(tokens: &[Token], helper_names: &[&str]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let followed_by_open = tokens.get(i + 1).map(|n| n.is("(")).unwrap_or(false);
        if !followed_by_open {
            continue;
        }
        if helper_names.contains(&t.text.as_str()) {
            // Helper call — but not a method (`x.tlock()`) or a path
            // segment (`self::tlock`? paths still call the helper).
            let is_method = i > 0 && tokens[i - 1].is(".");
            if !is_method {
                if let Some(close) = match_paren(tokens, i + 1) {
                    out.push(Acquisition {
                        name_token: i,
                        name: t.text.clone(),
                        call_close: close,
                        kind: AcquireKind::Helper,
                        line: t.line,
                    });
                }
            }
        } else if matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && tokens[i - 1].is(".")
            && tokens.get(i + 2).map(|n| n.is(")")).unwrap_or(false)
        {
            out.push(Acquisition {
                name_token: i,
                name: t.text.clone(),
                call_close: i + 2,
                kind: AcquireKind::Bare,
                line: t.line,
            });
        }
    }
    out
}

/// A lock guard's liveness range in the token stream.
#[derive(Debug, Clone)]
pub struct GuardScope {
    /// The binding name (`"<temporary>"` for unbound guards).
    pub binding: String,
    /// The acquisition that produced the guard.
    pub acquired_line: usize,
    /// First token index at which the guard is live (just past the
    /// acquisition).
    pub start: usize,
    /// Last token index at which the guard is live (inclusive).
    pub end: usize,
}

/// Start-of-statement token index for the statement containing `idx`:
/// the token after the previous `;`, `{`, or `}` at any depth.
fn statement_start(tokens: &[Token], idx: usize) -> usize {
    let mut j = idx;
    while j > 0 {
        match tokens[j - 1].text.as_str() {
            ";" | "{" | "}" => return j,
            _ => j -= 1,
        }
    }
    0
}

/// Token index of the `;` ending the statement that contains `idx`
/// (skipping over nested blocks and parens), or the end of `limit`.
fn statement_end(tokens: &[Token], idx: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    let mut j = idx;
    while j <= limit && j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" | "{" | "[" => depth += 1,
            ")" | "}" | "]" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    limit.min(tokens.len().saturating_sub(1))
}

/// Computes the liveness scope of the guard produced by `acq`, given
/// the body range of the enclosing function. Returns `None` when the
/// guard is provably dead immediately (the acquisition result is
/// consumed inside a larger expression — `Arc::clone(&rread(x))` — so
/// the temporary dies at the statement's end with nothing to check
/// beyond it... except the statement itself, which is still returned as
/// a narrow scope).
pub fn guard_scope(
    tokens: &[Token],
    acq: &Acquisition,
    body_open: usize,
    body_close: usize,
) -> GuardScope {
    let stmt_start = statement_start(tokens, acq.name_token).max(body_open);
    let first = &tokens[stmt_start];

    // `let NAME = <acquisition>;` — named guard, live to end of the
    // enclosing block or an explicit `drop(NAME)`.
    if first.is("let") {
        // `.unwrap()` / `.expect(..)` after the acquisition still binds
        // the guard itself (`let g = l.read().unwrap();`), so skip the
        // chain before deciding whether the binding is the guard.
        let mut call_close = acq.call_close;
        while tokens.get(call_close + 1).map(|t| t.is(".")).unwrap_or(false)
            && tokens
                .get(call_close + 2)
                .map(|t| t.is("unwrap") || t.is("expect"))
                .unwrap_or(false)
            && tokens.get(call_close + 3).map(|t| t.is("(")).unwrap_or(false)
        {
            match match_paren(tokens, call_close + 3) {
                Some(close) => call_close = close,
                None => break,
            }
        }
        let after_call = tokens.get(call_close + 1).map(|t| t.text.as_str());
        if after_call == Some(";") {
            // Binding name: first identifier after `let`, skipping `mut`.
            let mut name = String::from("<guard>");
            let mut j = stmt_start + 1;
            while j < acq.name_token {
                if tokens[j].kind == TokenKind::Ident && !tokens[j].is("mut") {
                    name = tokens[j].text.clone();
                    break;
                }
                j += 1;
            }
            // Scope: from past the `;` to the `}` closing the block the
            // statement sits in, or an explicit drop(NAME).
            let mut depth = 0i64;
            let mut end = body_close;
            let mut k = call_close + 2;
            while k <= body_close {
                match tokens[k].text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        if depth == 0 {
                            end = k;
                            break;
                        }
                        depth -= 1;
                    }
                    "drop"
                        if depth == 0
                            && tokens.get(k + 1).map(|t| t.is("(")).unwrap_or(false)
                            && tokens.get(k + 2).map(|t| t.text == name).unwrap_or(false) =>
                    {
                        end = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            return GuardScope {
                binding: name,
                acquired_line: acq.line,
                start: call_close + 1,
                end,
            };
        }
        // `let x = rread(m).field;` / `let x = Arc::clone(&rread(m));` —
        // the guard is a temporary that dies at the statement's `;`.
        let end = statement_end(tokens, acq.call_close + 1, body_close);
        return GuardScope {
            binding: "<temporary>".into(),
            acquired_line: acq.line,
            start: acq.call_close + 1,
            end,
        };
    }

    // `if let … = <acq>` / `while let …` / `match <acq>` — the
    // scrutinee temporary lives for the entire following block.
    if first.is("if") || first.is("while") || first.is("match") {
        let mut k = acq.call_close + 1;
        while k <= body_close && !tokens[k].is("{") {
            k += 1;
        }
        let end = match_brace(tokens, k).unwrap_or(body_close).min(body_close);
        return GuardScope {
            binding: "<scrutinee>".into(),
            acquired_line: acq.line,
            start: acq.call_close + 1,
            end,
        };
    }

    // Plain expression statement (`tlock(&t).hits += 1;`): temporary,
    // dead at the `;`.
    let end = statement_end(tokens, acq.call_close + 1, body_close);
    GuardScope { binding: "<temporary>".into(), acquired_line: acq.line, start: acq.call_close + 1, end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&scan("x.rs", src, false))
    }

    #[test]
    fn tokenizer_masks_and_lines() {
        let t = toks("fn a() { // comment with fn\n  let x = 1;\n}\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["fn", "a", "(", ")", "{", "let", "x", "=", "1", ";", "}"]);
        assert_eq!(t[5].line, 2); // `let` on line 2
    }

    #[test]
    fn function_spans_nest_and_name() {
        let t = toks("fn outer() {\n  fn inner() { }\n}\nfn bodyless();\n");
        let spans = function_spans(&t);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[0].body_close > spans[1].body_close);
        let inner = enclosing_fn(&spans, spans[1].body_open).unwrap();
        assert_eq!(inner.name, "inner");
    }

    #[test]
    fn acquisitions_distinguish_helper_and_bare() {
        let t = toks("fn f() { let g = tlock(&m); let h = m.lock(); m.read(&mut buf); }\n");
        let acqs = acquisitions(&t, &["tlock"]);
        assert_eq!(acqs.len(), 2, "{acqs:?}");
        assert_eq!(acqs[0].kind, AcquireKind::Helper);
        assert_eq!(acqs[1].kind, AcquireKind::Bare);
        // read(&mut buf) has arguments — not a lock acquisition.
        assert!(acqs.iter().all(|a| a.name != "read"));
    }

    #[test]
    fn named_guard_scope_runs_to_block_end() {
        let src = "fn f() {\n  let g = tlock(&m);\n  work();\n}\nfn other() { late(); }\n";
        let t = toks(src);
        let spans = function_spans(&t);
        let acq = &acquisitions(&t, &["tlock"])[0];
        let scope = guard_scope(&t, acq, spans[0].body_open, spans[0].body_close);
        assert_eq!(scope.binding, "g");
        // `work` is inside the scope; `late` (next fn) is not.
        let work = t.iter().position(|x| x.is("work")).unwrap();
        let late = t.iter().position(|x| x.is("late")).unwrap();
        assert!(scope.start <= work && work <= scope.end);
        assert!(late > scope.end);
    }

    #[test]
    fn unwrap_chained_bare_lock_still_binds_a_named_guard() {
        // `let g = l.read().unwrap();` binds the guard itself — the
        // `.unwrap()` must not demote it to a dead temporary.
        let src = "fn f() {\n  let g = l.read().unwrap();\n  work(&g);\n}\n";
        let t = toks(src);
        let spans = function_spans(&t);
        let acq = &acquisitions(&t, &[])[0];
        let scope = guard_scope(&t, acq, spans[0].body_open, spans[0].body_close);
        assert_eq!(scope.binding, "g");
        let work = t.iter().position(|x| x.is("work")).unwrap();
        assert!(scope.start <= work && work <= scope.end, "{scope:?}");
    }

    #[test]
    fn drop_ends_a_named_guard_scope() {
        let src = "fn f() {\n  let g = tlock(&m);\n  early();\n  drop(g);\n  late();\n}\n";
        let t = toks(src);
        let spans = function_spans(&t);
        let acq = &acquisitions(&t, &["tlock"])[0];
        let scope = guard_scope(&t, acq, spans[0].body_open, spans[0].body_close);
        let early = t.iter().position(|x| x.is("early")).unwrap();
        let late = t.iter().position(|x| x.is("late")).unwrap();
        assert!(scope.start <= early && early <= scope.end);
        assert!(late > scope.end);
    }

    #[test]
    fn consumed_temporary_dies_at_statement_end() {
        let src = "fn f() {\n  let bp = Arc::clone(&rread(&m));\n  heavy(bp);\n}\n";
        let t = toks(src);
        let spans = function_spans(&t);
        let acq = &acquisitions(&t, &["rread"])[0];
        let scope = guard_scope(&t, acq, spans[0].body_open, spans[0].body_close);
        assert_eq!(scope.binding, "<temporary>");
        let heavy = t.iter().position(|x| x.is("heavy")).unwrap();
        assert!(heavy > scope.end, "temporary must not cover the next statement");
    }

    #[test]
    fn if_let_scrutinee_covers_the_body_block() {
        let src = "fn f() {\n  if let Some(v) = rread(&m).get(k) {\n    inside();\n  }\n  outside();\n}\n";
        let t = toks(src);
        let spans = function_spans(&t);
        let acq = &acquisitions(&t, &["rread"])[0];
        let scope = guard_scope(&t, acq, spans[0].body_open, spans[0].body_close);
        let inside = t.iter().position(|x| x.is("inside")).unwrap();
        let outside = t.iter().position(|x| x.is("outside")).unwrap();
        assert!(scope.start <= inside && inside <= scope.end);
        assert!(outside > scope.end);
    }
}
