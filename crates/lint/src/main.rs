//! `traj-lint`: the workspace static-analysis gate.
//!
//! ```text
//! traj-lint [--root DIR] [--allowlist FILE] [--fix-list] [FILES...]
//! ```
//!
//! With no `FILES`, scans every library source under `crates/*/src` and
//! the root `src/`. Exit codes: 0 clean, 1 findings, 2 driver error.
//! `--fix-list` additionally prints a ready-to-paste `lint.allow` entry
//! per finding to make triage cheap.

use std::path::PathBuf;
use std::process::ExitCode;
use traj_lint::{default_targets, fix_list_entry, parse_allowlist, run, AllowEntry};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    fix_list: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        fix_list: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?));
            }
            "--fix-list" => args.fix_list = true,
            "-h" | "--help" => {
                println!(
                    "traj-lint [--root DIR] [--allowlist FILE] [--fix-list] [FILES...]\n\
                     Repo-specific static analysis; see DESIGN.md section 10."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("traj-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let allow: Vec<AllowEntry> = {
        let path = args
            .allowlist
            .clone()
            .unwrap_or_else(|| args.root.join("lint.allow"));
        if path.is_file() {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("traj-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match parse_allowlist(&text) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("traj-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            Vec::new()
        }
    };

    let files = if args.files.is_empty() {
        match default_targets(&args.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("traj-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        args.files.clone()
    };

    let report = match run(&args.root, &files, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("traj-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for warning in &report.warnings {
        eprintln!("traj-lint: warning: {warning}");
    }
    for finding in &report.findings {
        println!("{finding}");
    }
    if args.fix_list && !report.findings.is_empty() {
        // Pre-sorted and deduplicated so the block pastes straight into
        // lint.allow, whose parser rejects duplicates and unsorted
        // entries.
        let mut entries: Vec<String> = report.findings.iter().map(fix_list_entry).collect();
        entries.sort();
        entries.dedup();
        println!("\n# lint.allow entries for the findings above (pre-sorted):");
        for entry in entries {
            println!("{entry}");
        }
    }

    if report.is_clean() {
        println!(
            "traj-lint: clean ({} files, {} suppressed by allowlist)",
            report.files_scanned, report.suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "traj-lint: {} finding(s) across {} files ({} suppressed)",
            report.findings.len(),
            report.files_scanned,
            report.suppressed
        );
        ExitCode::from(1)
    }
}
