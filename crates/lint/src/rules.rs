//! The repo-specific lint rules.
//!
//! Every rule works on the masked (code-only) view a [`ScannedFile`]
//! provides, skips test code, and honours `// lint: allow(...)`
//! annotations on the same or the immediately preceding line. Rules are
//! deliberately token-level: they trade a rustc plugin's precision for
//! zero dependencies and an offline-friendly sub-second run, and the
//! patterns they match (`partial_cmp` in a comparator, `.unwrap()`,
//! `panic!`) are distinctive enough that masking comments and strings
//! removes essentially all false positives.

use crate::registry::KNOWN_MAGICS;
use crate::source::ScannedFile;
use std::fmt;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-unwrap-in-lib`.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed — also the allowlist matching key.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}\n    {}", self.path, self.line, self.rule, self.message, self.snippet)
    }
}

/// All rule identifiers, in reporting order.
pub const RULES: &[&str] = &[
    "no-float-partial-cmp-sort",
    "no-unwrap-in-lib",
    "no-silent-clamp",
    "no-panic-in-engine",
    "no-raw-print-in-lib",
    "checkpoint-magic-registry",
];

/// Short aliases accepted in `// lint: allow(...)` annotations.
fn rule_aliases(rule: &str) -> &[&str] {
    match rule {
        "no-float-partial-cmp-sort" => &["partial-cmp", "no-float-partial-cmp-sort"],
        "no-unwrap-in-lib" => &["unwrap", "no-unwrap-in-lib"],
        "no-silent-clamp" => &["silent-clamp", "no-silent-clamp"],
        "no-panic-in-engine" => &["panic", "no-panic-in-engine"],
        "no-raw-print-in-lib" => &["raw-print", "no-raw-print-in-lib"],
        "checkpoint-magic-registry" => &["magic", "checkpoint-magic-registry"],
        _ => &[],
    }
}

/// True when line `idx` (0-based) carries or inherits an annotation
/// allowing `rule`: `// lint: allow(name)` on the same line or on the
/// line directly above, with `name` either the rule id or its alias.
/// Multiple names may be comma-separated.
fn is_allowed(file: &ScannedFile, idx: usize, rule: &str) -> bool {
    let allows = |comment: &str| -> bool {
        let Some(pos) = comment.find("lint: allow(") else { return false };
        let rest = &comment[pos + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { return false };
        rest[..end]
            .split(',')
            .map(str::trim)
            .any(|name| rule_aliases(rule).contains(&name))
    };
    if allows(&file.lines[idx].comment) {
        return true;
    }
    idx > 0 && allows(&file.lines[idx - 1].comment)
}

/// Standard per-line scaffold: applies the test exemption and the
/// annotation check, then lets `matcher` decide.
fn scan_lines(
    file: &ScannedFile,
    rule: &'static str,
    message: &str,
    out: &mut Vec<Finding>,
    matcher: impl Fn(&str) -> bool,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !matcher(&line.masked) || is_allowed(file, idx, rule) {
            continue;
        }
        out.push(Finding {
            rule,
            path: file.path.clone(),
            line: idx + 1,
            snippet: line.raw.trim().to_string(),
            message: message.to_string(),
        });
    }
}

/// `no-float-partial-cmp-sort`: float ordering must route through
/// `traj_index::topk` or `total_cmp`. `partial_cmp` in non-test library
/// code is how the 7 NaN-unsound sorts of PRs 1–3 slipped through:
/// `unwrap_or(Equal)` silently scrambles the order and `.unwrap()`
/// panics the first time a distance is poisoned.
pub fn no_float_partial_cmp_sort(file: &ScannedFile, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        "no-float-partial-cmp-sort",
        "float ordering via partial_cmp; use total_cmp or traj_index::topk",
        out,
        |masked| masked.contains(".partial_cmp("),
    );
}

/// `no-unwrap-in-lib`: library crates return typed errors instead of
/// panicking. `#[cfg(test)]` code is exempt; genuinely infallible sites
/// carry `// lint: allow(unwrap)` with a one-line justification.
pub fn no_unwrap_in_lib(file: &ScannedFile, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        "no-unwrap-in-lib",
        "unwrap() in library code; return a typed error or justify with lint: allow(unwrap)",
        out,
        |masked| masked.contains(".unwrap()"),
    );
}

/// `no-silent-clamp`: bans `unwrap_or(Ordering::Equal)` — the pattern
/// that turns a failed float comparison into a silent reorder instead
/// of an error.
pub fn no_silent_clamp(file: &ScannedFile, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        "no-silent-clamp",
        "unwrap_or(Ordering::Equal) silently clamps a failed comparison",
        out,
        |masked| {
            masked.contains("unwrap_or(Ordering::Equal)")
                || (masked.contains("unwrap_or(") && masked.contains("Ordering::Equal"))
        },
    );
}

/// `no-panic-in-engine`: crates on the serving and evaluation paths
/// must never panic on operational input — a poisoned query or a dead
/// worker must surface as a typed error (`EngineError`, `EvalError`),
/// not take the process down. Applies to `crates/engine/src` and
/// `crates/eval/src`.
pub fn no_panic_in_engine(file: &ScannedFile, out: &mut Vec<Finding>) {
    if !file.path.contains("crates/engine/src") && !file.path.contains("crates/eval/src") {
        return;
    }
    const PATTERNS: &[&str] = &["panic!", ".expect(", "unreachable!", "todo!", "unimplemented!"];
    scan_lines(
        file,
        "no-panic-in-engine",
        "potential panic on a no-panic path; return a typed error (EngineError/EvalError)",
        out,
        |masked| PATTERNS.iter().any(|p| masked.contains(p)),
    );
}

/// `no-raw-print-in-lib`: library modules must not write to
/// stdout/stderr directly — diagnostics route through `traj_obs`
/// (events/counters a sink can format or export) or come back as
/// return values the caller renders. Binary targets (`src/bin/`,
/// `main.rs`) own the terminal and are exempt; deliberate CLI output
/// elsewhere carries `// lint: allow(raw-print)`.
pub fn no_raw_print_in_lib(file: &ScannedFile, out: &mut Vec<Finding>) {
    let path = &file.path;
    let in_lib_module = path.contains("crates/")
        && path.contains("/src/")
        && !path.contains("/src/bin/")
        && !path.ends_with("/main.rs");
    if !in_lib_module {
        return;
    }
    const PATTERNS: &[&str] = &["println!", "eprintln!", "print!(", "eprint!("];
    scan_lines(
        file,
        "no-raw-print-in-lib",
        "raw stdout/stderr print in library code; emit a traj_obs event or return the text",
        out,
        |masked| PATTERNS.iter().any(|p| masked.contains(p)),
    );
}

/// `checkpoint-magic-registry`: every container magic (a 4–8 character
/// uppercase-alphanumeric byte-string like `T2HSNAP1`) must be declared
/// in [`crate::registry::KNOWN_MAGICS`], so two serialization formats
/// can never silently claim the same header.
pub fn checkpoint_magic_registry(file: &ScannedFile, out: &mut Vec<Finding>) {
    for lit in &file.byte_literals {
        let looks_like_magic = (4..=8).contains(&lit.value.len())
            && lit.value.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
            && lit.value.chars().any(|c| c.is_ascii_uppercase());
        if !looks_like_magic {
            continue;
        }
        let idx = lit.line - 1;
        if file.lines[idx].in_test
            || KNOWN_MAGICS.contains(&lit.value.as_str())
            || is_allowed(file, idx, "checkpoint-magic-registry")
        {
            continue;
        }
        out.push(Finding {
            rule: "checkpoint-magic-registry",
            path: file.path.clone(),
            line: lit.line,
            snippet: file.lines[idx].raw.trim().to_string(),
            message: format!(
                "container magic b\"{}\" is not declared in the magic registry \
                 (crates/lint/src/registry.rs)",
                lit.value
            ),
        });
    }
}

/// Runs every rule applicable to `file`. `lib_crate` gates the
/// unwrap rule: binaries and dev-tooling crates (bench, lint) may
/// unwrap, library crates may not.
pub fn check_file(file: &ScannedFile, lib_crate: bool, out: &mut Vec<Finding>) {
    no_float_partial_cmp_sort(file, out);
    if lib_crate {
        no_unwrap_in_lib(file, out);
    }
    no_silent_clamp(file, out);
    no_panic_in_engine(file, out);
    no_raw_print_in_lib(file, out);
    checkpoint_magic_registry(file, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn findings_for(src: &str, lib_crate: bool) -> Vec<Finding> {
        let file = scan("crates/x/src/lib.rs", src, false);
        let mut out = Vec::new();
        check_file(&file, lib_crate, &mut out);
        out
    }

    #[test]
    fn partial_cmp_is_flagged_outside_tests_and_strings() {
        let hits = findings_for("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n", false);
        assert!(hits.iter().any(|f| f.rule == "no-float-partial-cmp-sort"));
        assert!(findings_for("let s = \"partial_cmp\";\n", false).is_empty());
        assert!(findings_for("#[cfg(test)]\nmod t {\n fn f() { a.partial_cmp(b); }\n}\n", false)
            .is_empty());
    }

    #[test]
    fn unwrap_rule_respects_crate_kind_and_annotations() {
        let src = "let x = y.unwrap();\n";
        assert!(findings_for(src, true).iter().any(|f| f.rule == "no-unwrap-in-lib"));
        assert!(findings_for(src, false).iter().all(|f| f.rule != "no-unwrap-in-lib"));
        let annotated = "// lint: allow(unwrap) — len checked above\nlet x = y.unwrap();\n";
        assert!(findings_for(annotated, true).is_empty());
        let same_line = "let x = y.unwrap(); // lint: allow(unwrap) infallible\n";
        assert!(findings_for(same_line, true).is_empty());
    }

    #[test]
    fn silent_clamp_is_flagged() {
        let hits =
            findings_for("v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));\n", false);
        assert!(hits.iter().any(|f| f.rule == "no-silent-clamp"));
    }

    #[test]
    fn engine_panic_rule_is_path_scoped() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        for covered in ["crates/engine/src/engine.rs", "crates/eval/src/groundtruth.rs"] {
            let file = scan(covered, src, false);
            let mut out = Vec::new();
            check_file(&file, true, &mut out);
            assert!(out.iter().any(|f| f.rule == "no-panic-in-engine"), "{covered}");
        }
        let other = scan("crates/core/src/lib.rs", src, false);
        let mut out = Vec::new();
        check_file(&other, true, &mut out);
        assert!(out.iter().all(|f| f.rule != "no-panic-in-engine"));
    }

    #[test]
    fn raw_print_rule_is_scoped_to_lib_modules() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert!(findings_for(src, false).iter().any(|f| f.rule == "no-raw-print-in-lib"));
        for bin_path in ["crates/demo/src/bin/tool.rs", "crates/demo/src/main.rs"] {
            let file = scan(bin_path, src, false);
            let mut out = Vec::new();
            check_file(&file, false, &mut out);
            assert!(out.iter().all(|f| f.rule != "no-raw-print-in-lib"), "{bin_path}");
        }
        let allowed = "// lint: allow(raw-print) — CLI usage text\nfn f() { eprintln!(\"x\"); }\n";
        assert!(findings_for(allowed, false).is_empty());
    }

    #[test]
    fn unknown_magic_is_flagged_known_is_not() {
        let unknown = findings_for("const M: &[u8; 8] = b\"ZZMAGIC9\";\n", false);
        assert!(unknown.iter().any(|f| f.rule == "checkpoint-magic-registry"));
        let known = findings_for("const M: &[u8; 8] = b\"T2HCKPT1\";\n", false);
        assert!(known.iter().all(|f| f.rule != "checkpoint-magic-registry"));
        // short/lowercase byte strings are not magics
        assert!(findings_for("let b = b\"ab\";\n", false).is_empty());
        assert!(findings_for("let b = b\"abcd\";\n", false).is_empty());
    }
}
